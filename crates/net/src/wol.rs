//! Wake-on-LAN magic packets.
//!
//! The cluster manager "wakes up the corresponding host with a network
//! Wake-on-LAN before issuing the migration or creation call" (§4.1).
//! A magic packet is six `0xFF` bytes followed by the target MAC address
//! repeated sixteen times; this module builds and parses that frame, and
//! models the lossy-network retry loop around it.

use oasis_faults::RetryPolicy;
use oasis_sim::{SimDuration, SimRng};
use oasis_telemetry::{Event, Telemetry};

/// A MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Deterministic MAC for a simulated host id (locally administered).
    pub fn for_host(host: u32) -> Self {
        let b = host.to_be_bytes();
        MacAddr([0x02, 0x0A, b[0], b[1], b[2], b[3]])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", m[0], m[1], m[2], m[3], m[4], m[5])
    }
}

/// Size of a magic packet payload in bytes.
pub const MAGIC_PACKET_LEN: usize = 6 + 16 * 6;

/// A Wake-on-LAN magic packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MagicPacket {
    target: MacAddr,
}

impl MagicPacket {
    /// Builds a packet addressed to `target`.
    pub fn new(target: MacAddr) -> Self {
        MagicPacket { target }
    }

    /// The target MAC.
    pub fn target(&self) -> MacAddr {
        self.target
    }

    /// Serializes the 102-byte payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC_PACKET_LEN);
        out.extend_from_slice(&[0xFF; 6]);
        for _ in 0..16 {
            out.extend_from_slice(&self.target.0);
        }
        out
    }

    /// Parses a payload; `None` if it is not a well-formed magic packet.
    pub fn parse(bytes: &[u8]) -> Option<MagicPacket> {
        if bytes.len() != MAGIC_PACKET_LEN || bytes[..6] != [0xFF; 6] {
            return None;
        }
        let mac: [u8; 6] = bytes[6..12].try_into().ok()?;
        for rep in 1..16 {
            if bytes[6 + rep * 6..12 + rep * 6] != mac {
                return None;
            }
        }
        Some(MagicPacket { target: MacAddr(mac) })
    }
}

/// How a Wake-on-LAN retry sequence ended.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WolOutcome {
    /// Seconds spent waiting on retransmission timeouts.
    pub waited_secs: f64,
    /// Retransmissions sent after the initial packet.
    pub attempts: u32,
    /// False when the policy's attempt budget ran out with the last
    /// packet still lost; callers fall back to their degradation path.
    pub delivered: bool,
}

/// Models waking a sleeping host over a lossy management network,
/// pacing retransmissions with `policy`.
///
/// The first magic packet goes out immediately; each lost packet is
/// re-sent after the policy's delay for that attempt, until one gets
/// through or `policy.max_attempts` retransmissions have been spent.
/// Every packet increments the `wol_packets_total` counter and each
/// retry emits a [`Event::WolRetry`] on the bus.
///
/// Loss draws come before the attempt-budget check and a zero-jitter
/// policy delay consumes no randomness, so with [`RetryPolicy::wol`]
/// this consumes the RNG stream exactly as the historical inline loop
/// did — fixed-seed runs are unchanged by the refactor.
pub fn wake_with_policy(
    telemetry: &Telemetry,
    host: u32,
    loss_rate: f64,
    policy: &RetryPolicy,
    rng: &mut SimRng,
) -> WolOutcome {
    let packet = MagicPacket::new(MacAddr::for_host(host));
    debug_assert!(MagicPacket::parse(&packet.to_bytes()).is_some());
    let sent = telemetry.metrics().counter("wol_packets_total", &[]);
    sent.inc();
    let mut waited = SimDuration::ZERO;
    let mut attempt = 0u32;
    let mut delivered = true;
    if loss_rate > 0.0 {
        loop {
            if !rng.chance(loss_rate) {
                break; // This packet made it through.
            }
            if attempt >= policy.max_attempts {
                delivered = false;
                break;
            }
            attempt += 1;
            waited += policy.delay(attempt, rng);
            sent.inc();
            telemetry.emit(Event::WolRetry { host, attempt });
        }
    }
    WolOutcome { waited_secs: waited.as_secs_f64(), attempts: attempt, delivered }
}

/// Models waking a sleeping host with the standard one-packet-per-second
/// schedule, giving up after `max_wait_secs` of retrying. Returns the
/// seconds spent waiting (0.0 when the first packet lands).
pub fn wake_with_retries(
    telemetry: &Telemetry,
    host: u32,
    loss_rate: f64,
    max_wait_secs: f64,
    rng: &mut SimRng,
) -> f64 {
    let policy = RetryPolicy::constant(SimDuration::from_secs(1), max_wait_secs.ceil() as u32);
    wake_with_policy(telemetry, host, loss_rate, &policy, rng).waited_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let pkt = MagicPacket::new(MacAddr::for_host(17));
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), MAGIC_PACKET_LEN);
        assert_eq!(MagicPacket::parse(&bytes), Some(pkt));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(MagicPacket::parse(&[]), None);
        assert_eq!(MagicPacket::parse(&[0u8; MAGIC_PACKET_LEN]), None);
        let mut bytes = MagicPacket::new(MacAddr::for_host(1)).to_bytes();
        bytes[50] ^= 0xFF; // Corrupt one MAC repetition.
        assert_eq!(MagicPacket::parse(&bytes), None);
        bytes = MagicPacket::new(MacAddr::for_host(1)).to_bytes();
        bytes.push(0); // Wrong length.
        assert_eq!(MagicPacket::parse(&bytes), None);
    }

    #[test]
    fn lossless_network_never_waits_or_draws() {
        let tel = Telemetry::disabled();
        let mut rng = SimRng::new(1);
        let mut untouched = SimRng::new(1);
        let out = wake_with_policy(&tel, 1, 0.0, &RetryPolicy::wol(), &mut rng);
        assert_eq!(out, WolOutcome { waited_secs: 0.0, attempts: 0, delivered: true });
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn total_loss_exhausts_the_attempt_budget() {
        let tel = Telemetry::disabled();
        let mut rng = SimRng::new(2);
        let policy = RetryPolicy::wol();
        let out = wake_with_policy(&tel, 1, 1.0, &policy, &mut rng);
        assert_eq!(out.attempts, policy.max_attempts);
        assert_eq!(out.waited_secs, policy.max_attempts as f64);
        assert!(!out.delivered, "a fully lossy link must report non-delivery");
    }

    #[test]
    fn jittered_retries_are_seed_deterministic_and_bounded() {
        let tel = Telemetry::disabled();
        let policy = RetryPolicy::recovery();
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let out_a = wake_with_policy(&tel, 3, 1.0, &policy, &mut a);
        let out_b = wake_with_policy(&tel, 3, 1.0, &policy, &mut b);
        assert_eq!(out_a, out_b, "same seed, same jittered schedule");
        assert!(!out_a.delivered);
        assert!(out_a.waited_secs <= policy.max_total_delay().as_secs_f64());
    }

    #[test]
    fn retry_wrapper_matches_the_historical_inline_loop() {
        // The pre-policy implementation, verbatim: one chance() draw per
        // iteration, one-second waits, give up past max_wait_secs.
        fn historical(loss_rate: f64, max_wait_secs: f64, rng: &mut SimRng) -> f64 {
            let mut wait = 0.0;
            let mut attempt = 0u32;
            while loss_rate > 0.0 && rng.chance(loss_rate) && wait < max_wait_secs {
                attempt += 1;
                wait += 1.0;
            }
            let _ = attempt;
            wait
        }
        let tel = Telemetry::disabled();
        for seed in 0..64 {
            let mut old = SimRng::new(seed);
            let mut new = SimRng::new(seed);
            for loss in [0.0, 0.3, 0.9, 1.0] {
                assert_eq!(
                    historical(loss, 10.0, &mut old),
                    wake_with_retries(&tel, 5, loss, 10.0, &mut new),
                    "seed {seed} loss {loss}"
                );
            }
            // Identical draw counts leave the streams aligned.
            assert_eq!(old.next_u64(), new.next_u64(), "seed {seed}");
        }
    }

    #[test]
    fn host_macs_are_unique_and_local() {
        let a = MacAddr::for_host(1);
        let b = MacAddr::for_host(2);
        assert_ne!(a, b);
        // Locally-administered unicast bit pattern.
        assert_eq!(a.0[0] & 0x03, 0x02);
        assert_eq!(a.to_string(), "02:0a:00:00:00:01");
    }
}
