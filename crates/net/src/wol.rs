//! Wake-on-LAN magic packets.
//!
//! The cluster manager "wakes up the corresponding host with a network
//! Wake-on-LAN before issuing the migration or creation call" (§4.1).
//! A magic packet is six `0xFF` bytes followed by the target MAC address
//! repeated sixteen times; this module builds and parses that frame, and
//! models the lossy-network retry loop around it.

use oasis_sim::SimRng;
use oasis_telemetry::{Event, Telemetry};

/// A MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Deterministic MAC for a simulated host id (locally administered).
    pub fn for_host(host: u32) -> Self {
        let b = host.to_be_bytes();
        MacAddr([0x02, 0x0A, b[0], b[1], b[2], b[3]])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", m[0], m[1], m[2], m[3], m[4], m[5])
    }
}

/// Size of a magic packet payload in bytes.
pub const MAGIC_PACKET_LEN: usize = 6 + 16 * 6;

/// A Wake-on-LAN magic packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MagicPacket {
    target: MacAddr,
}

impl MagicPacket {
    /// Builds a packet addressed to `target`.
    pub fn new(target: MacAddr) -> Self {
        MagicPacket { target }
    }

    /// The target MAC.
    pub fn target(&self) -> MacAddr {
        self.target
    }

    /// Serializes the 102-byte payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC_PACKET_LEN);
        out.extend_from_slice(&[0xFF; 6]);
        for _ in 0..16 {
            out.extend_from_slice(&self.target.0);
        }
        out
    }

    /// Parses a payload; `None` if it is not a well-formed magic packet.
    pub fn parse(bytes: &[u8]) -> Option<MagicPacket> {
        if bytes.len() != MAGIC_PACKET_LEN || bytes[..6] != [0xFF; 6] {
            return None;
        }
        let mac: [u8; 6] = bytes[6..12].try_into().ok()?;
        for rep in 1..16 {
            if bytes[6 + rep * 6..12 + rep * 6] != mac {
                return None;
            }
        }
        Some(MagicPacket { target: MacAddr(mac) })
    }
}

/// Models waking a sleeping host over a lossy management network.
///
/// The first magic packet goes out immediately; a lost packet is re-sent
/// after a one-second timeout, until one gets through or `max_wait_secs`
/// of retrying has elapsed. Returns the seconds spent waiting on retries
/// (0.0 when the first packet lands). Every packet increments the
/// `wol_packets_total` counter and each retry emits a
/// [`Event::WolRetry`] on the bus.
pub fn wake_with_retries(
    telemetry: &Telemetry,
    host: u32,
    loss_rate: f64,
    max_wait_secs: f64,
    rng: &mut SimRng,
) -> f64 {
    let packet = MagicPacket::new(MacAddr::for_host(host));
    debug_assert!(MagicPacket::parse(&packet.to_bytes()).is_some());
    let sent = telemetry.metrics().counter("wol_packets_total", &[]);
    sent.inc();
    let mut wait = 0.0;
    let mut attempt = 0u32;
    while loss_rate > 0.0 && rng.chance(loss_rate) && wait < max_wait_secs {
        attempt += 1;
        wait += 1.0;
        sent.inc();
        telemetry.emit(Event::WolRetry { host, attempt });
    }
    wait
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let pkt = MagicPacket::new(MacAddr::for_host(17));
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), MAGIC_PACKET_LEN);
        assert_eq!(MagicPacket::parse(&bytes), Some(pkt));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(MagicPacket::parse(&[]), None);
        assert_eq!(MagicPacket::parse(&[0u8; MAGIC_PACKET_LEN]), None);
        let mut bytes = MagicPacket::new(MacAddr::for_host(1)).to_bytes();
        bytes[50] ^= 0xFF; // Corrupt one MAC repetition.
        assert_eq!(MagicPacket::parse(&bytes), None);
        bytes = MagicPacket::new(MacAddr::for_host(1)).to_bytes();
        bytes.push(0); // Wrong length.
        assert_eq!(MagicPacket::parse(&bytes), None);
    }

    #[test]
    fn host_macs_are_unique_and_local() {
        let a = MacAddr::for_host(1);
        let b = MacAddr::for_host(2);
        assert_ne!(a, b);
        // Locally-administered unicast bit pattern.
        assert_eq!(a.0[0] & 0x03, 0x02);
        assert_eq!(a.to_string(), "02:0a:00:00:00:01");
    }
}
