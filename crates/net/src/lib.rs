//! Network substrate: links, fair-share transfers, Wake-on-LAN and
//! per-class traffic accounting.
//!
//! The Oasis cluster moves bytes over three kinds of channels (§4):
//! the rack Ethernet (GigE in the prototype, 10 GigE in the simulated
//! rack), the private SAS channel between a host and its memory server,
//! and control traffic (Wake-on-LAN packets, migration RPCs). This crate
//! models them:
//!
//! * [`link`] — link specifications and a processor-sharing channel model
//!   for concurrent transfers ([`link::SharedChannel`]).
//! * [`wol`] — Wake-on-LAN magic packets (§4.1 wakes sleeping hosts with
//!   one before issuing migration or creation calls).
//! * [`traffic`] — byte accounting by traffic class, feeding the Figure 10
//!   transfer-breakdown experiment.
//! * [`secure`] — the §4.3 transport-security layer: RFC 8439
//!   ChaCha20-Poly1305 records under a TLS-shaped certificate handshake.

#![warn(missing_docs)]

pub mod link;
pub mod secure;
pub mod traffic;
pub mod wol;

pub use link::{LinkSpec, SharedChannel, TransferId};
pub use traffic::{TrafficAccountant, TrafficClass};
pub use wol::{wake_with_retries, MagicPacket};
