//! Traffic accounting by class.
//!
//! Figure 10 of the paper breaks the weekday network volume down by
//! migration kind. The accountant accumulates bytes per [`TrafficClass`]
//! so the cluster simulator can report the same breakdown.

use core::fmt;

use oasis_mem::ByteSize;

/// Category of bytes moved through the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum TrafficClass {
    /// Full (pre-copy live) VM migrations over the rack network.
    FullMigration,
    /// Partial-migration descriptors: page tables, configuration and
    /// execution context pushed to the consolidation host.
    PartialDescriptor,
    /// On-demand page fetches from memory servers to partial VMs.
    DemandFetch,
    /// Dirty state pushed back during VM reintegration.
    Reintegration,
    /// Compressed memory-image uploads to the memory server. These bytes
    /// traverse the private SAS channel, not the datacenter network
    /// (§4.3), and are reported separately.
    MemServerUpload,
    /// Control traffic: RPCs, statistics, Wake-on-LAN packets.
    Control,
}

impl TrafficClass {
    /// All classes in report order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::FullMigration,
        TrafficClass::PartialDescriptor,
        TrafficClass::DemandFetch,
        TrafficClass::Reintegration,
        TrafficClass::MemServerUpload,
        TrafficClass::Control,
    ];

    /// `true` if these bytes cross the datacenter network (as opposed to
    /// the host-local SAS channel).
    pub fn on_network(self) -> bool {
        !matches!(self, TrafficClass::MemServerUpload)
    }

    /// `true` if the class is part of partial-migration machinery.
    pub fn is_partial_machinery(self) -> bool {
        matches!(
            self,
            TrafficClass::PartialDescriptor
                | TrafficClass::DemandFetch
                | TrafficClass::Reintegration
                | TrafficClass::MemServerUpload
        )
    }

    /// This class's position in [`ALL`](TrafficClass::ALL), whose order
    /// matches the enum declaration.
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::FullMigration => "full-migration",
            TrafficClass::PartialDescriptor => "partial-descriptor",
            TrafficClass::DemandFetch => "demand-fetch",
            TrafficClass::Reintegration => "reintegration",
            TrafficClass::MemServerUpload => "memserver-upload",
            TrafficClass::Control => "control",
        };
        f.write_str(s)
    }
}

/// Accumulates byte counts per traffic class.
#[derive(Clone, Debug, Default)]
pub struct TrafficAccountant {
    totals: [u64; TrafficClass::ALL.len()],
    events: [u64; TrafficClass::ALL.len()],
}

impl TrafficAccountant {
    /// Creates an accountant with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic in `class`.
    pub fn record(&mut self, class: TrafficClass, bytes: ByteSize) {
        let i = class.index();
        self.totals[i] = self.totals[i].saturating_add(bytes.as_bytes());
        self.events[i] += 1;
    }

    /// Total bytes recorded in `class`.
    pub fn total(&self, class: TrafficClass) -> ByteSize {
        ByteSize::bytes(self.totals[class.index()])
    }

    /// Number of record events in `class`.
    pub fn events(&self, class: TrafficClass) -> u64 {
        self.events[class.index()]
    }

    /// Bytes that crossed the datacenter network.
    pub fn network_total(&self) -> ByteSize {
        TrafficClass::ALL.iter().filter(|c| c.on_network()).map(|&c| self.total(c)).sum()
    }

    /// Bytes moved by all partial-migration machinery.
    pub fn partial_total(&self) -> ByteSize {
        TrafficClass::ALL.iter().filter(|c| c.is_partial_machinery()).map(|&c| self.total(c)).sum()
    }

    /// Grand total across every class.
    pub fn grand_total(&self) -> ByteSize {
        ByteSize::bytes(self.totals.iter().sum())
    }

    /// Adds another accountant's counters into this one.
    pub fn merge(&mut self, other: &TrafficAccountant) {
        for i in 0..self.totals.len() {
            self.totals[i] = self.totals[i].saturating_add(other.totals[i]);
            self.events[i] += other.events[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_round_trips_through_all() {
        for class in TrafficClass::ALL {
            assert_eq!(TrafficClass::ALL[class.index()], class);
        }
    }

    #[test]
    fn record_and_totals() {
        let mut t = TrafficAccountant::new();
        t.record(TrafficClass::FullMigration, ByteSize::gib(4));
        t.record(TrafficClass::FullMigration, ByteSize::gib(4));
        t.record(TrafficClass::PartialDescriptor, ByteSize::mib(16));
        assert_eq!(t.total(TrafficClass::FullMigration), ByteSize::gib(8));
        assert_eq!(t.events(TrafficClass::FullMigration), 2);
        assert_eq!(t.total(TrafficClass::PartialDescriptor), ByteSize::mib(16));
        assert_eq!(t.total(TrafficClass::Control), ByteSize::ZERO);
    }

    #[test]
    fn network_excludes_sas_uploads() {
        let mut t = TrafficAccountant::new();
        t.record(TrafficClass::MemServerUpload, ByteSize::gib(1));
        t.record(TrafficClass::DemandFetch, ByteSize::mib(57));
        assert_eq!(t.network_total(), ByteSize::mib(57));
        assert_eq!(t.grand_total(), ByteSize::gib(1) + ByteSize::mib(57));
    }

    #[test]
    fn partial_machinery_classification() {
        assert!(!TrafficClass::FullMigration.is_partial_machinery());
        assert!(TrafficClass::DemandFetch.is_partial_machinery());
        assert!(TrafficClass::Reintegration.is_partial_machinery());
        assert!(!TrafficClass::Control.is_partial_machinery());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficAccountant::new();
        let mut b = TrafficAccountant::new();
        a.record(TrafficClass::Control, ByteSize::kib(1));
        b.record(TrafficClass::Control, ByteSize::kib(2));
        b.record(TrafficClass::Reintegration, ByteSize::mib(175));
        a.merge(&b);
        assert_eq!(a.total(TrafficClass::Control), ByteSize::kib(3));
        assert_eq!(a.events(TrafficClass::Control), 2);
        assert_eq!(a.total(TrafficClass::Reintegration), ByteSize::mib(175));
    }

    #[test]
    fn display_names() {
        assert_eq!(TrafficClass::DemandFetch.to_string(), "demand-fetch");
        assert_eq!(TrafficClass::MemServerUpload.to_string(), "memserver-upload");
    }
}
