//! Link specifications and a processor-sharing transfer model.
//!
//! [`LinkSpec`] answers "how long does moving N bytes take on an otherwise
//! idle link"; [`SharedChannel`] models a link carrying several transfers
//! at once, splitting bandwidth evenly (TCP-fair) and recomputing finish
//! times as transfers join and leave.

use std::collections::BTreeMap;

use oasis_mem::ByteSize;
use oasis_sim::{SimDuration, SimTime};

/// A point-to-point link's capacity and propagation latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bytes per second.
    pub bandwidth: f64,
    /// One-way latency added to every transfer.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Gigabit Ethernet with typical TCP efficiency (~941 Mbit/s goodput).
    pub fn gige() -> Self {
        LinkSpec { bandwidth: 941.0e6 / 8.0, latency: SimDuration::from_micros(200) }
    }

    /// 10-Gigabit Ethernet (rack ToR switch, §5.1).
    pub fn ten_gige() -> Self {
        LinkSpec { bandwidth: 9.41e9 / 8.0, latency: SimDuration::from_micros(100) }
    }

    /// The prototype's shared SAS drive path: 128 MiB/s sequential writes
    /// (§4.3).
    pub fn sas_drive() -> Self {
        LinkSpec { bandwidth: 128.0 * 1024.0 * 1024.0, latency: SimDuration::from_micros(500) }
    }

    /// Time to transfer `bytes` on an otherwise idle link.
    pub fn transfer_time(&self, bytes: ByteSize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.bandwidth)
    }

    /// Bytes deliverable in `dt` on an otherwise idle link (ignoring
    /// latency).
    pub fn bytes_in(&self, dt: SimDuration) -> ByteSize {
        ByteSize::bytes((self.bandwidth * dt.as_secs_f64()) as u64)
    }
}

/// Identifier of an in-flight transfer on a [`SharedChannel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct TransferId(u64);

/// A link shared by concurrent transfers with processor-sharing semantics.
///
/// Each active transfer receives `bandwidth / n` while `n` transfers are in
/// flight. Drivers interact in three steps:
///
/// 1. [`start`](SharedChannel::start) a transfer;
/// 2. ask for the [`next_completion`](SharedChannel::next_completion) and
///    schedule a simulation event for it;
/// 3. on that event, call [`advance`](SharedChannel::advance) and collect
///    [`take_finished`](SharedChannel::take_finished); then reschedule.
///
/// Because arrivals change finish times, a scheduled completion event may
/// be stale; drivers simply re-query after every change.
#[derive(Clone, Debug)]
pub struct SharedChannel {
    bandwidth: f64,
    /// Remaining bytes per active transfer.
    active: BTreeMap<TransferId, f64>,
    finished: Vec<TransferId>,
    last_update: SimTime,
    next_id: u64,
}

impl SharedChannel {
    /// Creates a channel of the given capacity (bytes per second).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "channel bandwidth must be positive");
        SharedChannel {
            bandwidth,
            active: BTreeMap::new(),
            finished: Vec::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Creates a channel from a [`LinkSpec`] (latency handled by callers).
    pub fn from_spec(spec: LinkSpec) -> Self {
        Self::new(spec.bandwidth)
    }

    /// Number of transfers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Moves simulated time forward, applying progress to all transfers.
    ///
    /// Transfers that complete by `now` move to the finished list, with
    /// completion applied in remaining-bytes order.
    pub fn advance(&mut self, now: SimTime) {
        let mut dt = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = self.last_update.max(now);
        // Process completions in waves: the share grows as transfers
        // finish inside the window.
        while dt > 0.0 && !self.active.is_empty() {
            let n = self.active.len() as f64;
            let share = self.bandwidth / n;
            let min_remaining = self.active.values().fold(f64::INFINITY, |a, &b| a.min(b));
            let time_to_first = min_remaining / share;
            if time_to_first > dt {
                // Nobody finishes in the window: apply partial progress.
                let delta = share * dt;
                for rem in self.active.values_mut() {
                    *rem -= delta;
                }
                break;
            }
            // Apply progress up to the first completion and retire every
            // transfer that reaches zero.
            let delta = share * time_to_first;
            let mut done: Vec<TransferId> = Vec::new();
            for (&id, rem) in self.active.iter_mut() {
                *rem -= delta;
                if *rem <= 1e-6 {
                    done.push(id);
                }
            }
            for id in done {
                self.active.remove(&id);
                self.finished.push(id);
            }
            dt -= time_to_first;
        }
    }

    /// Starts a transfer of `bytes` at `now`.
    pub fn start(&mut self, now: SimTime, bytes: ByteSize) -> TransferId {
        self.advance(now);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        if bytes.is_zero() {
            self.finished.push(id);
        } else {
            self.active.insert(id, bytes.as_bytes() as f64);
        }
        id
    }

    /// Aborts an in-flight transfer; returns the bytes still unsent.
    pub fn abort(&mut self, now: SimTime, id: TransferId) -> Option<ByteSize> {
        self.advance(now);
        self.active.remove(&id).map(|rem| ByteSize::bytes(rem.max(0.0).ceil() as u64))
    }

    /// Predicted completion time of the earliest-finishing transfer,
    /// assuming no further arrivals.
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.active.is_empty() {
            return None;
        }
        let share = self.bandwidth / self.active.len() as f64;
        let min_remaining = self.active.values().fold(f64::INFINITY, |a, &b| a.min(b));
        Some(self.last_update + SimDuration::from_secs_f64(min_remaining / share))
    }

    /// Takes the transfers that completed since the last call.
    pub fn take_finished(&mut self) -> Vec<TransferId> {
        std::mem::take(&mut self.finished)
    }

    /// Remaining bytes of a transfer (`None` once finished or aborted).
    pub fn remaining(&self, id: TransferId) -> Option<ByteSize> {
        self.active.get(&id).map(|&r| ByteSize::bytes(r.max(0.0).ceil() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_spec_transfer_times() {
        let gige = LinkSpec::gige();
        // 4 GiB over GigE ≈ 36.5 s.
        let t = gige.transfer_time(ByteSize::gib(4)).as_secs_f64();
        assert!((t - 36.5).abs() < 0.5, "GigE 4 GiB took {t}");
        // Paper §5.1: a 4 GiB VM moves over 10 GigE in roughly 3.7 s of
        // raw wire time (the quoted 10 s includes pre-copy overhead).
        let t10 = LinkSpec::ten_gige().transfer_time(ByteSize::gib(4)).as_secs_f64();
        assert!(t10 < 4.0, "10GigE 4 GiB took {t10}");
        // SAS: 1.3 GiB at 128 MiB/s ≈ 10.4 s (the Figure 5 upload path).
        let tsas =
            LinkSpec::sas_drive().transfer_time(ByteSize::from_mib_f64(1_305.6)).as_secs_f64();
        assert!((tsas - 10.2).abs() < 0.1, "SAS upload took {tsas}");
    }

    #[test]
    fn bytes_in_window() {
        let sas = LinkSpec::sas_drive();
        assert_eq!(sas.bytes_in(SimDuration::from_secs(1)), ByteSize::mib(128));
        assert_eq!(sas.bytes_in(SimDuration::ZERO), ByteSize::ZERO);
    }

    #[test]
    fn single_transfer_full_bandwidth() {
        let mut ch = SharedChannel::new(100.0); // 100 B/s.
        ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        assert_eq!(ch.next_completion(), Some(SimTime::from_secs(10)));
        ch.advance(SimTime::from_secs(10));
        assert_eq!(ch.take_finished().len(), 1);
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn two_transfers_share_fairly() {
        let mut ch = SharedChannel::new(100.0);
        let a = ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        let b = ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        // Each gets 50 B/s: both finish at t = 20 s.
        assert_eq!(ch.next_completion(), Some(SimTime::from_secs(20)));
        ch.advance(SimTime::from_secs(20));
        let done = ch.take_finished();
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn late_arrival_slows_first_transfer() {
        let mut ch = SharedChannel::new(100.0);
        let a = ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        // At t=5, a has 500 B left; a second transfer joins.
        ch.start(SimTime::from_secs(5), ByteSize::bytes(200));
        // Shares drop to 50 B/s: the small transfer ends at t=9.
        assert_eq!(ch.next_completion(), Some(SimTime::from_secs(9)));
        ch.advance(SimTime::from_secs(9));
        assert_eq!(ch.take_finished().len(), 1);
        // a then finishes its remaining 300 B at full rate: t=12.
        assert_eq!(ch.next_completion(), Some(SimTime::from_secs(12)));
        ch.advance(SimTime::from_secs(12));
        assert_eq!(ch.take_finished(), vec![a]);
    }

    #[test]
    fn advance_across_multiple_completions() {
        let mut ch = SharedChannel::new(100.0);
        ch.start(SimTime::ZERO, ByteSize::bytes(100));
        ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        // Jump straight past both completions.
        ch.advance(SimTime::from_secs(100));
        assert_eq!(ch.take_finished().len(), 2);
        assert_eq!(ch.in_flight(), 0);
        assert_eq!(ch.next_completion(), None);
    }

    #[test]
    fn abort_returns_unsent_bytes() {
        let mut ch = SharedChannel::new(100.0);
        let a = ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        let rem = ch.abort(SimTime::from_secs(4), a).unwrap();
        assert_eq!(rem, ByteSize::bytes(600));
        assert_eq!(ch.abort(SimTime::from_secs(5), a), None, "double abort");
        assert_eq!(ch.remaining(a), None);
    }

    #[test]
    fn zero_byte_transfer_finishes_immediately() {
        let mut ch = SharedChannel::new(100.0);
        let id = ch.start(SimTime::from_secs(1), ByteSize::ZERO);
        assert_eq!(ch.take_finished(), vec![id]);
    }

    #[test]
    fn remaining_reports_progress() {
        let mut ch = SharedChannel::new(100.0);
        let a = ch.start(SimTime::ZERO, ByteSize::bytes(1_000));
        ch.advance(SimTime::from_secs(3));
        assert_eq!(ch.remaining(a), Some(ByteSize::bytes(700)));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        SharedChannel::new(0.0);
    }
}
