//! The ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8).

use super::chacha20;
use super::poly1305;

/// Authentication tag length.
pub const TAG_LEN: usize = poly1305::TAG_LEN;

/// AEAD failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is shorter than a tag.
    Truncated,
    /// Tag verification failed: tampered or wrong key/nonce.
    BadTag,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::Truncated => write!(f, "ciphertext shorter than a tag"),
            AeadError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// Derives the one-time Poly1305 key (RFC 8439 §2.6).
fn poly_key(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    block[..32].try_into().expect("32 of 64 bytes")
}

fn mac_input(aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    m.extend_from_slice(aad);
    m.resize(aad.len().next_multiple_of(16), 0);
    m.extend_from_slice(ciphertext);
    m.resize(m.len().next_multiple_of(16), 0);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    m
}

/// Encrypts `plaintext`, authenticating it together with `aad`.
///
/// Returns `ciphertext ‖ tag`.
pub fn seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha20::xor_stream(key, 1, nonce, &mut out);
    let otk = poly_key(key, nonce);
    let tag = poly1305::tag(&otk, &mac_input(aad, &out));
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts `sealed` (ciphertext ‖ tag).
pub fn open(
    key: &[u8; 32],
    nonce: &[u8; 12],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let otk = poly_key(key, nonce);
    let expected: [u8; TAG_LEN] = tag.try_into().expect("tag length checked");
    if !poly1305::verify(&otk, &mac_input(aad, ciphertext), &expected) {
        return Err(AeadError::BadTag);
    }
    let mut out = ciphertext.to_vec();
    chacha20::xor_stream(key, 1, nonce, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 32] {
        core::array::from_fn(|i| (i * 3) as u8)
    }

    #[test]
    fn round_trip_with_aad() {
        let nonce = [5u8; 12];
        let aad = b"vm0001:pfn:42";
        let plain = b"page contents here";
        let sealed = seal(&key(), &nonce, aad, plain);
        assert_eq!(sealed.len(), plain.len() + TAG_LEN);
        let opened = open(&key(), &nonce, aad, &sealed).unwrap();
        assert_eq!(opened, plain);
    }

    #[test]
    fn tampering_is_detected() {
        let nonce = [5u8; 12];
        let sealed = seal(&key(), &nonce, b"aad", b"payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert_eq!(open(&key(), &nonce, b"aad", &bad), Err(AeadError::BadTag), "byte {i}");
        }
    }

    #[test]
    fn wrong_key_nonce_or_aad_fails() {
        let nonce = [5u8; 12];
        let sealed = seal(&key(), &nonce, b"aad", b"payload");
        let mut other_key = key();
        other_key[0] ^= 1;
        assert!(open(&other_key, &nonce, b"aad", &sealed).is_err());
        assert!(open(&key(), &[6u8; 12], b"aad", &sealed).is_err());
        assert!(open(&key(), &nonce, b"axd", &sealed).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(open(&key(), &[0u8; 12], b"", &[1, 2, 3]), Err(AeadError::Truncated));
    }

    #[test]
    fn empty_plaintext_is_fine() {
        let nonce = [1u8; 12];
        let sealed = seal(&key(), &nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key(), &nonce, b"", &sealed).unwrap(), Vec::<u8>::new());
    }
}
