//! Session establishment between memtap clients and memory servers.
//!
//! §4.3: "The establishment of connections between a client and server
//! using TLS follows a handshake process that establishes the
//! authenticity of the server and client, and the parameters for
//! encryption … Authentication can be established through the use of
//! certificates issued by the enterprise's IT administrator."
//!
//! The shape follows TLS 1.3: hello + key share in each direction,
//! certificate verification against the enterprise trust anchor, and
//! traffic keys derived from the shared secret and both nonces. Two
//! pieces are simulation stand-ins (flagged below): the Diffie–Hellman
//! group is a toy 61-bit prime field, and certificate "signatures" are
//! MACs keyed by the trust anchor. The record layer on top is the real
//! RFC 8439 AEAD.

use oasis_sim::{SimDuration, SimRng};

use super::aead;
use super::chacha20;
use super::poly1305;

/// The toy Diffie–Hellman modulus: the Mersenne prime 2⁶¹ − 1.
///
/// Big enough to exercise the protocol, *not* cryptographically strong —
/// a production deployment would use X25519 or P-256.
const DH_PRIME: u128 = (1 << 61) - 1;
/// Group generator.
const DH_G: u128 = 3;

/// Handshake failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The peer's certificate was not issued by our trust anchor.
    UntrustedCertificate {
        /// Subject of the rejected certificate.
        subject: String,
    },
    /// A record failed authentication after the handshake.
    RecordAuth(aead::AeadError),
    /// A record arrived out of sequence (replay or loss).
    BadSequence {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number received.
        got: u64,
    },
}

impl core::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HandshakeError::UntrustedCertificate { subject } => {
                write!(f, "certificate for {subject:?} not issued by the trust anchor")
            }
            HandshakeError::RecordAuth(e) => write!(f, "record authentication failed: {e}"),
            HandshakeError::BadSequence { expected, got } => {
                write!(f, "record sequence {got} (expected {expected})")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// The enterprise IT administrator's signing authority (§4.3).
#[derive(Clone, Debug)]
pub struct TrustAnchor {
    key: [u8; 32],
}

/// A certificate binding a subject name to a DH public value.
///
/// The "signature" is a Poly1305 MAC keyed by the trust anchor — the
/// protocol shape of a CA signature without the asymmetric crypto.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Who the certificate names (e.g. `memserver-host17`).
    pub subject: String,
    /// The subject's public DH value.
    pub public: u64,
    signature: [u8; 16],
}

impl TrustAnchor {
    /// Creates an anchor with a random key.
    pub fn new(rng: &mut SimRng) -> Self {
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        TrustAnchor { key }
    }

    fn signed_payload(subject: &str, public: u64) -> Vec<u8> {
        let mut p = Vec::with_capacity(subject.len() + 9);
        p.extend_from_slice(&public.to_le_bytes());
        p.push(0);
        p.extend_from_slice(subject.as_bytes());
        p
    }

    /// Issues a certificate for `subject` with the given public value.
    pub fn issue(&self, subject: &str, public: u64) -> Certificate {
        let signature = poly1305::tag(&self.key, &Self::signed_payload(subject, public));
        Certificate { subject: subject.to_string(), public, signature }
    }

    /// Verifies a certificate against this anchor.
    pub fn verify(&self, cert: &Certificate) -> bool {
        poly1305::verify(
            &self.key,
            &Self::signed_payload(&cert.subject, cert.public),
            &cert.signature,
        )
    }
}

/// Modular exponentiation in the toy group.
fn modpow(mut base: u128, mut exp: u64, modulus: u128) -> u128 {
    let mut acc: u128 = 1;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// One endpoint's long-lived identity: a DH keypair plus a certificate.
#[derive(Clone, Debug)]
pub struct Identity {
    /// Certificate presented during handshakes.
    pub certificate: Certificate,
    private: u64,
}

impl Identity {
    /// Generates a keypair and has the anchor certify it.
    pub fn generate(subject: &str, anchor: &TrustAnchor, rng: &mut SimRng) -> Self {
        let private = rng.next_u64() % (DH_PRIME as u64 - 2) + 1;
        let public = modpow(DH_G, private, DH_PRIME) as u64;
        Identity { certificate: anchor.issue(subject, public), private }
    }
}

/// Established traffic keys and sequence state for one direction pair.
#[derive(Clone, Debug)]
pub struct SecureChannel {
    key: [u8; 32],
    send_seq: u64,
    recv_seq: u64,
    /// 1 for the client side, 2 for the server side (nonce domain
    /// separation).
    direction: u8,
}

impl SecureChannel {
    fn nonce(direction: u8, seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[0] = direction;
        n[4..12].copy_from_slice(&seq.to_le_bytes());
        n
    }

    /// Seals one record (e.g. a page payload) with the next sequence
    /// number; the sequence is bound into the nonce and the AAD.
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> (u64, Vec<u8>) {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = Self::nonce(self.direction, seq);
        (seq, aead::seal(&self.key, &nonce, aad, plaintext))
    }

    /// Opens the peer's record with the expected sequence number.
    pub fn open(&mut self, seq: u64, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, HandshakeError> {
        if seq != self.recv_seq {
            return Err(HandshakeError::BadSequence { expected: self.recv_seq, got: seq });
        }
        let peer_direction = 3 - self.direction;
        let nonce = Self::nonce(peer_direction, seq);
        let plain =
            aead::open(&self.key, &nonce, aad, sealed).map_err(HandshakeError::RecordAuth)?;
        self.recv_seq += 1;
        Ok(plain)
    }

    /// Wire overhead added to every record.
    pub fn record_overhead() -> usize {
        aead::TAG_LEN + 8 // Tag plus the explicit sequence number.
    }
}

/// Performs handshakes and models their latency.
#[derive(Clone, Debug)]
pub struct SessionBroker {
    anchor: TrustAnchor,
}

impl SessionBroker {
    /// Creates a broker around the enterprise trust anchor.
    pub fn new(anchor: TrustAnchor) -> Self {
        SessionBroker { anchor }
    }

    /// Mutually authenticates two identities and derives both channel
    /// halves. Returns `(client_channel, server_channel)`.
    pub fn establish(
        &self,
        client: &Identity,
        server: &Identity,
        client_nonce: u64,
        server_nonce: u64,
    ) -> Result<(SecureChannel, SecureChannel), HandshakeError> {
        for cert in [&client.certificate, &server.certificate] {
            if !self.anchor.verify(cert) {
                return Err(HandshakeError::UntrustedCertificate { subject: cert.subject.clone() });
            }
        }
        // Both sides compute the same shared secret.
        let shared_c = modpow(u128::from(server.certificate.public), client.private, DH_PRIME);
        let shared_s = modpow(u128::from(client.certificate.public), server.private, DH_PRIME);
        debug_assert_eq!(shared_c, shared_s, "DH agreement");

        // Traffic key = keystream block keyed by the shared secret over
        // both nonces (an HKDF-shaped expansion using primitives we have).
        let mut kdf_key = [0u8; 32];
        kdf_key[..16].copy_from_slice(&shared_c.to_le_bytes());
        kdf_key[16..24].copy_from_slice(&client_nonce.to_le_bytes());
        kdf_key[24..32].copy_from_slice(&server_nonce.to_le_bytes());
        let mut kdf_nonce = [0u8; 12];
        kdf_nonce[..4].copy_from_slice(b"oasi");
        let block = chacha20::block(&kdf_key, 1, &kdf_nonce);
        let mut key = [0u8; 32];
        key.copy_from_slice(&block[..32]);

        let client_ch = SecureChannel { key, send_seq: 0, recv_seq: 0, direction: 1 };
        let server_ch = SecureChannel { key, send_seq: 0, recv_seq: 0, direction: 2 };
        Ok((client_ch, server_ch))
    }

    /// Handshake latency: two round trips plus certificate checks.
    pub fn handshake_latency(rtt: SimDuration) -> SimDuration {
        rtt * 2 + SimDuration::from_micros(350)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SessionBroker, Identity, Identity) {
        let mut rng = SimRng::new(7);
        let anchor = TrustAnchor::new(&mut rng);
        let client = Identity::generate("memtap-vm0042", &anchor, &mut rng);
        let server = Identity::generate("memserver-host17", &anchor, &mut rng);
        (SessionBroker::new(anchor), client, server)
    }

    #[test]
    fn certificates_verify_against_their_anchor_only() {
        let mut rng = SimRng::new(1);
        let anchor = TrustAnchor::new(&mut rng);
        let other = TrustAnchor::new(&mut rng);
        let id = Identity::generate("memserver-host1", &anchor, &mut rng);
        assert!(anchor.verify(&id.certificate));
        assert!(!other.verify(&id.certificate));
        // Tampered public value breaks the signature.
        let mut bad = id.certificate.clone();
        bad.public ^= 1;
        assert!(!anchor.verify(&bad));
    }

    #[test]
    fn handshake_and_page_exchange() {
        let (broker, client, server) = setup();
        let (mut ctx, mut stx) = broker.establish(&client, &server, 11, 22).unwrap();
        // Server sends a page to the client.
        let page = vec![0xAAu8; 4_096];
        let (seq, sealed) = stx.seal(b"pfn:7", &page);
        assert_eq!(sealed.len(), page.len() + aead::TAG_LEN);
        // Note: the client *receives* on its channel.
        let got = ctx.open(seq, b"pfn:7", &sealed).unwrap();
        assert_eq!(got, page);
        // And the client can request in the other direction.
        let (seq2, req) = ctx.seal(b"", b"GET pfn:8");
        assert_eq!(stx.open(seq2, b"", &req).unwrap(), b"GET pfn:8");
    }

    #[test]
    fn untrusted_peer_rejected() {
        let mut rng = SimRng::new(2);
        let anchor = TrustAnchor::new(&mut rng);
        let rogue_anchor = TrustAnchor::new(&mut rng);
        let client = Identity::generate("memtap", &anchor, &mut rng);
        let rogue = Identity::generate("evil-server", &rogue_anchor, &mut rng);
        let broker = SessionBroker::new(anchor);
        match broker.establish(&client, &rogue, 1, 2) {
            Err(HandshakeError::UntrustedCertificate { subject }) => {
                assert_eq!(subject, "evil-server");
            }
            other => panic!("expected UntrustedCertificate, got {other:?}"),
        }
    }

    #[test]
    fn replay_and_reorder_rejected() {
        let (broker, client, server) = setup();
        let (mut ctx, mut stx) = broker.establish(&client, &server, 1, 2).unwrap();
        let (s0, r0) = stx.seal(b"", b"first");
        let (s1, r1) = stx.seal(b"", b"second");
        // Reorder: second record first.
        assert!(matches!(
            ctx.open(s1, b"", &r1),
            Err(HandshakeError::BadSequence { expected: 0, got: 1 })
        ));
        ctx.open(s0, b"", &r0).unwrap();
        ctx.open(s1, b"", &r1).unwrap();
        // Replay of the first record.
        assert!(matches!(ctx.open(s0, b"", &r0), Err(HandshakeError::BadSequence { .. })));
    }

    #[test]
    fn eavesdropper_without_keys_learns_nothing_usable() {
        let (broker, client, server) = setup();
        let (_, mut stx) = broker.establish(&client, &server, 1, 2).unwrap();
        let page = b"secret page contents".to_vec();
        let (_, sealed) = stx.seal(b"", &page);
        // The ciphertext is not the plaintext, and a different session's
        // channel cannot open it.
        assert_ne!(&sealed[..page.len()], page.as_slice());
        let (mut other_rx, _) = broker.establish(&client, &server, 9, 9).unwrap();
        assert!(matches!(other_rx.open(0, b"", &sealed), Err(HandshakeError::RecordAuth(_))));
    }

    #[test]
    fn different_nonces_give_different_sessions() {
        let (broker, client, server) = setup();
        let (mut a, _) = broker.establish(&client, &server, 1, 2).unwrap();
        let (mut b, _) = broker.establish(&client, &server, 3, 4).unwrap();
        let (_, ra) = a.seal(b"", b"x");
        let (_, rb) = b.seal(b"", b"x");
        assert_ne!(ra, rb);
    }

    #[test]
    fn handshake_latency_model() {
        let rtt = SimDuration::from_micros(400);
        let lat = SessionBroker::handshake_latency(rtt);
        assert_eq!(lat.as_micros(), 1_150);
    }
}
