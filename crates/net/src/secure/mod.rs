//! Transport security for the memory-server protocol (§4.3 Security).
//!
//! "Because the memory server exposes the contents of VMs memory to the
//! network … the page server and memtap client should implement
//! authentication and encryption using Transport Layer Security." The
//! paper leaves this as deployment guidance; this module implements it:
//!
//! * [`chacha20`] — the RFC 8439 ChaCha20 stream cipher, from scratch.
//! * [`poly1305`] — the RFC 8439 Poly1305 one-time authenticator.
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction.
//! * [`handshake`] — a TLS-1.3-shaped session layer: certificates issued
//!   by the enterprise's IT trust anchor, a nonce/key-agreement
//!   handshake, and a [`handshake::SecureChannel`] sealing page payloads
//!   with per-direction sequence nonces.
//!
//! The record layer is real cryptography (the cipher and MAC pass the
//! RFC test vectors); the *key agreement* uses a toy Diffie–Hellman
//! group sized for simulation, and certificate signatures are MACs keyed
//! by the trust anchor — stand-ins with the same protocol shape but not
//! production security, as flagged in their doc comments.

pub mod aead;
pub mod chacha20;
pub mod handshake;
pub mod poly1305;

pub use aead::{open, seal, AeadError, TAG_LEN};
pub use handshake::{HandshakeError, SecureChannel, SessionBroker, TrustAnchor};
