//! The Poly1305 one-time authenticator (RFC 8439 §2.5), from scratch.
//!
//! Arithmetic is carried out modulo 2¹³⁰ − 5 using five 26-bit limbs —
//! the classic "donna" layout — with 64-bit intermediate products.

/// Key length in bytes (r ‖ s).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

const MASK26: u64 = (1 << 26) - 1;

/// Computes the Poly1305 tag of `msg` under the one-time `key`.
// oasis-lint: boundary(unit-safety, "26-bit limb packing throughout: every shift here repacks field-element limbs, not page sizes")
pub fn tag(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r (RFC 8439 §2.5: clear the top bits of each word).
    let t0 = u32::from_le_bytes(key[0..4].try_into().expect("4")) & 0x0fff_ffff;
    let t1 = u32::from_le_bytes(key[4..8].try_into().expect("4")) & 0x0fff_fffc;
    let t2 = u32::from_le_bytes(key[8..12].try_into().expect("4")) & 0x0fff_fffc;
    let t3 = u32::from_le_bytes(key[12..16].try_into().expect("4")) & 0x0fff_fffc;

    // Split the 124 significant bits of r into five 26-bit limbs.
    let r0 = u64::from(t0) & MASK26;
    let r1 = (u64::from(t0) >> 26 | u64::from(t1) << 6) & MASK26;
    let r2 = (u64::from(t1) >> 20 | u64::from(t2) << 12) & MASK26;
    let r3 = (u64::from(t2) >> 14 | u64::from(t3) << 18) & MASK26;
    let r4 = u64::from(t3) >> 8;

    let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

    let (mut h0, mut h1, mut h2, mut h3, mut h4) = (0u64, 0u64, 0u64, 0u64, 0u64);

    for chunk in msg.chunks(16) {
        // Load the block as a little-endian number with the high marker
        // bit 2^(8·len) added.
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;
        let b0 = u64::from(u32::from_le_bytes(block[0..4].try_into().expect("4")));
        let b1 = u64::from(u32::from_le_bytes(block[4..8].try_into().expect("4")));
        let b2 = u64::from(u32::from_le_bytes(block[8..12].try_into().expect("4")));
        let b3 = u64::from(u32::from_le_bytes(block[12..16].try_into().expect("4")));
        let b4 = u64::from(block[16]);

        h0 += b0 & MASK26;
        h1 += (b0 >> 26 | b1 << 6) & MASK26;
        h2 += (b1 >> 20 | b2 << 12) & MASK26;
        h3 += (b2 >> 14 | b3 << 18) & MASK26;
        h4 += b3 >> 8 | b4 << 24;

        // h ← h · r (mod 2¹³⁰ − 5), exploiting 2¹³⁰ ≡ 5.
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation keeps every limb under 2^32 so the
        // next block's products cannot overflow u64.
        let mut c;
        c = d0 >> 26;
        h0 = d0 & MASK26;
        let d1 = d1 + c;
        c = d1 >> 26;
        h1 = d1 & MASK26;
        let d2 = d2 + c;
        c = d2 >> 26;
        h2 = d2 & MASK26;
        let d3 = d3 + c;
        c = d3 >> 26;
        h3 = d3 & MASK26;
        let d4 = d4 + c;
        c = d4 >> 26;
        h4 = d4 & MASK26;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= MASK26;
        h1 += c;
    }

    // Full carry and freeze: compute h mod 2¹³⁰ − 5 canonically.
    let mut c;
    c = h1 >> 26;
    h1 &= MASK26;
    h2 += c;
    c = h2 >> 26;
    h2 &= MASK26;
    h3 += c;
    c = h3 >> 26;
    h3 &= MASK26;
    h4 += c;
    c = h4 >> 26;
    h4 &= MASK26;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= MASK26;
    h1 += c;

    // If h ≥ p, subtract p (constant-time selection is unnecessary in a
    // simulator but the arithmetic is the standard freeze).
    let mut g0 = h0.wrapping_add(5);
    c = g0 >> 26;
    g0 &= MASK26;
    let mut g1 = h1.wrapping_add(c);
    c = g1 >> 26;
    g1 &= MASK26;
    let mut g2 = h2.wrapping_add(c);
    c = g2 >> 26;
    g2 &= MASK26;
    let mut g3 = h3.wrapping_add(c);
    c = g3 >> 26;
    g3 &= MASK26;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    // g4's top bit is set iff the subtraction borrowed, i.e. h < p.
    let use_h = g4 >> 63 == 1;
    let (f0, f1, f2, f3, f4) =
        if use_h { (h0, h1, h2, h3, h4) } else { (g0, g1, g2, g3, g4 & MASK26) };

    // Serialize h back to four 32-bit words and add s modulo 2¹²⁸.
    let w0 = f0 | f1 << 26;
    let w1 = f1 >> 6 | f2 << 20;
    let w2 = f2 >> 12 | f3 << 14;
    let w3 = f3 >> 18 | f4 << 8;

    let s0 = u64::from(u32::from_le_bytes(key[16..20].try_into().expect("4")));
    let s1k = u64::from(u32::from_le_bytes(key[20..24].try_into().expect("4")));
    let s2k = u64::from(u32::from_le_bytes(key[24..28].try_into().expect("4")));
    let s3k = u64::from(u32::from_le_bytes(key[28..32].try_into().expect("4")));

    let mut f: u64;
    let mut out = [0u8; TAG_LEN];
    f = (w0 & 0xffff_ffff) + s0;
    out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
    f = (w1 & 0xffff_ffff) + s1k + (f >> 32);
    out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
    f = (w2 & 0xffff_ffff) + s2k + (f >> 32);
    out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
    f = (w3 & 0xffff_ffff) + s3k + (f >> 32);
    out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
    out
}

/// Constant-shape tag comparison.
pub fn verify(key: &[u8; KEY_LEN], msg: &[u8], expected: &[u8; TAG_LEN]) -> bool {
    let got = tag(key, msg);
    let mut diff = 0u8;
    for (a, b) in got.iter().zip(expected.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag(&key, msg), expected);
        assert!(verify(&key, msg, &expected));
    }

    #[test]
    fn tag_depends_on_message_and_key() {
        let key = [3u8; 32];
        let t = tag(&key, b"hello");
        assert_ne!(t, tag(&key, b"hellp"));
        let mut key2 = key;
        key2[20] ^= 1; // Changing s changes the tag.
        assert_ne!(t, tag(&key2, b"hello"));
        assert!(!verify(&key, b"hellp", &t));
    }

    #[test]
    fn empty_and_block_boundary_messages() {
        let key = [9u8; 32];
        for len in [0usize, 1, 15, 16, 17, 32, 100] {
            let msg = vec![0xABu8; len];
            let t = tag(&key, &msg);
            assert!(verify(&key, &msg, &t), "len {len}");
        }
    }

    #[test]
    fn high_limb_stress() {
        // All-ones messages with a maximally dense r exercise the carry
        // chain and the freeze path.
        let mut key = [0xFFu8; 32];
        // Leave clamping to the implementation.
        key[3] = 0xFF;
        let msg = vec![0xFFu8; 64];
        let t = tag(&key, &msg);
        assert!(verify(&key, &msg, &t));
    }
}
