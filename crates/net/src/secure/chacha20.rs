//! The ChaCha20 stream cipher (RFC 8439), implemented from scratch.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha quarter round (RFC 8439 §2.1).
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut s = [0u32; 16];
    // "expand 32-byte k".
    s[0] = 0x6170_7865;
    s[1] = 0x3320_646e;
    s[2] = 0x7962_2d32;
    s[3] = 0x6b20_6574;
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    s
}

/// Computes one 64-byte keystream block (RFC 8439 §2.3).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let mut s = initial;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 12, 13);
        quarter_round(&mut s, 3, 4, 13, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = s[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts (or, identically, decrypts) `data` in place (RFC 8439 §2.4).
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1.
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    fn test_key() -> [u8; KEY_LEN] {
        core::array::from_fn(|i| i as u8)
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        for len in [0usize, 1, 63, 64, 65, 1_000, 4_096] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let mut data = plain.clone();
            xor_stream(&key, 1, &nonce, &mut data);
            if len > 8 {
                assert_ne!(data, plain, "ciphertext must differ");
            }
            xor_stream(&key, 1, &nonce, &mut data);
            assert_eq!(data, plain, "len {len}");
        }
    }

    #[test]
    fn keystream_depends_on_all_inputs() {
        let key = test_key();
        let nonce = [0u8; NONCE_LEN];
        let mut nonce2 = nonce;
        nonce2[11] = 1;
        let mut key2 = key;
        key2[0] ^= 1;
        let base = block(&key, 0, &nonce);
        assert_ne!(block(&key, 1, &nonce), base, "counter");
        assert_ne!(block(&key, 0, &nonce2), base, "nonce");
        assert_ne!(block(&key2, 0, &nonce), base, "key");
        assert_eq!(block(&key, 0, &nonce), base, "deterministic");
    }

    #[test]
    fn keystream_is_not_degenerate() {
        // A sanity check against catastrophic implementation bugs: the
        // keystream of the all-zero key must not be all zeros and must
        // have roughly balanced bits.
        let ks = block(&[0u8; KEY_LEN], 0, &[0u8; NONCE_LEN]);
        let ones: u32 = ks.iter().map(|b| b.count_ones()).sum();
        assert!((160..350).contains(&ones), "bit balance {ones}/512");
    }
}
