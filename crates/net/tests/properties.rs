//! Property-based tests for the network substrate.

use proptest::prelude::*;

use oasis_mem::ByteSize;
use oasis_net::wol::MacAddr;
use oasis_net::{MagicPacket, SharedChannel, TrafficAccountant, TrafficClass};
use oasis_sim::SimTime;

proptest! {
    /// Every transfer started on a shared channel eventually finishes,
    /// and total progress never exceeds capacity × time.
    #[test]
    fn shared_channel_conserves_bytes(
        bandwidth in 1.0f64..1e9,
        transfers in prop::collection::vec((0u64..3_600, 1u64..1_000_000), 1..40),
    ) {
        let mut ch = SharedChannel::new(bandwidth);
        let mut total_bytes = 0u64;
        let mut latest_start = 0u64;
        for &(start, bytes) in &transfers {
            ch.start(SimTime::from_secs(start), ByteSize::bytes(bytes));
            total_bytes += bytes;
            latest_start = latest_start.max(start);
        }
        // Run long enough for everything to finish.
        let horizon = latest_start as f64 + total_bytes as f64 / bandwidth + 1.0;
        ch.advance(SimTime::from_secs(horizon.ceil() as u64 + 1));
        prop_assert_eq!(ch.take_finished().len(), transfers.len());
        prop_assert_eq!(ch.in_flight(), 0);
    }

    /// A transfer's completion time is never earlier than its serial
    /// transmission time on an empty link.
    #[test]
    fn completion_not_faster_than_line_rate(
        bandwidth in 1.0f64..1e6,
        bytes in 1u64..10_000_000,
    ) {
        let mut ch = SharedChannel::new(bandwidth);
        ch.start(SimTime::ZERO, ByteSize::bytes(bytes));
        let done = ch.next_completion().unwrap();
        let serial = bytes as f64 / bandwidth;
        prop_assert!(done.as_secs_f64() >= serial - 1e-6);
    }

    /// Aborting returns no more than the original byte count.
    #[test]
    fn abort_bounded(bytes in 1u64..1_000_000, when in 0u64..100) {
        let mut ch = SharedChannel::new(1_000.0);
        let id = ch.start(SimTime::ZERO, ByteSize::bytes(bytes));
        if let Some(rem) = ch.abort(SimTime::from_secs(when), id) {
            prop_assert!(rem.as_bytes() <= bytes);
        }
        prop_assert_eq!(ch.remaining(id), None);
    }

    /// Traffic accounting: grand total equals the sum of class totals,
    /// and merge is additive.
    #[test]
    fn traffic_totals_consistent(
        records in prop::collection::vec((0usize..6, 0u64..1u64 << 40), 0..100),
    ) {
        let mut a = TrafficAccountant::new();
        let mut b = TrafficAccountant::new();
        for (i, &(class_idx, bytes)) in records.iter().enumerate() {
            let class = TrafficClass::ALL[class_idx];
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(class, ByteSize::bytes(bytes));
        }
        let sum_a: u64 = TrafficClass::ALL.iter().map(|&c| a.total(c).as_bytes()).sum();
        prop_assert_eq!(a.grand_total().as_bytes(), sum_a);
        let before = a.grand_total() + b.grand_total();
        a.merge(&b);
        prop_assert_eq!(a.grand_total(), before);
    }

    /// Magic packets round trip for any MAC.
    #[test]
    fn magic_packet_round_trip(mac in any::<[u8; 6]>()) {
        let pkt = MagicPacket::new(MacAddr(mac));
        prop_assert_eq!(MagicPacket::parse(&pkt.to_bytes()), Some(pkt));
    }

    /// Corrupting any byte of a magic packet breaks parsing or changes
    /// the target — never yields the same packet.
    #[test]
    fn magic_packet_detects_corruption(mac in any::<[u8; 6]>(), pos in 0usize..102, flip in 1u8..=255) {
        let pkt = MagicPacket::new(MacAddr(mac));
        let mut bytes = pkt.to_bytes();
        bytes[pos] ^= flip;
        prop_assert_ne!(MagicPacket::parse(&bytes), Some(pkt));
    }
}

mod secure_props {
    use super::*;
    use oasis_net::secure::{open, seal};

    proptest! {
        /// AEAD round trips arbitrary payloads and AAD.
        #[test]
        fn aead_round_trips(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in prop::collection::vec(any::<u8>(), 0..64),
            plain in prop::collection::vec(any::<u8>(), 0..2_048),
        ) {
            let sealed = seal(&key, &nonce, &aad, &plain);
            prop_assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), plain);
        }

        /// Any single-bit flip in the sealed record is detected.
        #[test]
        fn aead_detects_bit_flips(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            plain in prop::collection::vec(any::<u8>(), 1..256),
            pos_seed in any::<usize>(),
            bit in 0u8..8,
        ) {
            let mut sealed = seal(&key, &nonce, b"aad", &plain);
            let pos = pos_seed % sealed.len();
            sealed[pos] ^= 1 << bit;
            prop_assert!(open(&key, &nonce, b"aad", &sealed).is_err());
        }
    }
}
