//! Property-based tests for the network substrate.
//!
//! Uses the in-tree [`oasis_sim::check`] harness so the suite runs with
//! no external dependencies.

use oasis_mem::ByteSize;
use oasis_net::wol::MacAddr;
use oasis_net::{MagicPacket, SharedChannel, TrafficAccountant, TrafficClass};
use oasis_sim::check::{run, Gen};
use oasis_sim::SimTime;

fn mac(g: &mut Gen) -> [u8; 6] {
    let mut m = [0u8; 6];
    for b in &mut m {
        *b = g.byte();
    }
    m
}

/// Every transfer started on a shared channel eventually finishes,
/// and total progress never exceeds capacity × time.
#[test]
fn shared_channel_conserves_bytes() {
    run(96, |g: &mut Gen| {
        let bandwidth = g.f64_in(1.0, 1e9);
        let transfers = g.vec(1, 40, |g| (g.u64_in(0, 3_600), g.u64_in(1, 1_000_000)));
        let mut ch = SharedChannel::new(bandwidth);
        let mut total_bytes = 0u64;
        let mut latest_start = 0u64;
        for &(start, bytes) in &transfers {
            ch.start(SimTime::from_secs(start), ByteSize::bytes(bytes));
            total_bytes += bytes;
            latest_start = latest_start.max(start);
        }
        // Run long enough for everything to finish.
        let horizon = latest_start as f64 + total_bytes as f64 / bandwidth + 1.0;
        ch.advance(SimTime::from_secs(horizon.ceil() as u64 + 1));
        assert_eq!(ch.take_finished().len(), transfers.len());
        assert_eq!(ch.in_flight(), 0);
    });
}

/// A transfer's completion time is never earlier than its serial
/// transmission time on an empty link.
#[test]
fn completion_not_faster_than_line_rate() {
    run(96, |g: &mut Gen| {
        let bandwidth = g.f64_in(1.0, 1e6);
        let bytes = g.u64_in(1, 10_000_000);
        let mut ch = SharedChannel::new(bandwidth);
        ch.start(SimTime::ZERO, ByteSize::bytes(bytes));
        let done = ch.next_completion().unwrap();
        let serial = bytes as f64 / bandwidth;
        assert!(done.as_secs_f64() >= serial - 1e-6);
    });
}

/// Aborting returns no more than the original byte count.
#[test]
fn abort_bounded() {
    run(96, |g: &mut Gen| {
        let bytes = g.u64_in(1, 1_000_000);
        let when = g.u64_in(0, 100);
        let mut ch = SharedChannel::new(1_000.0);
        let id = ch.start(SimTime::ZERO, ByteSize::bytes(bytes));
        if let Some(rem) = ch.abort(SimTime::from_secs(when), id) {
            assert!(rem.as_bytes() <= bytes);
        }
        assert_eq!(ch.remaining(id), None);
    });
}

/// Traffic accounting: grand total equals the sum of class totals,
/// and merge is additive.
#[test]
fn traffic_totals_consistent() {
    run(64, |g: &mut Gen| {
        let records = g.vec(0, 100, |g| (g.usize_in(0, 6), g.u64_in(0, 1u64 << 40)));
        let mut a = TrafficAccountant::new();
        let mut b = TrafficAccountant::new();
        for (i, &(class_idx, bytes)) in records.iter().enumerate() {
            let class = TrafficClass::ALL[class_idx];
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(class, ByteSize::bytes(bytes));
        }
        let sum_a: u64 = TrafficClass::ALL.iter().map(|&c| a.total(c).as_bytes()).sum();
        assert_eq!(a.grand_total().as_bytes(), sum_a);
        let before = a.grand_total() + b.grand_total();
        a.merge(&b);
        assert_eq!(a.grand_total(), before);
    });
}

/// Magic packets round trip for any MAC.
#[test]
fn magic_packet_round_trip() {
    run(64, |g: &mut Gen| {
        let pkt = MagicPacket::new(MacAddr(mac(g)));
        assert_eq!(MagicPacket::parse(&pkt.to_bytes()), Some(pkt));
    });
}

/// Corrupting any byte of a magic packet breaks parsing or changes
/// the target — never yields the same packet.
#[test]
fn magic_packet_detects_corruption() {
    run(128, |g: &mut Gen| {
        let pkt = MagicPacket::new(MacAddr(mac(g)));
        let pos = g.usize_in(0, 102);
        let flip = g.u64_in(1, 256) as u8;
        let mut bytes = pkt.to_bytes();
        bytes[pos] ^= flip;
        assert_ne!(MagicPacket::parse(&bytes), Some(pkt));
    });
}

mod secure_props {
    use super::*;
    use oasis_net::secure::{open, seal};

    fn key(g: &mut Gen) -> [u8; 32] {
        let mut k = [0u8; 32];
        for b in &mut k {
            *b = g.byte();
        }
        k
    }

    fn nonce(g: &mut Gen) -> [u8; 12] {
        let mut n = [0u8; 12];
        for b in &mut n {
            *b = g.byte();
        }
        n
    }

    /// AEAD round trips arbitrary payloads and AAD.
    #[test]
    fn aead_round_trips() {
        run(48, |g: &mut Gen| {
            let (key, nonce) = (key(g), nonce(g));
            let aad = g.bytes(64);
            let plain = g.bytes(2_048);
            let sealed = seal(&key, &nonce, &aad, &plain);
            assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), plain);
        });
    }

    /// Any single-bit flip in the sealed record is detected.
    #[test]
    fn aead_detects_bit_flips() {
        run(48, |g: &mut Gen| {
            let (key, nonce) = (key(g), nonce(g));
            let mut plain = g.bytes(256);
            if plain.is_empty() {
                plain.push(g.byte());
            }
            let bit = g.u64_in(0, 8) as u8;
            let mut sealed = seal(&key, &nonce, b"aad", &plain);
            let pos = g.usize_in(0, sealed.len());
            sealed[pos] ^= 1 << bit;
            assert!(open(&key, &nonce, b"aad", &sealed).is_err());
        });
    }
}
