//! Minimal flag parsing (no external dependencies).
//!
//! Supports `--key value` and `--key=value` flags and positional
//! arguments; unknown flags are errors so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` without a value.
    MissingValue(String),
    /// A flag not in the allowed set.
    UnknownFlag(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::BadValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program/subcommand prefix), allowing
    /// only the listed flags.
    pub fn parse<I: IntoIterator<Item = String>>(
        argv: I,
        allowed: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = argv.into_iter();
        while let Some(token) = it.next() {
            if let Some(flag) = token.strip_prefix("--") {
                // `--flag=value` carries its value inline; `--flag` takes
                // the next token.
                let (flag, inline) = match flag.split_once('=') {
                    Some((f, v)) => (f, Some(v.to_string())),
                    None => (flag, None),
                };
                if !allowed.contains(&flag) {
                    return Err(ArgError::UnknownFlag(flag.to_string()));
                }
                let value = match inline {
                    Some(v) => v,
                    None => it.next().ok_or_else(|| ArgError::MissingValue(flag.into()))?,
                };
                args.flags.insert(flag.to_string(), value);
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// A flag's raw value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A flag parsed to `T`, with a default.
    pub fn get_or<T: core::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue { flag: flag.to_string(), value: v.clone() }),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Self) -> bool {
        self.flags == other.flags && self.positional == other.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let args =
            Args::parse(sv(&["--seed", "7", "file.txt", "--homes", "30"]), &["seed", "homes"])
                .unwrap();
        assert_eq!(args.get("seed"), Some("7"));
        assert_eq!(args.get_or("homes", 0u32).unwrap(), 30);
        assert_eq!(args.get_or("missing", 5u32).unwrap(), 5);
        assert_eq!(args.positional(), &["file.txt".to_string()]);
    }

    #[test]
    fn parses_equals_form() {
        let args =
            Args::parse(sv(&["--seed=7", "--out=a=b.txt", "pos"]), &["seed", "out"]).unwrap();
        assert_eq!(args.get("seed"), Some("7"));
        assert_eq!(args.get("out"), Some("a=b.txt"), "only the first = splits");
        assert_eq!(args.positional(), &["pos".to_string()]);
        // Both spellings are interchangeable.
        assert_eq!(
            Args::parse(sv(&["--seed=7"]), &["seed"]).unwrap(),
            Args::parse(sv(&["--seed", "7"]), &["seed"]).unwrap()
        );
    }

    #[test]
    fn equals_form_still_validates_flag_names() {
        assert_eq!(
            Args::parse(sv(&["--bogus=1"]), &["seed"]),
            Err(ArgError::UnknownFlag("bogus".into()))
        );
        // An empty inline value is kept verbatim (and fails typed parses).
        let args = Args::parse(sv(&["--seed="]), &["seed"]).unwrap();
        assert_eq!(args.get("seed"), Some(""));
        assert!(matches!(args.get_or("seed", 0u64), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert_eq!(
            Args::parse(sv(&["--bogus", "1"]), &["seed"]),
            Err(ArgError::UnknownFlag("bogus".into()))
        );
        assert_eq!(
            Args::parse(sv(&["--seed"]), &["seed"]),
            Err(ArgError::MissingValue("seed".into()))
        );
        let args = Args::parse(sv(&["--seed", "abc"]), &["seed"]).unwrap();
        assert!(matches!(args.get_or("seed", 0u64), Err(ArgError::BadValue { .. })));
    }
}
