//! The `oasis report` observability digest.
//!
//! Runs one traced simulation day and renders what the deep-observability
//! layer captured: the hierarchical span profile, the planner decision
//! audit trail, the per-host/per-VM energy attribution ledger, and the
//! quiescence ledger. Output is byte-deterministic for a fixed seed
//! unless wall-clock fields are explicitly requested (`--wall true`).

use oasis_cluster::shard::SLA_THRESHOLD_SECS;
use oasis_cluster::{ClusterConfig, ClusterSim, DatacenterReport, ScenarioReport, SimReport};
use oasis_telemetry::{
    BufferSink, Event, EventRecord, FoldedMetric, Level, ProfileTree, Telemetry,
};
use oasis_trace::DayKind;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One traced run: the simulation report plus the raw observability
/// captures the renderers digest.
pub struct RunReport {
    /// The day's simulation report (energy/quiescence/decision ledgers
    /// included).
    pub report: SimReport,
    /// Snapshot of the hierarchical span profiler.
    pub tree: ProfileTree,
    /// Every event the bus recorded, in emission order.
    pub records: Vec<EventRecord>,
}

/// Runs one day of `cfg` with a recording telemetry bus attached.
pub fn traced_run(cfg: ClusterConfig) -> RunReport {
    let telemetry = Telemetry::new(Level::Info);
    let buffer = BufferSink::new();
    telemetry.attach(Box::new(buffer.clone()));
    let mut sim = ClusterSim::new(cfg);
    sim.attach_telemetry(telemetry.clone());
    let report = sim.run_day();
    let tree = telemetry.profiler().snapshot();
    let records = buffer.drain();
    RunReport { report, tree, records }
}

/// Counters derived from the recorded audit-trail events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// `decision_made` records on the bus.
    pub decision_events: u64,
    /// `plan_audit` round records.
    pub plan_audits: u64,
    /// Plan audits whose net-energy verdict approved the vacate pass.
    pub plan_audits_approved: u64,
    /// Migration/recovery events that carry a decision id.
    pub effect_events: u64,
    /// Effect events whose id resolves to a `decision_made` record.
    pub resolved_effects: u64,
}

impl AuditSummary {
    /// Tallies decision records and resolves effect ids against them.
    pub fn from_records(records: &[EventRecord]) -> AuditSummary {
        let mut out = AuditSummary::default();
        let mut ids = BTreeSet::new();
        for rec in records {
            match &rec.event {
                Event::DecisionMade { decision, .. } => {
                    out.decision_events += 1;
                    ids.insert(*decision);
                }
                Event::PlanAudit { approved, .. } => {
                    out.plan_audits += 1;
                    if *approved {
                        out.plan_audits_approved += 1;
                    }
                }
                _ => {}
            }
        }
        for rec in records {
            let decision = match &rec.event {
                Event::MigrationStarted { decision, .. }
                | Event::MigrationCompleted { decision, .. }
                | Event::MigrationStalled { decision, .. }
                | Event::MigrationAborted { decision, .. }
                | Event::RecoveryApplied { decision, .. } => *decision,
                _ => continue,
            };
            out.effect_events += 1;
            if ids.contains(&decision) {
                out.resolved_effects += 1;
            }
        }
        out
    }
}

/// The audit-trail slice of the event stream as JSONL: every decision,
/// round audit, and the migration/recovery events their ids thread into.
/// Byte-deterministic for a fixed seed.
pub fn audit_jsonl(records: &[EventRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let keep = matches!(
            rec.event,
            Event::DecisionMade { .. }
                | Event::PlanAudit { .. }
                | Event::MigrationStarted { .. }
                | Event::MigrationCompleted { .. }
                | Event::MigrationStalled { .. }
                | Event::MigrationAborted { .. }
                | Event::RecoveryApplied { .. }
        );
        if keep {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
    }
    out
}

/// Top-`n` profiler stacks by self simulated time, descending, ties in
/// first-entry order.
pub fn top_spans(tree: &ProfileTree, n: usize) -> Vec<(String, u64)> {
    let mut stacks: Vec<(String, u64)> = tree
        .folded(FoldedMetric::SimMicros)
        .lines()
        .filter_map(|l| {
            let (stack, value) = l.rsplit_once(' ')?;
            Some((stack.to_string(), value.parse().ok()?))
        })
        .collect();
    stacks.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    stacks.truncate(n);
    stacks
}

fn day_str(day: DayKind) -> &'static str {
    match day {
        DayKind::Weekday => "weekday",
        DayKind::Weekend => "weekend",
    }
}

const MJ_PER_KWH: f64 = 3.6e9;

/// Renders the human-readable report.
pub fn render_text(run: &RunReport, top: usize, include_wall: bool) -> String {
    let r = &run.report;
    let audit = AuditSummary::from_records(&run.records);
    let mut out = String::new();
    let _ = writeln!(out, "{}", r.summary_line());
    let _ = writeln!(out);

    let _ = writeln!(out, "== span profile ==");
    out.push_str(&run.tree.render(include_wall));
    let stacks = top_spans(&run.tree, top);
    let _ = writeln!(out, "top {} stacks by self sim time:", stacks.len());
    for (stack, us) in &stacks {
        let _ = writeln!(out, "  {us:>16}us  {stack}");
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "== decision audit ==");
    let d = &r.decisions;
    let _ = writeln!(
        out,
        "decisions: total={} consolidate={} exchange={} promote_in_place={} relocate={} \
         return_home={} fallback_promote={} shed={} stall={}",
        d.total(),
        d.consolidate,
        d.exchange,
        d.promote_in_place,
        d.relocate,
        d.return_home,
        d.fallback_promote,
        d.shed,
        d.stall
    );
    let _ = writeln!(
        out,
        "audit records: decision_made={} plan_audit={} (approved={})",
        audit.decision_events, audit.plan_audits, audit.plan_audits_approved
    );
    let _ = writeln!(
        out,
        "effects: {} migration/recovery events carry decision ids, {} resolve",
        audit.effect_events, audit.resolved_effects
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "== energy attribution (integer millijoules) ==");
    out.push_str(&r.energy.render());
    let active = r.energy.component_mj(|h| h.active_mj);
    let _ = writeln!(
        out,
        "vm shares: {} VMs, share total {} mJ of active {} mJ, bit-exact={}",
        r.energy.vms.len(),
        r.energy.vm_total_mj(),
        active,
        r.energy.vm_total_mj() == active
    );
    let _ = writeln!(
        out,
        "meter cross-check: ledger {:.3} kWh vs meter {:.3} kWh",
        r.energy.total_mj() as f64 / MJ_PER_KWH,
        r.total_kwh
    );
    let _ = writeln!(out);

    let _ = writeln!(out, "== quiescence ==");
    let q = &r.quiescence;
    let _ = writeln!(
        out,
        "intervals={} host-intervals={} quiescent={} ({:.1}%)",
        q.intervals,
        q.host_intervals,
        q.host_quiescent,
        q.host_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "vm-intervals={} quiescent={} ({:.1}%) — sizing evidence for the event \
         engine's structural skipping (DESIGN.md §17–18)",
        q.vm_intervals,
        q.vm_quiescent,
        q.vm_fraction() * 100.0
    );
    out
}

/// Renders the datacenter digest: fleet totals, the epoch planner's
/// rebalance ledger, the event engine's skip accounting, and one
/// fixed-order line per rack (energy, SLA violations, migrations,
/// quiescent fraction). Byte-deterministic for a fixed seed — across
/// reruns and across `--jobs`/`OASIS_JOBS` worker counts, which the
/// shard-equivalence suite and the unit test below both enforce.
pub fn render_datacenter_text(report: &mut DatacenterReport) -> String {
    let stats = report.stats_total();
    let sla = report.sla_violations(SLA_THRESHOLD_SECS);
    let mut out = String::new();
    let _ = writeln!(out, "== datacenter ==");
    let _ = writeln!(
        out,
        "racks={} hosts={} vms={} planner={}",
        report.racks, report.hosts, report.vms, report.planner
    );
    let _ = writeln!(
        out,
        "baseline={:.3}kWh actual={:.3}kWh savings={:.1}%",
        report.baseline_kwh,
        report.total_kwh,
        report.energy_savings * 100.0
    );
    let _ = writeln!(
        out,
        "rebalance: grants={} bytes={}",
        report.rebalance_grants, report.rebalance_bytes
    );
    let _ = writeln!(
        out,
        "engine: replays={} cached-host-intervals={} fetch-skipped={}",
        stats.planner_replays, stats.cached_host_intervals, stats.fetch_skipped
    );
    let _ = writeln!(out, "sla violations (>{SLA_THRESHOLD_SECS:.0}s): {sla}");
    let _ = writeln!(out);
    let _ = writeln!(out, "== racks ==");
    for (rack, r) in report.rack_reports.iter_mut().enumerate() {
        let sla = r.sla_violations(SLA_THRESHOLD_SECS);
        let migrations = r.migrations.full + r.migrations.partial;
        let _ = writeln!(
            out,
            "rack {rack:>5}  kwh={kwh:>9.3}  sla_violations={sla:>5}  migrations={mig:>5}  \
             quiescent={quiet:>5.1}%",
            kwh = r.total_kwh,
            mig = migrations,
            quiet = r.quiescence.host_fraction() * 100.0
        );
    }
    out
}

/// The datacenter digest as JSON (field order fixed for byte-stable
/// artifacts, like [`render_json`]).
pub fn render_datacenter_json(report: &mut DatacenterReport) -> String {
    let stats = report.stats_total();
    let sla = report.sla_violations(SLA_THRESHOLD_SECS);
    let mut out = String::from("{");
    let _ = write!(
        out,
        r#""racks":{},"planner":"{}","hosts":{},"vms":{},"baseline_kwh":{},"total_kwh":{},"savings":{},"rebalance_grants":{},"rebalance_bytes":{},"sla_violations":{}"#,
        report.racks,
        report.planner,
        report.hosts,
        report.vms,
        report.baseline_kwh,
        report.total_kwh,
        report.energy_savings,
        report.rebalance_grants,
        report.rebalance_bytes,
        sla
    );
    let _ = write!(
        out,
        r#","engine":{{"planner_replays":{},"cached_host_intervals":{},"fetch_skipped":{}}}"#,
        stats.planner_replays, stats.cached_host_intervals, stats.fetch_skipped
    );
    out.push_str(",\"racks_digest\":[");
    for (rack, r) in report.rack_reports.iter_mut().enumerate() {
        if rack > 0 {
            out.push(',');
        }
        let sla = r.sla_violations(SLA_THRESHOLD_SECS);
        // Fixed precision, like every other digest float: the raw f64
        // `Display` repr prints a varying number of digits and made this
        // the one field downstream `cmp` legs could not rely on.
        let _ = write!(
            out,
            r#"{{"rack":{},"kwh":{},"sla_violations":{},"migrations":{},"quiescent_fraction":{:.6}}}"#,
            rack,
            r.total_kwh,
            sla,
            r.migrations.full + r.migrations.partial,
            r.quiescence.host_fraction()
        );
    }
    out.push_str("]}");
    out
}

/// Renders a scenario digest as human-readable text: the headline
/// digest line, the guards statement, and the per-generation energy
/// split. Fixed precision throughout — byte-deterministic for a fixed
/// seed across engines, fidelities, and worker counts.
pub fn render_scenario_text(spec: &oasis_cluster::ScenarioSpec, r: &ScenarioReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== scenario {} ==", r.name);
    let _ = writeln!(out, "guards: {}", spec.guards);
    let _ = writeln!(out, "racks={} hosts={} vms={} seed={}", r.racks, r.hosts, r.vms, r.seed);
    let _ = writeln!(
        out,
        "baseline={:.6}kWh actual={:.6}kWh savings={:.2}%",
        r.baseline_kwh,
        r.total_kwh,
        r.energy_savings * 100.0
    );
    let _ = writeln!(
        out,
        "sla violations (>{SLA_THRESHOLD_SECS:.0}s): {}   migration bytes: {}",
        r.sla_violations, r.migration_bytes
    );
    let _ = writeln!(
        out,
        "faults={} recoveries={} reboots={}",
        r.faults_injected, r.recoveries, r.reboots
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "== generations ==");
    for g in &r.generations {
        let _ = writeln!(
            out,
            "{name:<12} hosts={hosts:>3}  energy={mj:>15}mj",
            name = g.name,
            hosts = g.hosts,
            mj = g.total_mj
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", r.digest());
    out
}

/// The scenario digest as fixed-field-order JSON — exactly
/// [`ScenarioReport::to_json`] plus a trailing newline, so `--out`
/// artifacts diff cleanly.
pub fn render_scenario_json(r: &ScenarioReport) -> String {
    let mut out = r.to_json();
    out.push('\n');
    out
}

/// Renders the machine-readable report (field order fixed for
/// byte-stable artifacts).
pub fn render_json(run: &RunReport, top: usize, include_wall: bool) -> String {
    let r = &run.report;
    let audit = AuditSummary::from_records(&run.records);
    let mut out = String::from("{");
    let _ = write!(
        out,
        r#""policy":"{}","day":"{}","baseline_kwh":{},"total_kwh":{},"savings":{}"#,
        r.policy,
        day_str(r.day),
        r.baseline_kwh,
        r.total_kwh,
        r.energy_savings
    );
    let _ = write!(out, r#","profile":{}"#, run.tree.to_json(include_wall));
    out.push_str(",\"top_spans\":[");
    for (i, (stack, us)) in top_spans(&run.tree, top).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#"{{"stack":"{stack}","self_sim_us":{us}}}"#);
    }
    out.push(']');
    let d = &r.decisions;
    let _ = write!(
        out,
        r#","decisions":{{"total":{},"consolidate":{},"exchange":{},"promote_in_place":{},"relocate":{},"return_home":{},"fallback_promote":{},"shed":{},"stall":{},"decision_events":{},"plan_audits":{},"plan_audits_approved":{},"effect_events":{},"resolved_effects":{}}}"#,
        d.total(),
        d.consolidate,
        d.exchange,
        d.promote_in_place,
        d.relocate,
        d.return_home,
        d.fallback_promote,
        d.shed,
        d.stall,
        audit.decision_events,
        audit.plan_audits,
        audit.plan_audits_approved,
        audit.effect_events,
        audit.resolved_effects
    );
    let e = &r.energy;
    let _ = write!(
        out,
        r#","energy":{{"total_mj":{},"active_mj":{},"idle_mj":{},"transition_mj":{},"memserver_mj":{},"vm_share_total_mj":{},"vm_share_exact":{},"hosts":["#,
        e.total_mj(),
        e.component_mj(|h| h.active_mj),
        e.component_mj(|h| h.idle_mj),
        e.component_mj(|h| h.transition_mj),
        e.component_mj(|h| h.memserver_mj),
        e.vm_total_mj(),
        e.vm_total_mj() == e.component_mj(|h| h.active_mj)
    );
    for (i, h) in e.hosts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"host":{},"active_mj":{},"idle_mj":{},"transition_mj":{},"memserver_mj":{},"total_mj":{}}}"#,
            h.host,
            h.active_mj,
            h.idle_mj,
            h.transition_mj,
            h.memserver_mj,
            h.total_mj()
        );
    }
    out.push_str("],\"vms\":[");
    for (i, v) in e.vms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#"{{"vm":{},"share_mj":{}}}"#, v.vm, v.share_mj);
    }
    out.push_str("]}");
    let q = &r.quiescence;
    let _ = write!(
        out,
        r#","quiescence":{{"intervals":{},"host_intervals":{},"host_quiescent":{},"host_fraction":{},"vm_intervals":{},"vm_quiescent":{},"vm_fraction":{}}}"#,
        q.intervals,
        q.host_intervals,
        q.host_quiescent,
        q.host_fraction(),
        q.vm_intervals,
        q.vm_quiescent,
        q.vm_fraction()
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_cluster::experiments::Scale;
    use oasis_cluster::shard::{run_datacenter_day, DatacenterConfig};
    use oasis_core::PolicyKind;
    use oasis_sim::WorkerPool;
    use oasis_trace::DayKind;

    /// The `oasis report` datacenter digest is byte-identical across
    /// worker counts — the CLI-facing face of the shard-equivalence
    /// contract.
    #[test]
    fn datacenter_digest_is_byte_identical_across_worker_counts() {
        let scale = Scale { home_hosts: 6, vms_per_host: 10, racks: 3 };
        let dc = DatacenterConfig::at(scale, PolicyKind::FullToPartial, DayKind::Weekday, 1);
        let render = |pool: &WorkerPool| {
            let mut report = run_datacenter_day(pool, &dc, &|| 0.0);
            (render_datacenter_text(&mut report), render_datacenter_json(&mut report))
        };
        let (seq_text, seq_json) = render(&WorkerPool::sequential());
        let (par_text, par_json) = render(&WorkerPool::new(3));
        assert!(seq_text.contains("== racks ==\nrack     0  kwh="));
        assert!(seq_json.starts_with(r#"{"racks":3,"planner":"global","hosts":21,"vms":180,"#));
        assert_eq!(seq_text, par_text);
        assert_eq!(seq_json, par_json);
    }
}
