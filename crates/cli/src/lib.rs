//! Command-line front end for the Oasis simulator.
//!
//! The root workspace package builds this into the `oasis` binary:
//!
//! ```text
//! oasis sim    [--policy P] [--day weekday|weekend] [--homes N]
//!              [--cons N] [--vms N] [--seed S] [--interval-mins M]
//!              [--memserver-watts W] [--faults PATH]
//!              [--fault-profile light|heavy] [--trace-out PATH]
//!              [--metrics-out PATH] [--log-level off|warn|info|debug]
//!              [--fidelity per-page|batched] [--engine interval|event]
//! oasis week   [--policy P] [--homes N] [--cons N] [--vms N] [--seed S]
//!              [--jobs N] [--fidelity per-page|batched]
//!              [--engine interval|event]
//! oasis micro  [--seed S] [--fidelity per-page|batched]
//! oasis report [same sim flags] [--format text|json] [--top N]
//!              [--wall true] [--folded PATH] [--folded-metric wall|sim|calls]
//!              [--audit-out PATH] [--out PATH]
//! oasis trace  generate [--users N] [--weeks N] [--seed S] [--out PATH]
//! oasis trace  stats <PATH>
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value`.

pub mod args;
pub mod report;

use args::Args;
use oasis_cluster::experiments::run_week_on;
use oasis_cluster::{ClusterConfig, ClusterSim};
use oasis_core::PolicyKind;
use oasis_faults::{FaultProfile, FaultSchedule};
use oasis_migration::lab::{LabOptions, MicroLab};
use oasis_power::MemoryServerProfile;
use oasis_sim::{ModelFidelity, SimDuration, WorkerPool};
use oasis_telemetry::{FoldedMetric, JsonlSink, Level, Telemetry};
use oasis_trace::{ActivityModel, DayKind, TraceSet};
use oasis_vm::apps::DesktopWorkload;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: oasis <sim|week|micro|trace> [flags]\n\
         \n\
         oasis sim    --policy FulltoPartial --day weekday --homes 30 \\\n\
         \x20             --cons 4 --vms 30 --seed 1 [--interval-mins 5] \\\n\
         \x20             [--memserver-watts 42.2] [--faults schedule.txt] \\\n\
         \x20             [--fault-profile light|heavy] [--trace-out events.jsonl] \\\n\
         \x20             [--metrics-out metrics.prom] [--log-level debug] \\\n\
         \x20             [--fidelity per-page|batched] [--engine interval|event]\n\
         oasis week   --policy FulltoPartial --seed 1 [--jobs N] \\\n\
         \x20             [--fidelity per-page|batched] [--engine interval|event]\n\
         oasis micro  --seed 1 [--fidelity per-page|batched]\n\
         oasis report --policy FulltoPartial --day weekday --seed 1 \\\n\
         \x20             [--format text|json] [--top 10] [--wall true] \\\n\
         \x20             [--folded profile.folded] [--folded-metric wall|sim|calls] \\\n\
         \x20             [--audit-out audit.jsonl] [--out report.txt]\n\
         oasis trace  generate --users 22 --weeks 17 --seed 1 --out traces.txt\n\
         oasis trace  stats traces.txt"
    );
    std::process::exit(2);
}

fn fail(msg: impl core::fmt::Display) -> ! {
    eprintln!("oasis: {msg}");
    std::process::exit(1);
}

fn parse_day(s: &str) -> DayKind {
    match s.to_ascii_lowercase().as_str() {
        "weekday" | "wd" => DayKind::Weekday,
        "weekend" | "we" => DayKind::Weekend,
        other => fail(format!("unknown day kind {other:?}")),
    }
}

fn cluster_config(args: &Args) -> ClusterConfig {
    let policy: PolicyKind = args
        .get("policy")
        .map(|p| p.parse().unwrap_or_else(|e| fail(e)))
        .unwrap_or(PolicyKind::FullToPartial);
    let day = parse_day(args.get("day").unwrap_or("weekday"));
    let mut builder = ClusterConfig::builder()
        .policy(policy)
        .day(day)
        .home_hosts(args.get_or("homes", 30).unwrap_or_else(|e| fail(e)))
        .consolidation_hosts(args.get_or("cons", 4).unwrap_or_else(|e| fail(e)))
        .vms_per_host(args.get_or("vms", 30).unwrap_or_else(|e| fail(e)))
        .seed(args.get_or("seed", 1).unwrap_or_else(|e| fail(e)))
        .interval(SimDuration::from_mins(
            args.get_or("interval-mins", 5).unwrap_or_else(|e| fail(e)),
        ));
    if let Some(watts) = args.get("memserver-watts") {
        let watts: f64 = watts.parse().unwrap_or_else(|_| fail("bad --memserver-watts"));
        builder = builder.memserver(MemoryServerProfile::with_budget_watts(watts));
    }
    if let Some(f) = args.get("fidelity") {
        builder = builder.fidelity(f.parse().unwrap_or_else(|e| fail(e)));
    }
    if let Some(e) = args.get("engine") {
        builder = builder.engine(e.parse().unwrap_or_else(|e| fail(e)));
    }
    if let Some(path) = args.get("trace") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
        let set = TraceSet::from_text(&text).unwrap_or_else(|e| fail(e));
        builder = builder.trace(set);
    }
    if let Some(path) = args.get("faults") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
        let schedule = FaultSchedule::from_text(&text).unwrap_or_else(|e| fail(e));
        builder = builder.faults(schedule);
    } else if let Some(profile) = args.get("fault-profile") {
        let profile = match profile.to_ascii_lowercase().as_str() {
            "light" => FaultProfile::light(),
            "heavy" => FaultProfile::heavy(),
            other => fail(format!("unknown fault profile {other:?} (light|heavy)")),
        };
        let cfg = builder.clone().build().unwrap_or_else(|e| fail(e));
        let schedule = FaultSchedule::random(
            profile,
            cfg.home_hosts + cfg.consolidation_hosts,
            SimDuration::from_hours(24),
            cfg.seed ^ 0xFA17,
        );
        builder = builder.faults(schedule);
    }
    builder.build().unwrap_or_else(|e| fail(e))
}

const BASE_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "jobs",
    "fidelity",
    "engine",
];

/// The worker pool requested by `--jobs`, falling back to `OASIS_JOBS`
/// and then the machine's available parallelism.
fn pool_from(args: &Args) -> WorkerPool {
    match args.get("jobs") {
        Some(v) => {
            let jobs: usize = v.parse().unwrap_or_else(|_| fail("bad --jobs (want a count ≥ 1)"));
            WorkerPool::new(jobs)
        }
        None => WorkerPool::from_env(),
    }
}

const SIM_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "faults",
    "fault-profile",
    "trace-out",
    "metrics-out",
    "log-level",
    "fidelity",
    "engine",
];

/// Builds the telemetry bus requested by `--trace-out`, `--metrics-out`
/// and `--log-level`. With none of them present, telemetry stays off and
/// the simulation runs exactly as before.
fn telemetry_from(args: &Args) -> Telemetry {
    let wants = args.get("trace-out").is_some()
        || args.get("metrics-out").is_some()
        || args.get("log-level").is_some();
    if !wants {
        return Telemetry::disabled();
    }
    let level = args
        .get("log-level")
        .map(|s| s.parse::<Level>().unwrap_or_else(|e| fail(e)))
        .unwrap_or(Level::Info);
    let telemetry = Telemetry::new(level);
    if let Some(path) = args.get("trace-out") {
        let sink = JsonlSink::create(Path::new(path)).unwrap_or_else(|e| fail(e));
        telemetry.attach(Box::new(sink));
    }
    telemetry
}

/// Writes the metrics registry to `path`: JSON when the path ends in
/// `.json`, Prometheus text exposition otherwise.
fn write_metrics(telemetry: &Telemetry, path: &str) {
    let text = if path.ends_with(".json") {
        telemetry.metrics().to_json()
    } else {
        telemetry.metrics().to_prometheus()
    };
    std::fs::write(path, text).unwrap_or_else(|e| fail(e));
}

fn cmd_sim(args: Args) {
    let cfg = cluster_config(&args);
    let telemetry = telemetry_from(&args);
    let mut sim = ClusterSim::new(cfg);
    sim.attach_telemetry(telemetry.clone());
    let mut report = sim.run_day();
    println!("{}", report.summary_line());
    println!(
        "zero-delay wake-ups: {:.0}%   p99 delay: {:.1}s   network: {:.1} GiB",
        report.zero_delay_fraction() * 100.0,
        report.transition_delays.quantile(0.99).unwrap_or(0.0),
        report.network_bytes().as_gib_f64(),
    );
    if !report.faults.is_empty() {
        println!("{}", report.faults.summary_line());
        let violations = report.integrity_violations();
        if !violations.is_empty() {
            fail(format!("placement integrity violated:\n{}", violations.join("\n")));
        }
    }
    if telemetry.is_enabled() {
        print!("{}", report.telemetry);
    }
    if let Some(path) = args.get("metrics-out") {
        write_metrics(&telemetry, path);
    }
}

const REPORT_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "faults",
    "fault-profile",
    "fidelity",
    "engine",
    "format",
    "top",
    "wall",
    "folded",
    "folded-metric",
    "audit-out",
    "out",
];

fn cmd_report(args: Args) {
    let cfg = cluster_config(&args);
    let include_wall = args.get_or("wall", false).unwrap_or_else(|e| fail(e));
    let top = args.get_or("top", 10usize).unwrap_or_else(|e| fail(e));
    let run = report::traced_run(cfg);
    if let Some(path) = args.get("folded") {
        let metric: FoldedMetric =
            args.get_or("folded-metric", FoldedMetric::SimMicros).unwrap_or_else(|e| fail(e));
        std::fs::write(path, run.tree.folded(metric)).unwrap_or_else(|e| fail(e));
    }
    if let Some(path) = args.get("audit-out") {
        std::fs::write(path, report::audit_jsonl(&run.records)).unwrap_or_else(|e| fail(e));
    }
    let text = match args.get("format").unwrap_or("text") {
        "text" => report::render_text(&run, top, include_wall),
        "json" => report::render_json(&run, top, include_wall),
        other => fail(format!("unknown report format {other:?} (text|json)")),
    };
    match args.get("out") {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| fail(e)),
        None => print!("{text}"),
    }
}

fn cmd_week(args: Args) {
    let cfg = cluster_config(&args);
    let week = run_week_on(&pool_from(&args), &cfg);
    for (i, day) in week.days.iter().enumerate() {
        println!("day {}: {}", i + 1, day.summary_line());
    }
    println!(
        "week: savings {:.1}%  baseline {:.1} kWh  managed {:.1} kWh",
        week.savings * 100.0,
        week.baseline_kwh,
        week.total_kwh
    );
}

fn cmd_micro(args: Args) {
    let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
    let fidelity: ModelFidelity =
        args.get_or("fidelity", ModelFidelity::from_env()).unwrap_or_else(|e| fail(e));
    let mut lab = MicroLab::with_options(seed, LabOptions { fidelity, ..LabOptions::default() });
    lab.prime_os();
    lab.run_workload(&DesktopWorkload::workload1());
    lab.idle_wait(SimDuration::from_mins(5));
    println!("full migration baseline: {:.1}s", lab.full_migrate_baseline().duration.as_secs_f64());
    let first = lab.partial_migrate();
    println!(
        "partial #1: {:.1}s (upload {:.1}s)",
        first.outcome.total.as_secs_f64(),
        first.outcome.upload_time.as_secs_f64()
    );
    let idle = lab.consolidated_idle(SimDuration::from_mins(20));
    println!("consolidated 20 min: {} faults, {} fetched", idle.faults, idle.fetched);
    let reint = lab.reintegrate();
    println!(
        "reintegration: {:.1}s, {} dirty state",
        reint.total.as_secs_f64(),
        reint.network_bytes
    );
    lab.run_workload(&DesktopWorkload::workload2());
    lab.idle_wait(SimDuration::from_mins(5));
    let second = lab.partial_migrate();
    println!(
        "partial #2: {:.1}s (differential upload {:.1}s)",
        second.outcome.total.as_secs_f64(),
        second.outcome.upload_time.as_secs_f64()
    );
}

fn cmd_trace(mut argv: Vec<String>) {
    if argv.is_empty() {
        usage();
    }
    let sub = argv.remove(0);
    match sub.as_str() {
        "generate" => {
            let args =
                Args::parse(argv, &["users", "weeks", "seed", "out"]).unwrap_or_else(|e| fail(e));
            let users = args.get_or("users", 22usize).unwrap_or_else(|e| fail(e));
            let weeks = args.get_or("weeks", 17usize).unwrap_or_else(|e| fail(e));
            let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
            let set = ActivityModel::new().generate_library(users, weeks, seed);
            let text = set.to_text();
            match args.get("out") {
                Some(path) => {
                    std::fs::write(path, text).unwrap_or_else(|e| fail(e));
                    println!("wrote {} user-days to {path}", set.len());
                }
                None => print!("{text}"),
            }
        }
        "stats" => {
            let args = Args::parse(argv, &[]).unwrap_or_else(|e| fail(e));
            let [path] = args.positional() else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
            let set = TraceSet::from_text(&text).unwrap_or_else(|e| fail(e));
            for kind in [DayKind::Weekday, DayKind::Weekend] {
                let days = set.of_kind(kind);
                if days.is_empty() {
                    continue;
                }
                let mean: f64 =
                    days.iter().map(|d| d.active_fraction()).sum::<f64>() / days.len() as f64;
                println!("{kind:?}: {} user-days, mean activity {:.1}%", days.len(), mean * 100.0);
            }
        }
        _ => usage(),
    }
}

/// Entry point shared by every `oasis` binary front end.
pub fn run() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    match command.as_str() {
        "sim" => cmd_sim(Args::parse(argv, SIM_FLAGS).unwrap_or_else(|e| fail(e))),
        "week" => cmd_week(Args::parse(argv, BASE_FLAGS).unwrap_or_else(|e| fail(e))),
        "report" => cmd_report(Args::parse(argv, REPORT_FLAGS).unwrap_or_else(|e| fail(e))),
        "micro" => cmd_micro(Args::parse(argv, &["seed", "fidelity"]).unwrap_or_else(|e| fail(e))),
        "trace" => cmd_trace(argv),
        _ => usage(),
    }
}
