//! Command-line front end for the Oasis simulator.
//!
//! The root workspace package builds this into the `oasis` binary:
//!
//! ```text
//! oasis sim    [--policy P] [--day weekday|weekend] [--homes N]
//!              [--cons N] [--vms N] [--seed S] [--interval-mins M]
//!              [--memserver-watts W] [--faults PATH]
//!              [--fault-profile light|heavy] [--trace-out PATH]
//!              [--metrics-out PATH] [--log-level off|warn|info|debug]
//!              [--fidelity per-page|batched] [--engine interval|event]
//!              [--scale paper|smoke|datacenter] [--racks N]
//!              [--planner global|local] [--jobs N]
//!              [--scenario NAME]
//! oasis week   [--policy P] [--homes N] [--cons N] [--vms N] [--seed S]
//!              [--jobs N] [--fidelity per-page|batched]
//!              [--engine interval|event]
//! oasis micro  [--seed S] [--fidelity per-page|batched]
//! oasis report [same sim flags] [--format text|json] [--top N]
//!              [--wall true] [--folded PATH] [--folded-metric wall|sim|calls]
//!              [--audit-out PATH] [--out PATH] [--scorecard true]
//!              [--scenario NAME]
//! oasis trace  generate [--users N] [--weeks N] [--seed S] [--out PATH]
//! oasis trace  stats <PATH>
//! ```
//!
//! Flags accept both `--flag value` and `--flag=value`.
//!
//! `--scale` picks a canned deployment shape (the paper's §5.1 rack, the
//! reduced smoke rack, or the 5,000-rack datacenter tier); `--racks`
//! overrides its rack count. Any run spanning more than one rack goes
//! through the sharded datacenter engine ([`oasis_cluster::shard`]):
//! `sim` prints the fleet summary and `report` renders the per-rack
//! digest, both byte-identical across `--jobs` worker counts.
//!
//! `--scenario` runs a named preset from the stress-scenario registry
//! ([`oasis_cluster::scenarios`]) instead of a hand-assembled shape:
//! `sim` prints the golden digest line, `report` renders the full
//! digest (text or fixed-field-order JSON). The preset fixes the fleet
//! shape, so `--scale`/`--racks`/`--homes`/`--cons`/`--vms` conflict
//! with it; `--seed`, `--engine`, `--fidelity` and `--jobs` compose.

pub mod args;
pub mod report;

use args::Args;
use oasis_cluster::experiments::{run_week_on, Scale};
use oasis_cluster::scenarios;
use oasis_cluster::shard::{planner_scorecard, run_datacenter_day, DatacenterConfig, PlannerScope};
use oasis_cluster::{ClusterConfig, ClusterSim, ScenarioSpec};
use oasis_core::PolicyKind;
use oasis_faults::{FaultProfile, FaultSchedule};
use oasis_migration::lab::{LabOptions, MicroLab};
use oasis_power::MemoryServerProfile;
use oasis_sim::{EngineMode, ModelFidelity, SimDuration, WorkerPool};
use oasis_telemetry::{FoldedMetric, JsonlSink, Level, Telemetry};
use oasis_trace::{ActivityModel, DayKind, TraceSet};
use oasis_vm::apps::DesktopWorkload;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: oasis <sim|week|micro|trace> [flags]\n\
         \n\
         oasis sim    --policy FulltoPartial --day weekday --homes 30 \\\n\
         \x20             --cons 4 --vms 30 --seed 1 [--interval-mins 5] \\\n\
         \x20             [--memserver-watts 42.2] [--faults schedule.txt] \\\n\
         \x20             [--fault-profile light|heavy] [--trace-out events.jsonl] \\\n\
         \x20             [--metrics-out metrics.prom] [--log-level debug] \\\n\
         \x20             [--fidelity per-page|batched] [--engine interval|event] \\\n\
         \x20             [--scale paper|smoke|datacenter] [--racks N] \\\n\
         \x20             [--planner global|local] [--jobs N] [--scenario NAME]\n\
         oasis week   --policy FulltoPartial --seed 1 [--jobs N] \\\n\
         \x20             [--fidelity per-page|batched] [--engine interval|event]\n\
         oasis micro  --seed 1 [--fidelity per-page|batched]\n\
         oasis report --policy FulltoPartial --day weekday --seed 1 \\\n\
         \x20             [--format text|json] [--top 10] [--wall true] \\\n\
         \x20             [--folded profile.folded] [--folded-metric wall|sim|calls] \\\n\
         \x20             [--audit-out audit.jsonl] [--out report.txt] \\\n\
         \x20             [--scale datacenter] [--racks N] [--planner global|local] \\\n\
         \x20             [--jobs N] [--scorecard true] [--scenario NAME]\n\
         oasis trace  generate --users 22 --weeks 17 --seed 1 --out traces.txt\n\
         oasis trace  stats traces.txt"
    );
    std::process::exit(2);
}

fn fail(msg: impl core::fmt::Display) -> ! {
    eprintln!("oasis: {msg}");
    std::process::exit(1);
}

fn parse_day(s: &str) -> DayKind {
    match s.to_ascii_lowercase().as_str() {
        "weekday" | "wd" => DayKind::Weekday,
        "weekend" | "we" => DayKind::Weekend,
        other => fail(format!("unknown day kind {other:?}")),
    }
}

/// The deployment shape preset named by `--scale`, if any.
fn scale_from(args: &Args) -> Option<Scale> {
    args.get("scale").map(|s| match s.to_ascii_lowercase().as_str() {
        "paper" => Scale::PAPER,
        "smoke" => Scale::SMOKE,
        "datacenter" | "dc" => Scale::DATACENTER,
        other => fail(format!("unknown scale {other:?} (paper|smoke|datacenter)")),
    })
}

/// Racks requested by `--racks`, defaulting to the `--scale` preset's
/// count (1 without a preset). More than one rack routes the command
/// through the sharded datacenter engine.
fn racks_from(args: &Args) -> u32 {
    let default = scale_from(args).map_or(1, |s| s.racks);
    match args.get_or("racks", default).unwrap_or_else(|e| fail(e)) {
        0 => fail("--racks wants a count ≥ 1"),
        racks => racks,
    }
}

/// The scenario preset named by `--scenario`, with the registry listed
/// on an unknown name.
fn scenario_from(args: &Args) -> Option<ScenarioSpec> {
    let name = args.get("scenario")?;
    Some(scenarios::find(name).unwrap_or_else(|| {
        fail(format!("unknown scenario {name:?} (registered: {})", scenarios::names().join(", ")))
    }))
}

/// Engine/fidelity selection for a scenario run: explicit flags win,
/// the environment (`OASIS_ENGINE`/`OASIS_FIDELITY`) fills the rest.
fn scenario_select(args: &Args) -> (EngineMode, ModelFidelity) {
    let engine = args
        .get("engine")
        .map(|e| e.parse().unwrap_or_else(|e| fail(e)))
        .unwrap_or_else(EngineMode::from_env);
    let fidelity = args
        .get("fidelity")
        .map(|f| f.parse().unwrap_or_else(|e| fail(e)))
        .unwrap_or_else(ModelFidelity::from_env);
    (engine, fidelity)
}

/// Epoch-planner policy requested by `--planner` (global by default).
fn planner_from(args: &Args) -> PlannerScope {
    match args.get("planner") {
        Some(p) => PlannerScope::parse(p)
            .unwrap_or_else(|| fail(format!("unknown planner {p:?} (global|local)"))),
        None => PlannerScope::default(),
    }
}

fn cluster_config(args: &Args) -> ClusterConfig {
    let policy: PolicyKind = args
        .get("policy")
        .map(|p| p.parse().unwrap_or_else(|e| fail(e)))
        .unwrap_or(PolicyKind::FullToPartial);
    let day = parse_day(args.get("day").unwrap_or("weekday"));
    // `--scale` swaps the shape defaults; explicit --homes/--cons/--vms
    // still win. `--racks` folds into the preset first so the
    // per-rack memory and consolidation defaults track the effective
    // tier (multi-rack presets run sparse 32 GiB micro-racks).
    let scale = scale_from(args)
        .map(|s| Scale { racks: args.get_or("racks", s.racks).unwrap_or_else(|e| fail(e)), ..s });
    let (homes, cons, vms) = match scale {
        Some(s) => (s.home_hosts, s.default_cons(), s.vms_per_host),
        None => (30, 4, 30),
    };
    let mut builder = ClusterConfig::builder()
        .policy(policy)
        .day(day)
        .home_hosts(args.get_or("homes", homes).unwrap_or_else(|e| fail(e)))
        .consolidation_hosts(args.get_or("cons", cons).unwrap_or_else(|e| fail(e)))
        .vms_per_host(args.get_or("vms", vms).unwrap_or_else(|e| fail(e)))
        .seed(args.get_or("seed", 1).unwrap_or_else(|e| fail(e)))
        .interval(SimDuration::from_mins(
            args.get_or("interval-mins", 5).unwrap_or_else(|e| fail(e)),
        ));
    if let Some(s) = scale {
        builder = builder.host_memory(s.host_memory());
    }
    if let Some(watts) = args.get("memserver-watts") {
        let watts: f64 = watts.parse().unwrap_or_else(|_| fail("bad --memserver-watts"));
        builder = builder.memserver(MemoryServerProfile::with_budget_watts(watts));
    }
    if let Some(f) = args.get("fidelity") {
        builder = builder.fidelity(f.parse().unwrap_or_else(|e| fail(e)));
    }
    if let Some(e) = args.get("engine") {
        builder = builder.engine(e.parse().unwrap_or_else(|e| fail(e)));
    }
    if let Some(path) = args.get("trace") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
        let set = TraceSet::from_text(&text).unwrap_or_else(|e| fail(e));
        builder = builder.trace(set);
    }
    if let Some(path) = args.get("faults") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
        let schedule = FaultSchedule::from_text(&text).unwrap_or_else(|e| fail(e));
        builder = builder.faults(schedule);
    } else if let Some(profile) = args.get("fault-profile") {
        let profile = match profile.to_ascii_lowercase().as_str() {
            "light" => FaultProfile::light(),
            "heavy" => FaultProfile::heavy(),
            other => fail(format!("unknown fault profile {other:?} (light|heavy)")),
        };
        let cfg = builder.clone().build().unwrap_or_else(|e| fail(e));
        let schedule = FaultSchedule::random(
            profile,
            cfg.home_hosts + cfg.consolidation_hosts,
            SimDuration::from_hours(24),
            cfg.seed ^ 0xFA17,
        );
        builder = builder.faults(schedule);
    }
    builder.build().unwrap_or_else(|e| fail(e))
}

const BASE_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "jobs",
    "fidelity",
    "engine",
];

/// The worker pool requested by `--jobs`, falling back to `OASIS_JOBS`
/// and then the machine's available parallelism.
fn pool_from(args: &Args) -> WorkerPool {
    match args.get("jobs") {
        Some(v) => {
            let jobs: usize = v.parse().unwrap_or_else(|_| fail("bad --jobs (want a count ≥ 1)"));
            WorkerPool::new(jobs)
        }
        None => WorkerPool::from_env(),
    }
}

const SIM_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "faults",
    "fault-profile",
    "trace-out",
    "metrics-out",
    "log-level",
    "fidelity",
    "engine",
    "scale",
    "racks",
    "planner",
    "jobs",
    "scenario",
];

/// Builds the telemetry bus requested by `--trace-out`, `--metrics-out`
/// and `--log-level`. With none of them present, telemetry stays off and
/// the simulation runs exactly as before.
fn telemetry_from(args: &Args) -> Telemetry {
    let wants = args.get("trace-out").is_some()
        || args.get("metrics-out").is_some()
        || args.get("log-level").is_some();
    if !wants {
        return Telemetry::disabled();
    }
    let level = args
        .get("log-level")
        .map(|s| s.parse::<Level>().unwrap_or_else(|e| fail(e)))
        .unwrap_or(Level::Info);
    let telemetry = Telemetry::new(level);
    if let Some(path) = args.get("trace-out") {
        let sink = JsonlSink::create(Path::new(path)).unwrap_or_else(|e| fail(e));
        telemetry.attach(Box::new(sink));
    }
    telemetry
}

/// Writes the metrics registry to `path`: JSON when the path ends in
/// `.json`, Prometheus text exposition otherwise.
fn write_metrics(telemetry: &Telemetry, path: &str) {
    let text = if path.ends_with(".json") {
        telemetry.metrics().to_json()
    } else {
        telemetry.metrics().to_prometheus()
    };
    std::fs::write(path, text).unwrap_or_else(|e| fail(e));
}

/// Runs a sharded multi-rack day and prints the fleet summary:
/// totals, the epoch planner's rebalance ledger, SLA violations and
/// the event engine's skip accounting. Deterministic for a fixed seed,
/// byte-identical across `--jobs` worker counts.
fn cmd_sim_datacenter(args: &Args, racks: u32) {
    for flag in ["trace-out", "metrics-out", "log-level"] {
        if args.get(flag).is_some() {
            fail(format!("--{flag} applies to the single-rack day (racks = 1)"));
        }
    }
    let dc = DatacenterConfig { base: cluster_config(args), racks, planner: planner_from(args) };
    let mut report = run_datacenter_day(&pool_from(args), &dc, &|| 0.0);
    let stats = report.stats_total();
    println!(
        "datacenter {:<14} racks={} hosts={} vms={} planner={}",
        dc.base.policy, report.racks, report.hosts, report.vms, report.planner
    );
    println!(
        "savings={:>6.1}% baseline={:.1}kWh actual={:.1}kWh",
        report.energy_savings * 100.0,
        report.baseline_kwh,
        report.total_kwh
    );
    let sla = report.sla_violations(oasis_cluster::shard::SLA_THRESHOLD_SECS);
    println!(
        "rebalance: grants={} bytes={}   sla violations (>10s): {}",
        report.rebalance_grants, report.rebalance_bytes, sla
    );
    println!(
        "engine: replays={} cached-host-intervals={} fetch-skipped={}",
        stats.planner_replays, stats.cached_host_intervals, stats.fetch_skipped
    );
}

/// Runs a named scenario from the registry and prints its digest line —
/// the same bytes the golden suite locks, so a CI leg can diff two
/// invocations directly.
fn cmd_sim_scenario(args: &Args, spec: &ScenarioSpec) {
    for flag in ["scale", "racks", "homes", "cons", "vms", "trace-out", "metrics-out", "log-level"]
    {
        if args.get(flag).is_some() {
            fail(format!("--{flag} conflicts with --scenario (the preset fixes the shape)"));
        }
    }
    let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
    let report =
        scenarios::run_scenario_with(&pool_from(args), spec, seed, Some(scenario_select(args)))
            .unwrap_or_else(|e| fail(e));
    println!("{}", report.digest());
    println!("guards: {}", spec.guards);
}

fn cmd_sim(args: Args) {
    if let Some(spec) = scenario_from(&args) {
        return cmd_sim_scenario(&args, &spec);
    }
    let racks = racks_from(&args);
    if racks > 1 {
        return cmd_sim_datacenter(&args, racks);
    }
    let cfg = cluster_config(&args);
    let telemetry = telemetry_from(&args);
    let mut sim = ClusterSim::new(cfg);
    sim.attach_telemetry(telemetry.clone());
    let mut report = sim.run_day();
    println!("{}", report.summary_line());
    println!(
        "zero-delay wake-ups: {:.0}%   p99 delay: {:.1}s   network: {:.1} GiB",
        report.zero_delay_fraction() * 100.0,
        report.transition_delays.quantile(0.99).unwrap_or(0.0),
        report.network_bytes().as_gib_f64(),
    );
    if !report.faults.is_empty() {
        println!("{}", report.faults.summary_line());
        let violations = report.integrity_violations();
        if !violations.is_empty() {
            fail(format!("placement integrity violated:\n{}", violations.join("\n")));
        }
    }
    if telemetry.is_enabled() {
        print!("{}", report.telemetry);
    }
    if let Some(path) = args.get("metrics-out") {
        write_metrics(&telemetry, path);
    }
}

const REPORT_FLAGS: &[&str] = &[
    "policy",
    "day",
    "homes",
    "cons",
    "vms",
    "seed",
    "interval-mins",
    "memserver-watts",
    "trace",
    "faults",
    "fault-profile",
    "fidelity",
    "engine",
    "format",
    "top",
    "wall",
    "folded",
    "folded-metric",
    "audit-out",
    "out",
    "scale",
    "racks",
    "planner",
    "jobs",
    "scorecard",
    "scenario",
];

/// Renders the datacenter digest (`oasis report` with racks > 1): fleet
/// totals plus one fixed-order line per rack. Byte-identical across
/// reruns and `--jobs` worker counts.
fn cmd_report_datacenter(args: &Args, racks: u32) {
    for flag in ["wall", "top", "folded", "folded-metric", "audit-out"] {
        if args.get(flag).is_some() {
            fail(format!("--{flag} applies to the single-rack report (racks = 1)"));
        }
    }
    let dc = DatacenterConfig { base: cluster_config(args), racks, planner: planner_from(args) };
    let mut report = run_datacenter_day(&pool_from(args), &dc, &|| 0.0);
    let text = match args.get("format").unwrap_or("text") {
        "text" => report::render_datacenter_text(&mut report),
        "json" => report::render_datacenter_json(&mut report),
        other => fail(format!("unknown report format {other:?} (text|json)")),
    };
    match args.get("out") {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| fail(e)),
        None => print!("{text}"),
    }
}

/// Prints the global-vs-local planner scorecard for the requested shape:
/// two fixed-order table lines, seeded and golden-testable.
fn cmd_report_scorecard(args: &Args, racks: u32) {
    let dc = DatacenterConfig { base: cluster_config(args), racks, planner: planner_from(args) };
    for row in planner_scorecard(&pool_from(args), &dc, &|| 0.0) {
        println!("{}", row.table_line());
    }
}

/// Renders a named scenario's digest (`oasis report --scenario`):
/// text by default, fixed-field-order JSON with `--format json`,
/// written to `--out` when given.
fn cmd_report_scenario(args: &Args, spec: &ScenarioSpec) {
    for flag in ["wall", "top", "folded", "folded-metric", "audit-out", "scale", "racks"] {
        if args.get(flag).is_some() {
            fail(format!("--{flag} conflicts with --scenario"));
        }
    }
    let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
    let report =
        scenarios::run_scenario_with(&pool_from(args), spec, seed, Some(scenario_select(args)))
            .unwrap_or_else(|e| fail(e));
    let text = match args.get("format").unwrap_or("text") {
        "text" => report::render_scenario_text(spec, &report),
        "json" => report::render_scenario_json(&report),
        other => fail(format!("unknown report format {other:?} (text|json)")),
    };
    match args.get("out") {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| fail(e)),
        None => print!("{text}"),
    }
}

fn cmd_report(args: Args) {
    if let Some(spec) = scenario_from(&args) {
        return cmd_report_scenario(&args, &spec);
    }
    let racks = racks_from(&args);
    if args.get_or("scorecard", false).unwrap_or_else(|e| fail(e)) {
        return cmd_report_scorecard(&args, racks);
    }
    if racks > 1 {
        return cmd_report_datacenter(&args, racks);
    }
    let cfg = cluster_config(&args);
    let include_wall = args.get_or("wall", false).unwrap_or_else(|e| fail(e));
    let top = args.get_or("top", 10usize).unwrap_or_else(|e| fail(e));
    let run = report::traced_run(cfg);
    if let Some(path) = args.get("folded") {
        let metric: FoldedMetric =
            args.get_or("folded-metric", FoldedMetric::SimMicros).unwrap_or_else(|e| fail(e));
        std::fs::write(path, run.tree.folded(metric)).unwrap_or_else(|e| fail(e));
    }
    if let Some(path) = args.get("audit-out") {
        std::fs::write(path, report::audit_jsonl(&run.records)).unwrap_or_else(|e| fail(e));
    }
    let text = match args.get("format").unwrap_or("text") {
        "text" => report::render_text(&run, top, include_wall),
        "json" => report::render_json(&run, top, include_wall),
        other => fail(format!("unknown report format {other:?} (text|json)")),
    };
    match args.get("out") {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| fail(e)),
        None => print!("{text}"),
    }
}

fn cmd_week(args: Args) {
    let cfg = cluster_config(&args);
    let week = run_week_on(&pool_from(&args), &cfg);
    for (i, day) in week.days.iter().enumerate() {
        println!("day {}: {}", i + 1, day.summary_line());
    }
    println!(
        "week: savings {:.1}%  baseline {:.1} kWh  managed {:.1} kWh",
        week.savings * 100.0,
        week.baseline_kwh,
        week.total_kwh
    );
}

fn cmd_micro(args: Args) {
    let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
    let fidelity: ModelFidelity =
        args.get_or("fidelity", ModelFidelity::from_env()).unwrap_or_else(|e| fail(e));
    let mut lab = MicroLab::with_options(seed, LabOptions { fidelity, ..LabOptions::default() });
    lab.prime_os();
    lab.run_workload(&DesktopWorkload::workload1());
    lab.idle_wait(SimDuration::from_mins(5));
    println!("full migration baseline: {:.1}s", lab.full_migrate_baseline().duration.as_secs_f64());
    let first = lab.partial_migrate();
    println!(
        "partial #1: {:.1}s (upload {:.1}s)",
        first.outcome.total.as_secs_f64(),
        first.outcome.upload_time.as_secs_f64()
    );
    let idle = lab.consolidated_idle(SimDuration::from_mins(20));
    println!("consolidated 20 min: {} faults, {} fetched", idle.faults, idle.fetched);
    let reint = lab.reintegrate();
    println!(
        "reintegration: {:.1}s, {} dirty state",
        reint.total.as_secs_f64(),
        reint.network_bytes
    );
    lab.run_workload(&DesktopWorkload::workload2());
    lab.idle_wait(SimDuration::from_mins(5));
    let second = lab.partial_migrate();
    println!(
        "partial #2: {:.1}s (differential upload {:.1}s)",
        second.outcome.total.as_secs_f64(),
        second.outcome.upload_time.as_secs_f64()
    );
}

fn cmd_trace(mut argv: Vec<String>) {
    if argv.is_empty() {
        usage();
    }
    let sub = argv.remove(0);
    match sub.as_str() {
        "generate" => {
            let args =
                Args::parse(argv, &["users", "weeks", "seed", "out"]).unwrap_or_else(|e| fail(e));
            let users = args.get_or("users", 22usize).unwrap_or_else(|e| fail(e));
            let weeks = args.get_or("weeks", 17usize).unwrap_or_else(|e| fail(e));
            let seed = args.get_or("seed", 1u64).unwrap_or_else(|e| fail(e));
            let set = ActivityModel::new().generate_library(users, weeks, seed);
            let text = set.to_text();
            match args.get("out") {
                Some(path) => {
                    std::fs::write(path, text).unwrap_or_else(|e| fail(e));
                    println!("wrote {} user-days to {path}", set.len());
                }
                None => print!("{text}"),
            }
        }
        "stats" => {
            let args = Args::parse(argv, &[]).unwrap_or_else(|e| fail(e));
            let [path] = args.positional() else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(e));
            let set = TraceSet::from_text(&text).unwrap_or_else(|e| fail(e));
            for kind in [DayKind::Weekday, DayKind::Weekend] {
                let days = set.of_kind(kind);
                if days.is_empty() {
                    continue;
                }
                let mean: f64 =
                    days.iter().map(|d| d.active_fraction()).sum::<f64>() / days.len() as f64;
                println!("{kind:?}: {} user-days, mean activity {:.1}%", days.len(), mean * 100.0);
            }
        }
        _ => usage(),
    }
}

/// Entry point shared by every `oasis` binary front end.
pub fn run() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    match command.as_str() {
        "sim" => cmd_sim(Args::parse(argv, SIM_FLAGS).unwrap_or_else(|e| fail(e))),
        "week" => cmd_week(Args::parse(argv, BASE_FLAGS).unwrap_or_else(|e| fail(e))),
        "report" => cmd_report(Args::parse(argv, REPORT_FLAGS).unwrap_or_else(|e| fail(e))),
        "micro" => cmd_micro(Args::parse(argv, &["seed", "fidelity"]).unwrap_or_else(|e| fail(e))),
        "trace" => cmd_trace(argv),
        _ => usage(),
    }
}
