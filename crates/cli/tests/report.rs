//! `oasis report` acceptance: byte-determinism, resolvable decision
//! ids, bit-exact energy decomposition, and a populated quiescence
//! ledger.

use oasis_cli::report::{audit_jsonl, render_json, render_text, traced_run, AuditSummary};
use oasis_cluster::ClusterConfig;
use oasis_telemetry::FoldedMetric;

fn cfg(seed: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .home_hosts(4)
        .consolidation_hosts(2)
        .vms_per_host(5)
        .seed(seed)
        .build()
        .expect("valid config")
}

#[test]
fn report_artifacts_are_byte_deterministic() {
    let a = traced_run(cfg(7));
    let b = traced_run(cfg(7));
    assert_eq!(render_text(&a, 10, false), render_text(&b, 10, false));
    assert_eq!(render_json(&a, 10, false), render_json(&b, 10, false));
    assert_eq!(a.tree.folded(FoldedMetric::SimMicros), b.tree.folded(FoldedMetric::SimMicros));
    assert_eq!(a.tree.folded(FoldedMetric::Calls), b.tree.folded(FoldedMetric::Calls));
    assert_eq!(audit_jsonl(&a.records), audit_jsonl(&b.records));
    // A different seed produces a different trail (the ledgers are not
    // constants).
    let c = traced_run(cfg(8));
    assert_ne!(audit_jsonl(&a.records), audit_jsonl(&c.records));
}

#[test]
fn every_effect_resolves_to_a_decision_record() {
    let run = traced_run(cfg(7));
    let audit = AuditSummary::from_records(&run.records);
    assert!(audit.decision_events > 0, "a paper day makes decisions");
    assert!(audit.plan_audits > 0, "every planning round leaves an audit record");
    assert!(audit.effect_events > 0, "migrations carry decision ids");
    assert_eq!(
        audit.resolved_effects, audit.effect_events,
        "every migration/recovery event resolves to a decision record"
    );
    let migrations = run.report.migrations.full
        + run.report.migrations.partial
        + run.report.migrations.exchanges;
    assert!(migrations > 0, "the day migrates");
    assert!(
        audit.decision_events >= run.report.migrations.exchanges,
        "at least one audit record per planned exchange"
    );
}

#[test]
fn energy_ledger_is_bit_exact_and_matches_the_meter() {
    let run = traced_run(cfg(7));
    let e = &run.report.energy;
    // Per-VM shares split the active component without losing a single
    // millijoule.
    assert_eq!(e.vm_total_mj(), e.component_mj(|h| h.active_mj));
    // Components re-sum to the grand total exactly.
    assert_eq!(
        e.component_mj(|h| h.active_mj)
            + e.component_mj(|h| h.idle_mj)
            + e.component_mj(|h| h.transition_mj)
            + e.component_mj(|h| h.memserver_mj),
        e.total_mj()
    );
    // The integer ledger tracks the float meter to rounding error.
    let ledger_kwh = e.total_mj() as f64 / 3.6e9;
    assert!(
        (ledger_kwh - run.report.total_kwh).abs() / run.report.total_kwh < 1e-6,
        "ledger {ledger_kwh} kWh vs meter {} kWh",
        run.report.total_kwh
    );
}

#[test]
fn profile_self_times_sum_to_the_root_total() {
    let run = traced_run(cfg(7));
    assert!(!run.tree.is_empty());
    let self_sum: u64 = run.tree.flatten().iter().map(|(_, n)| n.self_sim_us).sum();
    let root_total: u64 = run.tree.roots.iter().map(|r| r.total_sim_us).sum();
    assert_eq!(self_sum, root_total, "self sim times sum to the bracketed total");
    assert_eq!(run.tree.self_wall_ns_sum(), run.tree.total_wall_ns());
    let names: Vec<&str> = run.tree.flatten().iter().map(|(_, n)| n.name.as_str()).collect();
    for expected in
        ["run_day", "fault_service", "activation", "planner", "plan_consolidation", "fetch"]
    {
        assert!(names.contains(&expected), "missing span {expected}: {names:?}");
    }
}

#[test]
fn text_and_json_reports_carry_every_section() {
    let run = traced_run(cfg(7));
    let text = render_text(&run, 5, false);
    for marker in [
        "== span profile ==",
        "== decision audit ==",
        "== energy attribution",
        "== quiescence ==",
        "bit-exact=true",
        "run_day",
    ] {
        assert!(text.contains(marker), "missing {marker:?} in:\n{text}");
    }
    assert!(!text.contains("wall_"), "wall fields must stay out of deterministic output");

    let json = render_json(&run, 5, false);
    for key in
        ["\"profile\":", "\"top_spans\":", "\"decisions\":", "\"energy\":", "\"quiescence\":"]
    {
        assert!(json.contains(key), "missing {key} in json");
    }
    assert!(!json.contains("wall_total_ns"));
    assert!(render_json(&run, 5, true).contains("wall_total_ns"));
    // Quiescence is populated: a small day has idle hosts.
    assert!(run.report.quiescence.host_quiescent > 0);
    assert!(run.report.quiescence.vm_quiescent > 0);
}
