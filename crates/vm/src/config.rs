//! VM configuration files.
//!
//! §4.1: "Each VM configuration file contains a unique four digit vmid
//! used to identify the VM, the path to the VM's disk image, memory
//! allocation, number of virtual CPUs, and device configuration such as
//! network and virtual frame buffer." Clients hand the cluster manager a
//! path to such a file; the manager parses it and places the VM.
//!
//! The format is line-oriented `key = value` with `#` comments.

use core::fmt;

use oasis_mem::ByteSize;

use crate::vm::VmId;

/// Errors from parsing a VM configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A required key is missing.
    Missing(&'static str),
    /// A key appeared twice.
    Duplicate(String),
    /// A value failed to parse.
    BadValue {
        /// The key whose value failed.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A line without `key = value` shape.
    BadLine(usize),
    /// The vmid is outside the four-digit range the manager assigns.
    BadVmId(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Missing(k) => write!(f, "missing required key {k:?}"),
            ConfigError::Duplicate(k) => write!(f, "duplicate key {k:?}"),
            ConfigError::BadValue { key, value } => {
                write!(f, "invalid value {value:?} for key {key:?}")
            }
            ConfigError::BadLine(n) => write!(f, "line {n}: expected `key = value`"),
            ConfigError::BadVmId(id) => write!(f, "vmid {id} outside 0..=9999"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A parsed VM configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Unique four-digit VM identifier.
    pub vmid: VmId,
    /// Path of the disk image on the network storage.
    pub disk: String,
    /// Memory allocation.
    pub memory: ByteSize,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Whether a virtual frame buffer is attached.
    pub vfb: bool,
    /// Network device model (free-form, e.g. `bridge=xenbr0`).
    pub network: String,
}

impl VmConfig {
    /// A 4 GiB, 1-vCPU desktop VM like those of the evaluation.
    pub fn desktop(vmid: u32) -> Self {
        VmConfig {
            vmid: VmId(vmid),
            disk: format!("nfs://storage/images/vm{vmid:04}.img"),
            memory: ByteSize::gib(4),
            vcpus: 1,
            vfb: true,
            network: "bridge=xenbr0".to_string(),
        }
    }

    /// Parses a configuration file's text.
    pub fn parse(text: &str) -> Result<VmConfig, ConfigError> {
        let mut vmid: Option<u32> = None;
        let mut disk: Option<String> = None;
        let mut memory: Option<ByteSize> = None;
        let mut vcpus: Option<u32> = None;
        let mut vfb = false;
        let mut network = String::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(ConfigError::BadLine(lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || ConfigError::BadValue { key: key.to_string(), value: value.to_string() };
            match key {
                "vmid" => {
                    if vmid.is_some() {
                        return Err(ConfigError::Duplicate(key.to_string()));
                    }
                    vmid = Some(value.parse().map_err(|_| bad())?);
                }
                "disk" => {
                    if disk.is_some() {
                        return Err(ConfigError::Duplicate(key.to_string()));
                    }
                    disk = Some(value.to_string());
                }
                "memory_mib" => {
                    if memory.is_some() {
                        return Err(ConfigError::Duplicate(key.to_string()));
                    }
                    let mib: u64 = value.parse().map_err(|_| bad())?;
                    memory = Some(ByteSize::mib(mib));
                }
                "vcpus" => {
                    if vcpus.is_some() {
                        return Err(ConfigError::Duplicate(key.to_string()));
                    }
                    vcpus = Some(value.parse().map_err(|_| bad())?);
                }
                "vfb" => {
                    vfb = match value {
                        "yes" | "true" | "1" => true,
                        "no" | "false" | "0" => false,
                        _ => return Err(bad()),
                    };
                }
                "network" => network = value.to_string(),
                // Unknown keys are preserved-compatible: ignored.
                _ => {}
            }
        }

        let vmid = vmid.ok_or(ConfigError::Missing("vmid"))?;
        if vmid > 9_999 {
            return Err(ConfigError::BadVmId(vmid));
        }
        Ok(VmConfig {
            vmid: VmId(vmid),
            disk: disk.ok_or(ConfigError::Missing("disk"))?,
            memory: memory.ok_or(ConfigError::Missing("memory_mib"))?,
            vcpus: vcpus.unwrap_or(1),
            vfb,
            network,
        })
    }

    /// Serializes back to the file format.
    pub fn to_text(&self) -> String {
        format!(
            "vmid = {}\ndisk = {}\nmemory_mib = {}\nvcpus = {}\nvfb = {}\nnetwork = {}\n",
            self.vmid.0,
            self.disk,
            self.memory.as_mib(),
            self.vcpus,
            if self.vfb { "yes" } else { "no" },
            self.network,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cfg = VmConfig::desktop(42);
        let parsed = VmConfig::parse(&cfg.to_text()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn parse_minimal() {
        let cfg = VmConfig::parse("vmid=7\ndisk=/img/a.img\nmemory_mib=2048\n").unwrap();
        assert_eq!(cfg.vmid, VmId(7));
        assert_eq!(cfg.memory, ByteSize::gib(2));
        assert_eq!(cfg.vcpus, 1, "vcpus defaults to 1");
        assert!(!cfg.vfb);
    }

    #[test]
    fn comments_and_unknown_keys_ignored() {
        let text = "# a VM\nvmid=1\ndisk=d\nmemory_mib=4096\nfancy_option=3\n";
        assert!(VmConfig::parse(text).is_ok());
    }

    #[test]
    fn missing_keys_rejected() {
        assert_eq!(VmConfig::parse("disk=d\nmemory_mib=1"), Err(ConfigError::Missing("vmid")));
        assert_eq!(VmConfig::parse("vmid=1\nmemory_mib=1"), Err(ConfigError::Missing("disk")));
        assert_eq!(VmConfig::parse("vmid=1\ndisk=d"), Err(ConfigError::Missing("memory_mib")));
    }

    #[test]
    fn malformed_input_rejected() {
        assert_eq!(VmConfig::parse("not a config"), Err(ConfigError::BadLine(1)));
        assert!(matches!(
            VmConfig::parse("vmid=xyz\ndisk=d\nmemory_mib=1"),
            Err(ConfigError::BadValue { .. })
        ));
        assert!(matches!(
            VmConfig::parse("vmid=1\nvmid=2\ndisk=d\nmemory_mib=1"),
            Err(ConfigError::Duplicate(_))
        ));
        assert_eq!(
            VmConfig::parse("vmid=123456\ndisk=d\nmemory_mib=1"),
            Err(ConfigError::BadVmId(123_456))
        );
        assert!(matches!(
            VmConfig::parse("vmid=1\ndisk=d\nmemory_mib=1\nvfb=maybe"),
            Err(ConfigError::BadValue { .. })
        ));
    }
}
