//! VM identity, state and memory footprint.
//!
//! §3.1: "We consider a VM to be in one of two states: active or idle."
//! An active VM needs its full memory allocation resident (assumption 3);
//! an idle VM needs only its working set (assumption 4). [`Vm`] carries
//! the bookkeeping both the functional and the statistical simulation
//! levels use: allocation, residency mode and working-set size.

use core::fmt;

use oasis_mem::ByteSize;

use crate::workload::WorkloadClass;

/// Unique VM identifier (the four-digit `vmid` of §4.1, widened).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

/// Unique host identifier within the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Debug for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{:04}", self.0)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{:04}", self.0)
    }
}

/// Activity state of a VM (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VmState {
    /// Processing real work; needs all assigned resources.
    Active,
    /// Only background activity; accesses a small resource fraction.
    Idle,
}

impl VmState {
    /// `true` for [`VmState::Active`].
    pub fn is_active(self) -> bool {
        matches!(self, VmState::Active)
    }
}

/// How much of the VM's memory lives on its current host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Residency {
    /// Full footprint resident (a "full VM").
    Full,
    /// Only the idle working set resident; missing pages fault in from the
    /// memory server (a "partial VM").
    Partial,
}

/// A virtual machine's control-plane view.
#[derive(Clone, Debug)]
pub struct Vm {
    /// Identifier.
    pub id: VmId,
    /// Workload class (drives the idle access model).
    pub class: WorkloadClass,
    /// Memory allocation (4 GiB for every VM in the evaluation).
    pub allocation: ByteSize,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Current activity state.
    pub state: VmState,
    /// Residency mode on the current host.
    pub residency: Residency,
    /// Working set currently resident when partial.
    pub resident_wss: ByteSize,
}

impl Vm {
    /// Creates an active, fully resident VM.
    pub fn new(id: VmId, class: WorkloadClass, allocation: ByteSize, vcpus: u32) -> Self {
        Vm {
            id,
            class,
            allocation,
            vcpus,
            state: VmState::Active,
            residency: Residency::Full,
            resident_wss: allocation,
        }
    }

    /// Memory the VM demands from its current host.
    ///
    /// A full VM demands its whole allocation (assumption 3); a partial VM
    /// demands only its resident working set (assumption 4).
    pub fn memory_demand(&self) -> ByteSize {
        match self.residency {
            Residency::Full => self.allocation,
            Residency::Partial => self.resident_wss,
        }
    }

    /// Switches to partial residency with the given initial working set.
    ///
    /// The working set is clamped to the allocation.
    pub fn make_partial(&mut self, wss: ByteSize) {
        self.residency = Residency::Partial;
        self.resident_wss = wss.min(self.allocation);
    }

    /// Switches to full residency.
    pub fn make_full(&mut self) {
        self.residency = Residency::Full;
        self.resident_wss = self.allocation;
    }

    /// Grows the resident working set (on-demand fetches), clamped to the
    /// allocation. Returns the actual growth.
    pub fn grow_wss(&mut self, delta: ByteSize) -> ByteSize {
        if self.residency == Residency::Full {
            return ByteSize::ZERO;
        }
        let before = self.resident_wss;
        self.resident_wss = (self.resident_wss + delta).min(self.allocation);
        self.resident_wss - before
    }

    /// `true` when running as a partial VM.
    pub fn is_partial(&self) -> bool {
        self.residency == Residency::Partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> Vm {
        Vm::new(VmId(42), WorkloadClass::Desktop, ByteSize::gib(4), 1)
    }

    #[test]
    fn new_vm_is_full_and_active() {
        let v = vm();
        assert!(v.state.is_active());
        assert!(!v.is_partial());
        assert_eq!(v.memory_demand(), ByteSize::gib(4));
    }

    #[test]
    fn partial_demands_only_wss() {
        let mut v = vm();
        v.make_partial(ByteSize::mib(160));
        assert!(v.is_partial());
        assert_eq!(v.memory_demand(), ByteSize::mib(160));
        v.make_full();
        assert_eq!(v.memory_demand(), ByteSize::gib(4));
    }

    #[test]
    fn partial_wss_clamped_to_allocation() {
        let mut v = vm();
        v.make_partial(ByteSize::gib(8));
        assert_eq!(v.memory_demand(), ByteSize::gib(4));
    }

    #[test]
    fn wss_growth_clamps() {
        let mut v = vm();
        v.make_partial(ByteSize::mib(100));
        assert_eq!(v.grow_wss(ByteSize::mib(50)), ByteSize::mib(50));
        assert_eq!(v.memory_demand(), ByteSize::mib(150));
        // Growth beyond the allocation clamps.
        let grown = v.grow_wss(ByteSize::gib(8));
        assert_eq!(v.memory_demand(), ByteSize::gib(4));
        assert_eq!(grown, ByteSize::gib(4) - ByteSize::mib(150));
        // Full VMs do not grow.
        v.make_full();
        assert_eq!(v.grow_wss(ByteSize::mib(1)), ByteSize::ZERO);
    }

    #[test]
    fn vmid_formats_like_the_paper() {
        assert_eq!(VmId(7).to_string(), "vm0007");
        assert_eq!(format!("{:?}", VmId(1234)), "vm1234");
    }
}
