//! Idle memory-access models per VM class.
//!
//! §2 measures three idle VMs over one hour: a desktop touched 188.2 MiB,
//! a RUBiS web server 37.6 MiB and a RUBiS database 30.6 MiB of their
//! 4 GiB allocations (Figure 1), and page *requests* from a consolidated
//! partial VM reach its home's memory server with mean inter-arrivals of
//! 3.9 minutes for one database VM versus 5.8 seconds for ten co-located
//! VMs (Figure 2).
//!
//! The model has two coupled parts:
//!
//! * a **unique-touch curve** `U(t) = W∞·(1 − e^(−t/τ)) + r·t` — the
//!   cumulative unique memory touched after `t` idle time: a working set
//!   that saturates plus a slow linear growth (logs, caches);
//! * a **request process** — remote page requests arrive as a Poisson
//!   process per class; each request fetches the unique pages accrued
//!   since the previous request (a batch), so request *counts* match
//!   Figure 2 while request *volumes* integrate to Figure 1.

use oasis_mem::{addr::pages_for, ByteSize};
use oasis_sim::{SimDuration, SimRng, SimTime};

/// Workload class of a VM.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum WorkloadClass {
    /// Remote desktop: GNOME, office apps, browser (§2's desktop VM).
    Desktop,
    /// RUBiS web front-end.
    WebServer,
    /// RUBiS database back-end.
    Database,
    /// A distributed-system member (Hadoop / Elasticsearch / ZooKeeper
    /// node) that must stay network-present and exchange periodic
    /// heartbeats even when idle (§1).
    ClusterNode,
}

impl WorkloadClass {
    /// All classes.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Desktop,
        WorkloadClass::WebServer,
        WorkloadClass::Database,
        WorkloadClass::ClusterNode,
    ];

    /// The calibrated idle access model for this class.
    pub fn idle_model(self) -> IdleAccessModel {
        match self {
            WorkloadClass::Desktop => IdleAccessModel {
                class: self,
                wss_infinity: ByteSize::from_mib_f64(145.0),
                tau: SimDuration::from_mins(15),
                growth_per_min: ByteSize::from_mib_f64(0.77),
                request_interarrival: SimDuration::from_secs(12),
            },
            WorkloadClass::WebServer => IdleAccessModel {
                class: self,
                wss_infinity: ByteSize::from_mib_f64(30.0),
                tau: SimDuration::from_mins(10),
                growth_per_min: ByteSize::from_mib_f64(0.13),
                request_interarrival: SimDuration::from_secs(33),
            },
            WorkloadClass::Database => IdleAccessModel {
                class: self,
                wss_infinity: ByteSize::from_mib_f64(25.0),
                tau: SimDuration::from_mins(12),
                growth_per_min: ByteSize::from_mib_f64(0.095),
                request_interarrival: SimDuration::from_secs(234),
            },
            // Heartbeat traffic touches a tiny, hot set of pages: the
            // working set converges fast and barely grows.
            WorkloadClass::ClusterNode => IdleAccessModel {
                class: self,
                wss_infinity: ByteSize::from_mib_f64(18.0),
                tau: SimDuration::from_mins(8),
                growth_per_min: ByteSize::from_mib_f64(0.02),
                request_interarrival: SimDuration::from_secs(45),
            },
        }
    }
}

impl core::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            WorkloadClass::Desktop => "desktop",
            WorkloadClass::WebServer => "web",
            WorkloadClass::Database => "database",
            WorkloadClass::ClusterNode => "cluster-node",
        };
        f.write_str(s)
    }
}

/// Calibrated idle access model of one workload class.
#[derive(Clone, Copy, Debug)]
pub struct IdleAccessModel {
    /// The class this model describes.
    pub class: WorkloadClass,
    /// Saturating working-set size `W∞`.
    pub wss_infinity: ByteSize,
    /// Working-set fill time constant `τ`.
    pub tau: SimDuration,
    /// Linear unique-touch growth rate `r` (per minute).
    pub growth_per_min: ByteSize,
    /// Mean inter-arrival of remote page requests.
    pub request_interarrival: SimDuration,
}

impl IdleAccessModel {
    /// Cumulative unique bytes touched after `idle_for` of idleness,
    /// capped at `allocation`.
    pub fn unique_touched(&self, idle_for: SimDuration, allocation: ByteSize) -> ByteSize {
        let t = idle_for.as_secs_f64();
        let tau = self.tau.as_secs_f64();
        let saturating = self.wss_infinity.as_mib_f64() * (1.0 - (-t / tau).exp());
        let linear = self.growth_per_min.as_mib_f64() * (t / 60.0);
        ByteSize::from_mib_f64(saturating + linear).min(allocation)
    }

    /// Draws the next request arrival after `now`.
    pub fn next_request(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let gap = rng.exponential(self.request_interarrival.as_secs_f64());
        now + SimDuration::from_secs_f64(gap.max(0.001))
    }

    /// Pages fetched by a request at `t_now`, given the previous request
    /// was at `t_prev` (both measured from the start of the idle period).
    ///
    /// Every request fetches at least one page.
    pub fn request_batch_pages(
        &self,
        t_prev: SimDuration,
        t_now: SimDuration,
        allocation: ByteSize,
    ) -> u64 {
        let before = self.unique_touched(t_prev, allocation);
        let after = self.unique_touched(t_now, allocation);
        pages_for(after.saturating_sub(before)).max(1)
    }

    /// Steady-state unique-touch growth once the working set saturated
    /// (bytes per second).
    pub fn steady_growth_per_sec(&self) -> f64 {
        self.growth_per_min.as_bytes() as f64 / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration::from_hours(1);
    const ALLOC: ByteSize = ByteSize::gib(4);

    #[test]
    fn figure1_unique_touch_targets() {
        // Paper: desktop 188.2 MiB, web 37.6 MiB, database 30.6 MiB after
        // one idle hour.
        let desktop = WorkloadClass::Desktop.idle_model().unique_touched(HOUR, ALLOC);
        let web = WorkloadClass::WebServer.idle_model().unique_touched(HOUR, ALLOC);
        let db = WorkloadClass::Database.idle_model().unique_touched(HOUR, ALLOC);
        assert!((desktop.as_mib_f64() - 188.2).abs() < 5.0, "desktop {desktop}");
        assert!((web.as_mib_f64() - 37.6).abs() < 2.0, "web {web}");
        assert!((db.as_mib_f64() - 30.6).abs() < 2.0, "db {db}");
    }

    #[test]
    fn unique_touch_is_monotonic_and_capped() {
        let m = WorkloadClass::Desktop.idle_model();
        let mut prev = ByteSize::ZERO;
        for mins in (0..=600).step_by(10) {
            let u = m.unique_touched(SimDuration::from_mins(mins), ALLOC);
            assert!(u >= prev);
            assert!(u <= ALLOC);
            prev = u;
        }
        // A tiny allocation caps immediately.
        let small = ByteSize::mib(16);
        assert_eq!(m.unique_touched(HOUR, small), small);
    }

    #[test]
    fn all_vms_touch_under_5_percent_in_an_hour() {
        // §2: "less than 5 % of their nominal memory allocation".
        for class in WorkloadClass::ALL {
            let u = class.idle_model().unique_touched(HOUR, ALLOC);
            assert!(u.as_bytes() < ALLOC.as_bytes() / 20, "{class}: {u} ≥ 5 % of {ALLOC}");
        }
    }

    #[test]
    fn figure2_single_database_interarrival() {
        let m = WorkloadClass::Database.idle_model();
        let mut rng = SimRng::new(1);
        let mut now = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            now = m.next_request(now, &mut rng);
        }
        let mean = now.as_secs_f64() / n as f64;
        // Paper: 3.9 minutes = 234 s.
        assert!((mean - 234.0).abs() < 5.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn figure2_ten_vm_superposition() {
        // 5 web + 5 database VMs: aggregate mean inter-arrival ≈ 5.8 s.
        let web = WorkloadClass::WebServer.idle_model();
        let db = WorkloadClass::Database.idle_model();
        let agg_rate = 5.0 / web.request_interarrival.as_secs_f64()
            + 5.0 / db.request_interarrival.as_secs_f64();
        let mean = 1.0 / agg_rate;
        assert!((mean - 5.8).abs() < 0.15, "aggregate inter-arrival {mean}");
    }

    #[test]
    fn request_batches_integrate_to_unique_curve() {
        let m = WorkloadClass::WebServer.idle_model();
        let mut rng = SimRng::new(2);
        let mut t_prev = SimDuration::ZERO;
        let mut now = SimTime::ZERO;
        let mut pages = 0u64;
        while now.as_secs_f64() < 3_600.0 {
            let next = m.next_request(now, &mut rng);
            if next.as_secs_f64() > 3_600.0 {
                break;
            }
            let t_now = next - SimTime::ZERO;
            pages += m.request_batch_pages(t_prev, t_now, ALLOC);
            t_prev = t_now;
            now = next;
        }
        let mib = pages as f64 * 4_096.0 / (1024.0 * 1024.0);
        let target = m.unique_touched(HOUR, ALLOC).as_mib_f64();
        // Batches cover the curve up to the last request plus the ≥1-page
        // floor per request.
        assert!((mib - target).abs() < target * 0.25, "batched {mib} vs {target}");
    }

    #[test]
    fn batch_is_at_least_one_page() {
        let m = WorkloadClass::Database.idle_model();
        let t = SimDuration::from_hours(100);
        // Far into saturation with a microscopic gap: still one page.
        assert_eq!(m.request_batch_pages(t, t + SimDuration::from_micros(1), ALLOC), 1);
    }

    #[test]
    fn cluster_nodes_have_the_smallest_footprint() {
        // §1 motivates: cluster members are idle but must stay present.
        let node = WorkloadClass::ClusterNode.idle_model();
        let db = WorkloadClass::Database.idle_model();
        assert!(node.unique_touched(HOUR, ALLOC) < db.unique_touched(HOUR, ALLOC));
        assert!(node.unique_touched(HOUR, ALLOC) > ByteSize::mib(10));
    }

    #[test]
    fn desktop_is_most_demanding() {
        // §5.6 argues desktop idle VMs are more demanding than server VMs.
        let d = WorkloadClass::Desktop.idle_model();
        let w = WorkloadClass::WebServer.idle_model();
        let db = WorkloadClass::Database.idle_model();
        assert!(d.unique_touched(HOUR, ALLOC) > w.unique_touched(HOUR, ALLOC));
        assert!(w.unique_touched(HOUR, ALLOC) > db.unique_touched(HOUR, ALLOC));
        assert!(d.request_interarrival < w.request_interarrival);
        assert!(w.request_interarrival < db.request_interarrival);
    }
}
