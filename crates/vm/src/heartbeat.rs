//! Cluster-membership heartbeats.
//!
//! §1 motivates Oasis with services that cannot simply be suspended:
//! "Cloud services such as Hadoop, Elasticsearch and Zookeeper require
//! that members of a cluster send periodic heartbeat messages to maintain
//! membership in the cluster." Consolidation must therefore keep idle
//! members *running* — and the migration blackouts it introduces must be
//! short enough that no coordinator expels a member.
//!
//! [`HeartbeatSession`] models one member's liveness as seen by its
//! coordinator: heartbeats fire on a fixed interval; a migration or
//! reintegration blackout delays them; the member is expelled when no
//! heartbeat arrives within the session timeout.

use oasis_sim::{SimDuration, SimTime};

/// Outcome of one simulated membership session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// Heartbeats delivered on time.
    pub on_time: u64,
    /// Heartbeats delayed (delivered late but within the timeout).
    pub delayed: u64,
    /// Expulsions: gaps exceeding the session timeout.
    pub expulsions: u64,
}

/// A member↔coordinator heartbeat session.
#[derive(Clone, Debug)]
pub struct HeartbeatSession {
    /// Heartbeat period (ZooKeeper tick, Elasticsearch ping…).
    pub interval: SimDuration,
    /// Coordinator session timeout; a silent member is expelled after it.
    pub timeout: SimDuration,
    /// Blackout windows during which the member cannot send (suspend,
    /// migration, reintegration), as `(start, duration)` pairs.
    blackouts: Vec<(SimTime, SimDuration)>,
}

impl HeartbeatSession {
    /// Creates a session; `timeout` is clamped to at least one interval.
    pub fn new(interval: SimDuration, timeout: SimDuration) -> Self {
        HeartbeatSession { interval, timeout: timeout.max(interval), blackouts: Vec::new() }
    }

    /// A ZooKeeper-flavoured default: 2 s ticks, 10 s session timeout.
    pub fn zookeeper() -> Self {
        Self::new(SimDuration::from_secs(2), SimDuration::from_secs(10))
    }

    /// Registers a blackout window (e.g. one partial migration).
    pub fn add_blackout(&mut self, start: SimTime, duration: SimDuration) {
        self.blackouts.push((start, duration));
    }

    /// `true` if the member cannot transmit at `t`.
    fn blacked_out(&self, t: SimTime) -> Option<SimTime> {
        self.blackouts
            .iter()
            .find(|&&(start, d)| t >= start && t < start + d)
            .map(|&(start, d)| start + d)
    }

    /// Simulates heartbeats over `[0, horizon]` and scores the session.
    pub fn run(&self, horizon: SimDuration) -> MembershipReport {
        let mut report = MembershipReport::default();
        let end = SimTime::ZERO + horizon;
        let mut scheduled = SimTime::ZERO + self.interval;
        let mut last_delivered = SimTime::ZERO;
        while scheduled <= end {
            // A blacked-out heartbeat is sent the moment the blackout ends.
            let delivered = match self.blacked_out(scheduled) {
                Some(resume) => resume,
                None => scheduled,
            };
            let gap = delivered.saturating_since(last_delivered);
            if gap > self.timeout {
                report.expulsions += 1;
            } else if delivered > scheduled {
                report.delayed += 1;
            } else {
                report.on_time += 1;
            }
            last_delivered = delivered;
            scheduled += self.interval;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_session_is_all_on_time() {
        let s = HeartbeatSession::zookeeper();
        let r = s.run(SimDuration::from_mins(10));
        assert_eq!(r.on_time, 300); // 600 s / 2 s.
        assert_eq!(r.delayed, 0);
        assert_eq!(r.expulsions, 0);
    }

    #[test]
    fn partial_migration_blackout_only_delays() {
        // A 7.2 s partial-migration blackout sits inside the 10 s timeout.
        let mut s = HeartbeatSession::zookeeper();
        s.add_blackout(SimTime::from_secs(60), SimDuration::from_millis(7_200));
        let r = s.run(SimDuration::from_mins(5));
        assert_eq!(r.expulsions, 0, "no member may be expelled");
        assert!(r.delayed >= 1, "heartbeats inside the blackout arrive late");
    }

    #[test]
    fn reintegration_blackout_is_harmless() {
        let mut s = HeartbeatSession::zookeeper();
        s.add_blackout(SimTime::from_secs(30), SimDuration::from_millis(3_700));
        let r = s.run(SimDuration::from_mins(2));
        assert_eq!(r.expulsions, 0);
    }

    #[test]
    fn long_blackout_expels() {
        // Suspending the VM to disk for a minute (the naive alternative
        // the paper argues against) breaks membership.
        let mut s = HeartbeatSession::zookeeper();
        s.add_blackout(SimTime::from_secs(30), SimDuration::from_secs(60));
        let r = s.run(SimDuration::from_mins(2));
        assert!(r.expulsions >= 1);
    }

    #[test]
    fn oasis_worst_case_resume_storm_stays_within_timeout() {
        // 99.99th-percentile reintegration delay from Figure 11 (~19 s)
        // against a coarser 30 s Elasticsearch-style timeout.
        let mut s = HeartbeatSession::new(SimDuration::from_secs(5), SimDuration::from_secs(30));
        s.add_blackout(SimTime::from_secs(100), SimDuration::from_secs(19));
        let r = s.run(SimDuration::from_mins(5));
        assert_eq!(r.expulsions, 0);
    }

    #[test]
    fn timeout_clamps_to_interval() {
        let s = HeartbeatSession::new(SimDuration::from_secs(10), SimDuration::from_secs(1));
        assert_eq!(s.timeout, SimDuration::from_secs(10));
    }
}
