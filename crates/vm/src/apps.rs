//! Desktop application catalog (Table 2) and start-up footprints
//! (Figure 6).
//!
//! Workload 1 primes a heavily multitasking desktop; Workload 2 emulates
//! the user returning and opening more content. Each application carries a
//! start-up footprint: the number of pages it touches when (re)started,
//! which determines its launch latency inside a partial VM where every
//! cold page is a remote fetch.

use oasis_mem::{addr::size_of_pages, ByteSize};
use oasis_sim::SimDuration;

/// One application in the catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Application {
    /// Display name.
    pub name: &'static str,
    /// Pages touched when started (shared libraries, heap, document).
    pub startup_pages: u64,
    /// Start-up latency on a full VM with warm memory.
    pub full_vm_startup: SimDuration,
    /// Pages dirtied while the application runs in the background for an
    /// hour (buffers, caches); feeds dirty-state accounting.
    pub hourly_dirty_pages: u64,
}

impl Application {
    /// Start-up footprint in bytes.
    pub fn startup_bytes(&self) -> ByteSize {
        size_of_pages(self.startup_pages)
    }
}

/// The applications used by the micro-benchmarks.
pub mod catalog {
    use super::Application;
    use oasis_sim::SimDuration;

    /// Thunderbird mail client.
    pub const THUNDERBIRD: Application = Application {
        name: "Thunderbird",
        startup_pages: 11_000,
        full_vm_startup: SimDuration::from_millis(1_800),
        hourly_dirty_pages: 2_600,
    };

    /// Pidgin instant messenger.
    pub const PIDGIN: Application = Application {
        name: "Pidgin IM",
        startup_pages: 3_200,
        full_vm_startup: SimDuration::from_millis(700),
        hourly_dirty_pages: 900,
    };

    /// LibreOffice with a document open.
    pub const LIBREOFFICE_DOC: Application = Application {
        name: "LibreOffice document",
        startup_pages: 42_000,
        full_vm_startup: SimDuration::from_millis(1_500),
        hourly_dirty_pages: 1_200,
    };

    /// Evince PDF viewer.
    pub const EVINCE_PDF: Application = Application {
        name: "Evince PDF",
        startup_pages: 6_000,
        full_vm_startup: SimDuration::from_millis(600),
        hourly_dirty_pages: 300,
    };

    /// Firefox loading one site.
    pub const FIREFOX_SITE: Application = Application {
        name: "Firefox site",
        startup_pages: 15_000,
        full_vm_startup: SimDuration::from_millis(1_200),
        hourly_dirty_pages: 5_200,
    };

    /// A shell in a terminal, the lightest entry.
    pub const TERMINAL: Application = Application {
        name: "Terminal",
        startup_pages: 600,
        full_vm_startup: SimDuration::from_millis(150),
        hourly_dirty_pages: 120,
    };
}

/// A named set of applications (one row of Table 2).
#[derive(Clone, Debug)]
pub struct DesktopWorkload {
    /// Workload name ("Workload 1" / "Workload 2").
    pub name: &'static str,
    /// Applications with multiplicities.
    pub apps: Vec<(Application, u32)>,
}

impl DesktopWorkload {
    /// Table 2, Workload 1: Thunderbird, Pidgin, LibreOffice with three
    /// documents, Evince with a PDF, Firefox with five open sites.
    pub fn workload1() -> Self {
        DesktopWorkload {
            name: "Workload 1",
            apps: vec![
                (catalog::THUNDERBIRD, 1),
                (catalog::PIDGIN, 1),
                (catalog::LIBREOFFICE_DOC, 3),
                (catalog::EVINCE_PDF, 1),
                (catalog::FIREFOX_SITE, 5),
            ],
        }
    }

    /// Table 2, Workload 2: adds four Firefox sites, three LibreOffice
    /// documents and one PDF to the running session.
    pub fn workload2() -> Self {
        DesktopWorkload {
            name: "Workload 2",
            apps: vec![
                (catalog::FIREFOX_SITE, 4),
                (catalog::LIBREOFFICE_DOC, 3),
                (catalog::EVINCE_PDF, 1),
            ],
        }
    }

    /// Total pages the workload touches when executed.
    pub fn total_pages(&self) -> u64 {
        self.apps.iter().map(|(app, n)| app.startup_pages * u64::from(*n)).sum()
    }

    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> ByteSize {
        size_of_pages(self.total_pages())
    }

    /// Pages the workload's applications dirty per hour in the background.
    pub fn hourly_dirty_pages(&self) -> u64 {
        self.apps.iter().map(|(app, n)| app.hourly_dirty_pages * u64::from(*n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload1_matches_table2_composition() {
        let w = DesktopWorkload::workload1();
        let count: u32 = w.apps.iter().map(|(_, n)| n).sum();
        // 1 + 1 + 3 + 1 + 5 = 11 application instances.
        assert_eq!(count, 11);
        assert_eq!(w.name, "Workload 1");
    }

    #[test]
    fn workload2_is_an_increment() {
        let w = DesktopWorkload::workload2();
        let count: u32 = w.apps.iter().map(|(_, n)| n).sum();
        assert_eq!(count, 8); // 4 sites + 3 docs + 1 PDF.
        assert!(w.total_pages() < DesktopWorkload::workload1().total_pages());
    }

    #[test]
    fn workload_footprints_are_plausible() {
        // Workload 1 primes a few hundred MiB of a 4 GiB desktop — the
        // scale that makes partial migration upload ~1.3 GiB with OS state.
        let w1 = DesktopWorkload::workload1().total_bytes();
        assert!(w1 > ByteSize::mib(500), "W1 footprint {w1}");
        assert!(w1 < ByteSize::gib(2), "W1 footprint {w1}");
    }

    #[test]
    fn startup_bytes_scale_with_pages() {
        assert_eq!(catalog::LIBREOFFICE_DOC.startup_bytes(), ByteSize::bytes(42_000 * 4_096));
        assert!(catalog::TERMINAL.startup_bytes() < ByteSize::mib(3));
    }

    #[test]
    fn hourly_dirty_accumulates() {
        let w = DesktopWorkload::workload1();
        assert_eq!(w.hourly_dirty_pages(), 2_600 + 900 + 3 * 1_200 + 300 + 5 * 5_200);
    }
}
