//! Virtual-machine model and workload classes.
//!
//! * [`vm`] — VM identity, the active/idle state machine of §3.1, and the
//!   memory footprint bookkeeping both simulation levels share.
//! * [`config`] — the VM configuration files of §4.1 (vmid, disk image
//!   path, memory allocation, vCPUs, device configuration).
//! * [`workload`] — idle memory-access models per VM class, calibrated to
//!   Figure 1 (desktop 188.2 MiB, web 37.6 MiB, database 30.6 MiB touched
//!   per idle hour) and Figure 2 (page-request inter-arrivals of 3.9 min
//!   for one database VM and 5.8 s for ten co-located VMs).
//! * [`apps`] — the desktop application catalog of Table 2 and the
//!   start-up footprints behind Figure 6.
//! * [`heartbeat`] — cluster-membership liveness (§1's Hadoop /
//!   Elasticsearch / ZooKeeper motivation): proves Oasis blackouts never
//!   expel a consolidated member.

#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod heartbeat;
pub mod vm;
pub mod workload;

pub use config::VmConfig;
pub use vm::{HostId, Vm, VmId, VmState};
pub use workload::{IdleAccessModel, WorkloadClass};
