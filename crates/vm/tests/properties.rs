//! Property-based tests for the VM model.
//!
//! Uses the in-tree [`oasis_sim::check`] harness so the suite runs with
//! no external dependencies.

use oasis_mem::ByteSize;
use oasis_sim::check::{run, Gen};
use oasis_sim::SimDuration;
use oasis_vm::config::VmConfig;
use oasis_vm::workload::WorkloadClass;
use oasis_vm::{Vm, VmId, VmState};

/// VM configuration files round trip through the parser.
#[test]
fn vm_config_round_trips() {
    run(64, |g: &mut Gen| {
        let cfg = VmConfig {
            vmid: VmId(g.u32_in(0, 10_000)),
            disk: g.string(
                "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_.:-",
                1,
                41,
            ),
            memory: ByteSize::mib(g.u64_in(1, 1_048_576)),
            vcpus: g.u32_in(1, 64),
            vfb: g.bool(),
            network: "bridge=xenbr0".to_string(),
        };
        let parsed = VmConfig::parse(&cfg.to_text()).unwrap();
        assert_eq!(parsed, cfg);
    });
}

/// A VM's memory demand never exceeds its allocation, through any
/// sequence of residency changes and growth.
#[test]
fn demand_bounded_by_allocation() {
    run(64, |g: &mut Gen| {
        let alloc = ByteSize::mib(g.u64_in(16, 8_192));
        let ops = g.vec(0, 50, |g| (g.u64_in(0, 3) as u8, g.u64_in(0, 16_384)));
        let mut vm = Vm::new(VmId(1), WorkloadClass::Desktop, alloc, 1);
        for (op, arg) in ops {
            match op {
                0 => vm.make_partial(ByteSize::mib(arg)),
                1 => vm.make_full(),
                _ => {
                    vm.grow_wss(ByteSize::mib(arg));
                }
            }
            assert!(vm.memory_demand() <= alloc);
        }
    });
}

/// The unique-touch curve is monotone and capped for every class and
/// any pair of times.
#[test]
fn unique_touch_monotone() {
    run(96, |g: &mut Gen| {
        let model = g.pick(&WorkloadClass::ALL[..3]).idle_model();
        let (t1, t2) = (g.u64_in(0, 100_000), g.u64_in(0, 100_000));
        let alloc = ByteSize::mib(g.u64_in(64, 8_192));
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let u_lo = model.unique_touched(SimDuration::from_secs(lo), alloc);
        let u_hi = model.unique_touched(SimDuration::from_secs(hi), alloc);
        assert!(u_lo <= u_hi);
        assert!(u_hi <= alloc);
    });
}

/// Request batches are positive and integrate to no more than the
/// curve plus the one-page-per-request floor.
#[test]
fn request_batches_bounded() {
    run(64, |g: &mut Gen| {
        let model = g.pick(&WorkloadClass::ALL[..3]).idle_model();
        let gaps = g.vec(1, 50, |g| g.u64_in(1, 600));
        let alloc = ByteSize::gib(4);
        let mut t_prev = SimDuration::ZERO;
        let mut total_pages = 0u64;
        for gap in &gaps {
            let t_now = t_prev + SimDuration::from_secs(*gap);
            let batch = model.request_batch_pages(t_prev, t_now, alloc);
            assert!(batch >= 1);
            total_pages += batch;
            t_prev = t_now;
        }
        let curve_pages = model.unique_touched(t_prev, alloc).pages(oasis_mem::PAGE_SIZE);
        assert!(total_pages <= curve_pages + gaps.len() as u64);
    });
}

/// State predicates stay consistent.
#[test]
fn state_predicates() {
    run(8, |g: &mut Gen| {
        let active = g.bool();
        let state = if active { VmState::Active } else { VmState::Idle };
        assert_eq!(state.is_active(), active);
    });
}
