//! Property-based tests for the VM model.

use proptest::prelude::*;

use oasis_mem::ByteSize;
use oasis_sim::SimDuration;
use oasis_vm::config::VmConfig;
use oasis_vm::workload::WorkloadClass;
use oasis_vm::{Vm, VmId, VmState};

proptest! {
    /// VM configuration files round trip through the parser.
    #[test]
    fn vm_config_round_trips(
        vmid in 0u32..10_000,
        mem_mib in 1u64..1_048_576,
        vcpus in 1u32..64,
        vfb in any::<bool>(),
        disk in "[a-zA-Z0-9/_.:-]{1,40}",
    ) {
        let cfg = VmConfig {
            vmid: VmId(vmid),
            disk,
            memory: ByteSize::mib(mem_mib),
            vcpus,
            vfb,
            network: "bridge=xenbr0".to_string(),
        };
        let parsed = VmConfig::parse(&cfg.to_text()).unwrap();
        prop_assert_eq!(parsed, cfg);
    }

    /// A VM's memory demand never exceeds its allocation, through any
    /// sequence of residency changes and growth.
    #[test]
    fn demand_bounded_by_allocation(
        alloc_mib in 16u64..8_192,
        ops in prop::collection::vec((0u8..3, 0u64..16_384), 0..50),
    ) {
        let alloc = ByteSize::mib(alloc_mib);
        let mut vm = Vm::new(VmId(1), WorkloadClass::Desktop, alloc, 1);
        for (op, arg) in ops {
            match op {
                0 => vm.make_partial(ByteSize::mib(arg)),
                1 => vm.make_full(),
                _ => {
                    vm.grow_wss(ByteSize::mib(arg));
                }
            }
            prop_assert!(vm.memory_demand() <= alloc);
        }
    }

    /// The unique-touch curve is monotone and capped for every class and
    /// any pair of times.
    #[test]
    fn unique_touch_monotone(
        class_idx in 0usize..3,
        t1 in 0u64..100_000,
        t2 in 0u64..100_000,
        alloc_mib in 64u64..8_192,
    ) {
        let model = WorkloadClass::ALL[class_idx].idle_model();
        let alloc = ByteSize::mib(alloc_mib);
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let u_lo = model.unique_touched(SimDuration::from_secs(lo), alloc);
        let u_hi = model.unique_touched(SimDuration::from_secs(hi), alloc);
        prop_assert!(u_lo <= u_hi);
        prop_assert!(u_hi <= alloc);
    }

    /// Request batches are positive and integrate to no more than the
    /// curve plus the one-page-per-request floor.
    #[test]
    fn request_batches_bounded(
        class_idx in 0usize..3,
        gaps in prop::collection::vec(1u64..600, 1..50),
    ) {
        let model = WorkloadClass::ALL[class_idx].idle_model();
        let alloc = ByteSize::gib(4);
        let mut t_prev = SimDuration::ZERO;
        let mut total_pages = 0u64;
        for gap in &gaps {
            let t_now = t_prev + SimDuration::from_secs(*gap);
            let batch = model.request_batch_pages(t_prev, t_now, alloc);
            prop_assert!(batch >= 1);
            total_pages += batch;
            t_prev = t_now;
        }
        let curve_pages = model
            .unique_touched(t_prev, alloc)
            .pages(oasis_mem::PAGE_SIZE);
        prop_assert!(total_pages <= curve_pages + gaps.len() as u64);
    }

    /// State predicates stay consistent.
    #[test]
    fn state_predicates(active in any::<bool>()) {
        let state = if active { VmState::Active } else { VmState::Idle };
        prop_assert_eq!(state.is_active(), active);
    }
}
