//! The low-power memory page server (§4.3).
//!
//! The prototype pairs each host with a low-power platform sharing a
//! hot-swappable SAS drive. The protocol is strict: before entering sleep
//! the host attaches the drive, writes out its VMs' (compressed) memory
//! pages, detaches, and notifies the low-power processor, which attaches
//! the drive and starts the serving daemon. Only one side may mount the
//! drive at a time. This module models that protocol plus the two upload
//! optimizations (per-page compression and differential upload).

use std::collections::BTreeMap;

use oasis_mem::{ByteSize, PageNum};
use oasis_power::MemoryServerProfile;
use oasis_sim::SimDuration;
use oasis_telemetry::{Counter, Telemetry};
use oasis_vm::VmId;

/// Which side currently has the shared SAS drive mounted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveOwner {
    /// The host mounts the drive (uploading).
    Host,
    /// The memory server mounts the drive (serving).
    Server,
    /// Nobody has it mounted.
    Detached,
}

/// Magic bytes of the drive image index.
const IMAGE_MAGIC: &[u8; 8] = b"OASISIMG";

/// Errors from memory-server operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsError {
    /// The drive is mounted on the wrong side for this operation.
    DriveNotMounted(DriveOwner),
    /// The serving daemon is not running.
    NotServing,
    /// No image uploaded for this VM.
    UnknownVm(VmId),
    /// The VM's image does not contain this page.
    UnknownPage(VmId, PageNum),
    /// Both sides tried to mount at once.
    DriveBusy,
    /// An on-disk image index failed to parse.
    CorruptImage,
    /// The serving daemon has crashed and not yet restarted.
    Crashed,
    /// A drive handoff was attempted with fetches still in flight.
    FetchesInFlight(u32),
}

impl core::fmt::Display for MsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MsError::DriveNotMounted(o) => write!(f, "drive mounted at {o:?}"),
            MsError::NotServing => write!(f, "serving daemon not active"),
            MsError::UnknownVm(id) => write!(f, "no memory image for {id}"),
            MsError::UnknownPage(id, p) => write!(f, "{id}: {p:?} not in image"),
            MsError::DriveBusy => write!(f, "drive already mounted elsewhere"),
            MsError::CorruptImage => write!(f, "corrupt on-disk image index"),
            MsError::Crashed => write!(f, "serving daemon crashed"),
            MsError::FetchesInFlight(n) => write!(f, "{n} fetches still in flight"),
        }
    }
}

impl std::error::Error for MsError {}

/// Receipt describing one upload batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UploadReceipt {
    /// Pages written in this batch.
    pub pages: u64,
    /// Raw bytes those pages represent.
    pub raw: ByteSize,
    /// Compressed bytes actually written to the drive.
    pub compressed: ByteSize,
    /// Write time at the SAS sequential bandwidth.
    pub duration: SimDuration,
}

/// Aggregate serving statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Page requests served.
    pub requests: u64,
    /// Compressed bytes sent to memtap clients.
    pub bytes_sent: ByteSize,
}

/// The per-host memory server.
#[derive(Clone, Debug)]
pub struct MemoryServer {
    profile: MemoryServerProfile,
    drive: DriveOwner,
    serving: bool,
    crashed: bool,
    /// Page requests accepted but not yet answered, in arrival order.
    pending: Vec<(VmId, PageNum)>,
    /// Fault-injection fuse: the daemon dies right after this many more
    /// successful serves ([`MemoryServer::schedule_crash_after`]).
    crash_fuse: Option<u64>,
    /// Per-VM image: page → compressed size on disk.
    images: BTreeMap<VmId, BTreeMap<u64, u32>>,
    stats: ServeStats,
    // Serving sits on the guest fault path, so counter handles are cached.
    pages_served: Counter,
    upload_bytes: Counter,
}

impl MemoryServer {
    /// Creates a memory server with the drive initially at the host.
    pub fn new(profile: MemoryServerProfile) -> Self {
        MemoryServer::with_telemetry(profile, &Telemetry::disabled())
    }

    /// Like [`MemoryServer::new`], but wired to a telemetry registry:
    /// `memserver_pages_served_total` counts page requests answered and
    /// `memserver_upload_bytes_total` counts compressed bytes written to
    /// the shared drive.
    pub fn with_telemetry(profile: MemoryServerProfile, telemetry: &Telemetry) -> Self {
        MemoryServer {
            profile,
            drive: DriveOwner::Host,
            serving: false,
            crashed: false,
            pending: Vec::new(),
            crash_fuse: None,
            images: BTreeMap::new(),
            stats: ServeStats::default(),
            pages_served: telemetry.metrics().counter("memserver_pages_served_total", &[]),
            upload_bytes: telemetry.metrics().counter("memserver_upload_bytes_total", &[]),
        }
    }

    /// The power/performance profile.
    pub fn profile(&self) -> &MemoryServerProfile {
        &self.profile
    }

    /// Current drive owner.
    pub fn drive_owner(&self) -> DriveOwner {
        self.drive
    }

    /// `true` while the serving daemon runs.
    pub fn is_serving(&self) -> bool {
        self.serving
    }

    /// `true` between a [`MemoryServer::crash`] and the next restart or
    /// host reclaim.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Page requests accepted but not yet answered.
    pub fn in_flight(&self) -> u32 {
        self.pending.len() as u32
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Mounts the drive on the host side (before uploads).
    ///
    /// Reclaiming the drive from a crashed daemon is allowed — the images
    /// live on disk, so the host simply takes over — and clears the
    /// crashed flag (the daemon's state dies with it, including any
    /// fetches it had accepted).
    pub fn mount_at_host(&mut self) -> Result<(), MsError> {
        match self.drive {
            DriveOwner::Server if self.serving => Err(MsError::DriveBusy),
            _ => {
                self.drive = DriveOwner::Host;
                self.crashed = false;
                self.pending.clear();
                Ok(())
            }
        }
    }

    /// Uploads (writes) pages of a VM's memory image.
    ///
    /// `pages` carries each page's compressed size. With `differential`
    /// set, existing entries are overwritten and new ones added without
    /// rewriting the rest of the image (§4.3's differential upload);
    /// otherwise the VM's image is replaced wholesale.
    pub fn upload(
        &mut self,
        vm: VmId,
        pages: &[(PageNum, ByteSize)],
        differential: bool,
    ) -> Result<UploadReceipt, MsError> {
        if self.drive != DriveOwner::Host {
            return Err(MsError::DriveNotMounted(self.drive));
        }
        let image = self.images.entry(vm).or_default();
        if !differential {
            image.clear();
        }
        let mut compressed = ByteSize::ZERO;
        for &(page, size) in pages {
            image.insert(page.0, size.as_bytes() as u32);
            compressed += size;
        }
        let raw = ByteSize::bytes(pages.len() as u64 * oasis_mem::PAGE_SIZE);
        let duration = SimDuration::from_secs_f64(
            compressed.as_bytes() as f64 / self.profile.upload_bytes_per_sec,
        );
        self.upload_bytes.add(compressed.as_bytes());
        Ok(UploadReceipt { pages: pages.len() as u64, raw, compressed, duration })
    }

    /// Host detaches; the low-power processor attaches and starts the
    /// daemon. After this the host may sleep.
    pub fn handoff_to_server(&mut self) -> Result<(), MsError> {
        if self.drive != DriveOwner::Host {
            return Err(MsError::DriveNotMounted(self.drive));
        }
        self.drive = DriveOwner::Server;
        self.serving = true;
        Ok(())
    }

    /// Host woke and its VMs returned: daemon stops, drive detaches.
    ///
    /// Refuses while fetches are in flight — answer them
    /// ([`MemoryServer::complete_fetch`]) or cancel them
    /// ([`MemoryServer::abort_fetches`]) first, or the detach would
    /// silently drop guest page faults.
    pub fn handoff_to_host(&mut self) -> Result<(), MsError> {
        if self.crashed {
            return Err(MsError::Crashed);
        }
        if !self.serving {
            return Err(MsError::NotServing);
        }
        if !self.pending.is_empty() {
            return Err(MsError::FetchesInFlight(self.pending.len() as u32));
        }
        self.serving = false;
        self.drive = DriveOwner::Host;
        Ok(())
    }

    /// The serving daemon dies (low-power processor fault).
    ///
    /// Serving stops; the drive stays attached to the dead server until a
    /// [`MemoryServer::restart`] or a host reclaim via
    /// [`MemoryServer::mount_at_host`]. Returns the fetches that were in
    /// flight — each is an errored guest page fault the cluster layer
    /// must recover. Images survive: they live on the drive, not in the
    /// daemon.
    pub fn crash(&mut self) -> Vec<(VmId, PageNum)> {
        self.serving = false;
        self.crashed = true;
        self.crash_fuse = None;
        core::mem::take(&mut self.pending)
    }

    /// Arms a fault-injection fuse: the serving daemon crashes immediately
    /// after `served` more successful [`MemoryServer::serve_page`] calls
    /// (a fuse of 0 crashes on the next attempt, before it is answered).
    ///
    /// Unlike [`MemoryServer::crash`], the crash lands at an exact point
    /// in a request stream, which is how a daemon death interleaves with a
    /// multi-page fetch in flight. Fetches still pending at that moment
    /// stay queued; they error with [`MsError::Crashed`] when answered or
    /// are reclaimed by [`MemoryServer::abort_fetches`].
    pub fn schedule_crash_after(&mut self, served: u64) {
        self.crash_fuse = Some(served);
    }

    /// The low-power processor reboots, re-attaches the drive and resumes
    /// serving from the on-disk images.
    ///
    /// Fails with [`MsError::DriveBusy`] if the host reclaimed the drive
    /// in the meantime (the daemon cannot serve without it).
    pub fn restart(&mut self) -> Result<(), MsError> {
        if self.drive == DriveOwner::Host {
            return Err(MsError::DriveBusy);
        }
        self.drive = DriveOwner::Server;
        self.crashed = false;
        self.serving = true;
        Ok(())
    }

    /// Accepts a page request without answering it yet, modeling the
    /// window where a fetch is on the wire. Validates exactly like
    /// [`MemoryServer::serve_page`] but defers the accounting to
    /// [`MemoryServer::complete_fetch`].
    pub fn begin_fetch(&mut self, vm: VmId, page: PageNum) -> Result<(), MsError> {
        if self.crashed {
            return Err(MsError::Crashed);
        }
        if !self.serving {
            return Err(MsError::NotServing);
        }
        let image = self.images.get(&vm).ok_or(MsError::UnknownVm(vm))?;
        if !image.contains_key(&page.0) {
            return Err(MsError::UnknownPage(vm, page));
        }
        self.pending.push((vm, page));
        Ok(())
    }

    /// Answers a fetch previously accepted by
    /// [`MemoryServer::begin_fetch`].
    pub fn complete_fetch(&mut self, vm: VmId, page: PageNum) -> Result<ByteSize, MsError> {
        if self.crashed {
            return Err(MsError::Crashed);
        }
        let Some(pos) = self.pending.iter().position(|&p| p == (vm, page)) else {
            return Err(MsError::UnknownPage(vm, page));
        };
        self.pending.remove(pos);
        self.serve_page(vm, page)
    }

    /// Cancels every in-flight fetch (e.g. before a planned detach),
    /// returning them so the caller can re-issue after the handoff.
    pub fn abort_fetches(&mut self) -> Vec<(VmId, PageNum)> {
        core::mem::take(&mut self.pending)
    }

    /// Serves one page request by guest pseudo frame number.
    ///
    /// Returns the compressed size read from the drive and sent on the
    /// wire.
    pub fn serve_page(&mut self, vm: VmId, page: PageNum) -> Result<ByteSize, MsError> {
        if self.crashed {
            return Err(MsError::Crashed);
        }
        if !self.serving {
            return Err(MsError::NotServing);
        }
        if self.crash_fuse == Some(0) {
            self.serving = false;
            self.crashed = true;
            self.crash_fuse = None;
            return Err(MsError::Crashed);
        }
        let image = self.images.get(&vm).ok_or(MsError::UnknownVm(vm))?;
        let size = image.get(&page.0).copied().ok_or(MsError::UnknownPage(vm, page))?;
        let size = ByteSize::bytes(u64::from(size));
        self.stats.requests += 1;
        self.stats.bytes_sent += size;
        self.pages_served.inc();
        if let Some(fuse) = &mut self.crash_fuse {
            *fuse -= 1;
            if *fuse == 0 {
                self.serving = false;
                self.crashed = true;
                self.crash_fuse = None;
            }
        }
        Ok(size)
    }

    /// Latency to serve one request, excluding network transfer.
    pub fn service_time(&self) -> SimDuration {
        self.profile.page_service_time
    }

    /// Frees a VM's image (e.g. after a completed full migration, §4.2).
    ///
    /// Returns the compressed bytes released.
    pub fn remove_vm(&mut self, vm: VmId) -> ByteSize {
        self.images
            .remove(&vm)
            .map(|img| ByteSize::bytes(img.values().map(|&s| u64::from(s)).sum()))
            .unwrap_or(ByteSize::ZERO)
    }

    /// Pages stored for a VM.
    pub fn stored_pages(&self, vm: VmId) -> u64 {
        self.images.get(&vm).map_or(0, |img| img.len() as u64)
    }

    /// Serializes a VM's image index to the on-disk format.
    ///
    /// The drive layout the host and the low-power processor exchange:
    /// a magic header, the vmid, and one `(pfn, compressed length)`
    /// record per page. Returns `None` for unknown VMs.
    pub fn export_image(&self, vm: VmId) -> Option<Vec<u8>> {
        let image = self.images.get(&vm)?;
        let mut out = Vec::with_capacity(16 + image.len() * 12);
        out.extend_from_slice(IMAGE_MAGIC);
        out.extend_from_slice(&vm.0.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // Reserved / alignment.
        out.extend_from_slice(&(image.len() as u64).to_le_bytes());
        for (&pfn, &len) in image {
            out.extend_from_slice(&pfn.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        Some(out)
    }

    /// Restores a VM's image index from the on-disk format (e.g. after
    /// the low-power processor rebooted and re-attached the drive).
    ///
    /// Requires the drive mounted at the host, like uploads.
    pub fn import_image(&mut self, bytes: &[u8]) -> Result<VmId, MsError> {
        if self.drive != DriveOwner::Host {
            return Err(MsError::DriveNotMounted(self.drive));
        }
        let err = |_| MsError::CorruptImage;
        if bytes.len() < 24 || &bytes[..8] != IMAGE_MAGIC {
            return Err(MsError::CorruptImage);
        }
        let vm = VmId(u32::from_le_bytes(bytes[8..12].try_into().map_err(err)?));
        let count = u64::from_le_bytes(bytes[16..24].try_into().map_err(err)?) as usize;
        let records = &bytes[24..];
        if records.len() != count * 12 {
            return Err(MsError::CorruptImage);
        }
        let mut image = BTreeMap::new();
        for rec in records.chunks_exact(12) {
            let pfn = u64::from_le_bytes(rec[..8].try_into().map_err(err)?);
            let len = u32::from_le_bytes(rec[8..12].try_into().map_err(err)?);
            image.insert(pfn, len);
        }
        self.images.insert(vm, image);
        Ok(vm)
    }

    /// Total compressed bytes stored across all images.
    pub fn stored_bytes(&self) -> ByteSize {
        ByteSize::bytes(
            self.images.values().flat_map(|img| img.values()).map(|&s| u64::from(s)).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(range: core::ops::Range<u64>, size: u64) -> Vec<(PageNum, ByteSize)> {
        range.map(|i| (PageNum(i), ByteSize::bytes(size))).collect()
    }

    fn server() -> MemoryServer {
        MemoryServer::new(MemoryServerProfile::prototype())
    }

    #[test]
    fn upload_then_serve_protocol() {
        let mut ms = server();
        let receipt = ms.upload(VmId(1), &pages(0..100, 1_500), false).unwrap();
        assert_eq!(receipt.pages, 100);
        assert_eq!(receipt.compressed, ByteSize::bytes(150_000));
        assert_eq!(receipt.raw, ByteSize::bytes(409_600));
        // Cannot serve before handoff.
        assert_eq!(ms.serve_page(VmId(1), PageNum(5)), Err(MsError::NotServing));
        ms.handoff_to_server().unwrap();
        assert_eq!(ms.serve_page(VmId(1), PageNum(5)).unwrap(), ByteSize::bytes(1_500));
        assert_eq!(ms.stats().requests, 1);
    }

    #[test]
    fn upload_requires_drive_at_host() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 1_000), false).unwrap();
        ms.handoff_to_server().unwrap();
        assert!(matches!(
            ms.upload(VmId(1), &pages(0..10, 1_000), true),
            Err(MsError::DriveNotMounted(DriveOwner::Server))
        ));
        // Host must wait for handoff back before re-mounting.
        assert_eq!(ms.mount_at_host(), Err(MsError::DriveBusy));
        ms.handoff_to_host().unwrap();
        assert!(ms.upload(VmId(1), &pages(0..10, 1_000), true).is_ok());
    }

    #[test]
    fn differential_upload_overwrites_in_place() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..100, 1_000), false).unwrap();
        // Differential: 10 dirty pages rewritten, 5 new appended.
        let dirty = pages(0..10, 1_200);
        let new = pages(100..105, 900);
        let batch: Vec<_> = dirty.into_iter().chain(new).collect();
        let receipt = ms.upload(VmId(1), &batch, true).unwrap();
        assert_eq!(receipt.pages, 15);
        assert_eq!(ms.stored_pages(VmId(1)), 105);
        ms.handoff_to_server().unwrap();
        assert_eq!(
            ms.serve_page(VmId(1), PageNum(3)).unwrap(),
            ByteSize::bytes(1_200),
            "dirty page got its new size"
        );
        assert_eq!(
            ms.serve_page(VmId(1), PageNum(50)).unwrap(),
            ByteSize::bytes(1_000),
            "clean page untouched"
        );
    }

    #[test]
    fn full_upload_replaces_image() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..100, 1_000), false).unwrap();
        ms.upload(VmId(1), &pages(50..60, 1_000), false).unwrap();
        assert_eq!(ms.stored_pages(VmId(1)), 10);
    }

    #[test]
    fn upload_duration_matches_sas_bandwidth() {
        let mut ms = server();
        // 1.28 GiB compressed at 128 MiB/s = 10.24 s.
        let batch: Vec<_> = (0..1_024u64).map(|i| (PageNum(i), ByteSize::mib(1))).collect();
        let receipt = ms.upload(VmId(1), &batch, false).unwrap();
        assert!((receipt.duration.as_secs_f64() - 8.0).abs() < 0.01);
    }

    #[test]
    fn serve_unknown_vm_and_page() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        assert_eq!(ms.serve_page(VmId(2), PageNum(0)), Err(MsError::UnknownVm(VmId(2))));
        assert_eq!(
            ms.serve_page(VmId(1), PageNum(99)),
            Err(MsError::UnknownPage(VmId(1), PageNum(99)))
        );
    }

    #[test]
    fn remove_vm_frees_storage() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.upload(VmId(2), &pages(0..10, 700), false).unwrap();
        assert_eq!(ms.stored_bytes(), ByteSize::bytes(12_000));
        assert_eq!(ms.remove_vm(VmId(1)), ByteSize::bytes(5_000));
        assert_eq!(ms.stored_bytes(), ByteSize::bytes(7_000));
        assert_eq!(ms.remove_vm(VmId(1)), ByteSize::ZERO);
    }

    #[test]
    fn image_export_import_round_trips() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..100, 1_500), false).unwrap();
        ms.upload(VmId(1), &pages(200..210, 900), true).unwrap();
        let blob = ms.export_image(VmId(1)).unwrap();
        assert!(blob.starts_with(b"OASISIMG"));
        assert_eq!(ms.export_image(VmId(9)), None);

        // A fresh server (rebooted low-power processor) restores it.
        let mut fresh = server();
        assert_eq!(fresh.import_image(&blob), Ok(VmId(1)));
        assert_eq!(fresh.stored_pages(VmId(1)), 110);
        fresh.handoff_to_server().unwrap();
        assert_eq!(fresh.serve_page(VmId(1), PageNum(205)).unwrap(), ByteSize::bytes(900));
        assert_eq!(fresh.stored_bytes(), ms.stored_bytes());
    }

    #[test]
    fn image_import_rejects_corruption() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        let blob = ms.export_image(VmId(1)).unwrap();
        let mut fresh = server();
        assert_eq!(fresh.import_image(&[]), Err(MsError::CorruptImage));
        assert_eq!(
            fresh.import_image(&blob[..blob.len() - 1]),
            Err(MsError::CorruptImage),
            "truncated record section"
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 1;
        assert_eq!(fresh.import_image(&bad_magic), Err(MsError::CorruptImage));
        // Import requires the drive at the host, like uploads.
        let mut serving = server();
        serving.handoff_to_server().unwrap();
        assert!(matches!(
            serving.import_image(&blob),
            Err(MsError::DriveNotMounted(DriveOwner::Server))
        ));
    }

    #[test]
    fn handoff_requires_correct_states() {
        let mut ms = server();
        assert_eq!(ms.handoff_to_host(), Err(MsError::NotServing));
        ms.handoff_to_server().unwrap();
        assert!(ms.is_serving());
        assert_eq!(ms.handoff_to_server(), Err(MsError::DriveNotMounted(DriveOwner::Server)));
    }

    #[test]
    fn detach_with_in_flight_fetches_is_refused() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.begin_fetch(VmId(1), PageNum(3)).unwrap();
        ms.begin_fetch(VmId(1), PageNum(7)).unwrap();
        assert_eq!(ms.in_flight(), 2);
        assert_eq!(ms.handoff_to_host(), Err(MsError::FetchesInFlight(2)));
        // Answering one is not enough; answering both unblocks the detach.
        assert_eq!(ms.complete_fetch(VmId(1), PageNum(3)).unwrap(), ByteSize::bytes(500));
        assert_eq!(ms.handoff_to_host(), Err(MsError::FetchesInFlight(1)));
        ms.complete_fetch(VmId(1), PageNum(7)).unwrap();
        ms.handoff_to_host().unwrap();
        assert_eq!(ms.drive_owner(), DriveOwner::Host);
    }

    #[test]
    fn aborted_fetches_are_returned_for_reissue() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.begin_fetch(VmId(1), PageNum(1)).unwrap();
        ms.begin_fetch(VmId(1), PageNum(2)).unwrap();
        let stats_before = ms.stats();
        let dropped = ms.abort_fetches();
        assert_eq!(dropped, vec![(VmId(1), PageNum(1)), (VmId(1), PageNum(2))]);
        assert_eq!(ms.in_flight(), 0);
        // Aborted fetches never count as served.
        assert_eq!(ms.stats(), stats_before);
        ms.handoff_to_host().unwrap();
    }

    #[test]
    fn begin_fetch_validates_like_serve() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        assert_eq!(ms.begin_fetch(VmId(1), PageNum(0)), Err(MsError::NotServing));
        ms.handoff_to_server().unwrap();
        assert_eq!(ms.begin_fetch(VmId(2), PageNum(0)), Err(MsError::UnknownVm(VmId(2))));
        assert_eq!(
            ms.begin_fetch(VmId(1), PageNum(99)),
            Err(MsError::UnknownPage(VmId(1), PageNum(99)))
        );
        // Completing a fetch that was never begun is a protocol error.
        assert_eq!(
            ms.complete_fetch(VmId(1), PageNum(0)),
            Err(MsError::UnknownPage(VmId(1), PageNum(0)))
        );
    }

    #[test]
    fn double_attach_is_rejected_on_both_sides() {
        let mut ms = server();
        // Host side: re-mounting while already at the host is idempotent...
        ms.mount_at_host().unwrap();
        ms.mount_at_host().unwrap();
        ms.handoff_to_server().unwrap();
        // ...but the server cannot attach twice, and the host cannot grab
        // the drive out from under a live daemon.
        assert_eq!(ms.handoff_to_server(), Err(MsError::DriveNotMounted(DriveOwner::Server)));
        assert_eq!(ms.mount_at_host(), Err(MsError::DriveBusy));
    }

    #[test]
    fn serve_after_crash_errors_until_restart() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.begin_fetch(VmId(1), PageNum(4)).unwrap();
        let orphaned = ms.crash();
        assert_eq!(orphaned, vec![(VmId(1), PageNum(4))], "in-flight fetch errors out");
        assert!(ms.is_crashed());
        assert!(!ms.is_serving());
        assert_eq!(ms.serve_page(VmId(1), PageNum(0)), Err(MsError::Crashed));
        assert_eq!(ms.begin_fetch(VmId(1), PageNum(0)), Err(MsError::Crashed));
        assert_eq!(ms.handoff_to_host(), Err(MsError::Crashed));
        // Daemon reboot: images survived on the drive and serving resumes.
        ms.restart().unwrap();
        assert!(!ms.is_crashed());
        assert_eq!(ms.serve_page(VmId(1), PageNum(4)).unwrap(), ByteSize::bytes(500));
    }

    #[test]
    fn crash_fuse_fires_after_exact_serve_count() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.schedule_crash_after(2);
        assert!(ms.serve_page(VmId(1), PageNum(0)).is_ok());
        assert!(!ms.is_crashed());
        assert!(ms.serve_page(VmId(1), PageNum(1)).is_ok(), "last serve still answered");
        assert!(ms.is_crashed(), "daemon dies right after the fused serve");
        assert_eq!(ms.serve_page(VmId(1), PageNum(2)), Err(MsError::Crashed));
        assert_eq!(ms.stats().requests, 2, "only answered requests counted");
        // Restart clears the fuse along with the crash.
        ms.restart().unwrap();
        assert!(ms.serve_page(VmId(1), PageNum(2)).is_ok());
        assert!(ms.serve_page(VmId(1), PageNum(3)).is_ok());
        assert!(!ms.is_crashed());
    }

    #[test]
    fn zero_fuse_crashes_before_answering() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.schedule_crash_after(0);
        assert_eq!(ms.serve_page(VmId(1), PageNum(0)), Err(MsError::Crashed));
        assert!(ms.is_crashed());
        assert_eq!(ms.stats().requests, 0);
    }

    #[test]
    fn host_reclaims_drive_from_crashed_daemon() {
        let mut ms = server();
        ms.upload(VmId(1), &pages(0..10, 500), false).unwrap();
        ms.handoff_to_server().unwrap();
        ms.begin_fetch(VmId(1), PageNum(0)).unwrap();
        ms.crash();
        // The woken host takes the drive back; the dead daemon's pending
        // queue dies with it and the crashed flag clears.
        ms.mount_at_host().unwrap();
        assert_eq!(ms.drive_owner(), DriveOwner::Host);
        assert!(!ms.is_crashed());
        assert_eq!(ms.in_flight(), 0);
        assert_eq!(ms.stored_pages(VmId(1)), 10, "images live on the drive");
        // Once the host owns the drive a daemon restart must fail.
        assert_eq!(ms.restart(), Err(MsError::DriveBusy));
        // Normal protocol resumes from here.
        ms.handoff_to_server().unwrap();
        assert_eq!(ms.serve_page(VmId(1), PageNum(0)).unwrap(), ByteSize::bytes(500));
    }
}
