//! The dom0 host agent (§4.2).
//!
//! The agent is the host-side arm of the cluster manager: it creates and
//! destroys VMs, executes migrations, drives the host's ACPI interface,
//! and periodically reports host and per-VM statistics (collected through
//! Xen's xenstat interface in the prototype).

use oasis_mem::ByteSize;
use oasis_power::{AcpiController, HostEnergyProfile, MemoryServerProfile, PowerState};
use oasis_sim::SimTime;
use oasis_vm::{VmId, VmState};

use crate::hypervisor::{HvError, Hypervisor};
use crate::memserver::MemoryServer;

/// Role of a host in the cluster (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum HostRole {
    /// Runs VMs at full performance; VMs are created here.
    Home,
    /// Receives consolidated VMs; sleeps when unused.
    Consolidation,
}

/// Per-VM statistics reported to the cluster manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmStat {
    /// VM identifier.
    pub id: VmId,
    /// Activity state.
    pub state: VmState,
    /// Memory allocation.
    pub allocation: ByteSize,
    /// Memory demanded on this host (full allocation or working set).
    pub demand: ByteSize,
    /// Whether the VM runs as a partial VM.
    pub partial: bool,
}

/// Host statistics reported each interval (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostStats {
    /// Reporting host.
    pub host_id: u32,
    /// Host memory capacity.
    pub capacity: ByteSize,
    /// Sum of hosted VM memory demands.
    pub demand: ByteSize,
    /// Hosted VM count.
    pub vms: usize,
    /// Hosted active-VM count.
    pub active_vms: usize,
    /// Power state at report time.
    pub power: PowerState,
    /// Per-VM breakdown.
    pub per_vm: Vec<VmStat>,
}

/// The host agent: hypervisor + ACPI + (for home hosts) a memory server.
#[derive(Clone, Debug)]
pub struct HostAgent {
    /// Host identifier.
    pub host_id: u32,
    /// Cluster role.
    pub role: HostRole,
    /// The hypervisor under management.
    pub hypervisor: Hypervisor,
    /// ACPI power-state controller.
    pub acpi: AcpiController,
    /// The low-power memory server (home hosts only).
    pub memserver: Option<MemoryServer>,
}

impl HostAgent {
    /// Creates a home host's agent: powered, with a memory server.
    pub fn new_home(
        host_id: u32,
        capacity: ByteSize,
        host_profile: &HostEnergyProfile,
        ms_profile: MemoryServerProfile,
    ) -> Self {
        HostAgent {
            host_id,
            role: HostRole::Home,
            hypervisor: Hypervisor::new(capacity),
            acpi: AcpiController::new(host_profile),
            memserver: Some(MemoryServer::new(ms_profile)),
        }
    }

    /// Creates a consolidation host's agent: asleep by default (§3.1),
    /// without a powered memory server.
    pub fn new_consolidation(
        host_id: u32,
        capacity: ByteSize,
        host_profile: &HostEnergyProfile,
    ) -> Self {
        HostAgent {
            host_id,
            role: HostRole::Consolidation,
            hypervisor: Hypervisor::new(capacity),
            acpi: AcpiController::new_sleeping(host_profile),
            memserver: None,
        }
    }

    /// Number of hosted VMs in the active state.
    pub fn active_vm_count(&self) -> usize {
        self.hypervisor
            .vm_ids()
            .filter(|&id| self.hypervisor.vm(id).map(|h| h.vm.state.is_active()).unwrap_or(false))
            .count()
    }

    /// `true` when the host may be suspended: powered, and no VMs remain.
    ///
    /// "Hosts with active VMs running on them should never sleep" (§3.1);
    /// Oasis only sleeps hosts once *all* their VMs have been migrated out.
    pub fn can_sleep(&self) -> bool {
        self.acpi.state() == PowerState::Powered && self.hypervisor.vm_count() == 0
    }

    /// Collects the periodic statistics report (§4.1).
    pub fn report(&self, _now: SimTime) -> HostStats {
        let per_vm: Vec<VmStat> = self
            .hypervisor
            .vm_ids()
            .filter_map(|id| self.hypervisor.vm(id).ok())
            .map(|h| VmStat {
                id: h.vm.id,
                state: h.vm.state,
                allocation: h.vm.allocation,
                demand: h.vm.memory_demand(),
                partial: h.vm.is_partial(),
            })
            .collect();
        HostStats {
            host_id: self.host_id,
            capacity: self.hypervisor.capacity(),
            demand: self.hypervisor.memory_demand(),
            vms: per_vm.len(),
            active_vms: per_vm.iter().filter(|v| v.state.is_active()).count(),
            power: self.acpi.state(),
            per_vm,
        }
    }

    /// Marks a hosted VM active/idle (driven by the idleness monitor).
    pub fn set_vm_state(&mut self, id: VmId, state: VmState) -> Result<(), HvError> {
        self.hypervisor.vm_mut(id)?.vm.state = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestMemoryImage;
    use oasis_mem::compress::PageMix;
    use oasis_vm::workload::WorkloadClass;
    use oasis_vm::Vm;

    fn home() -> HostAgent {
        HostAgent::new_home(
            1,
            ByteSize::gib(1),
            &HostEnergyProfile::table1(),
            MemoryServerProfile::prototype(),
        )
    }

    fn add_vm(agent: &mut HostAgent, id: u32, state: VmState) {
        let mut vm = Vm::new(VmId(id), WorkloadClass::Desktop, ByteSize::mib(64), 1);
        vm.state = state;
        let image = GuestMemoryImage::new(u64::from(id), PageMix::desktop(), 64 * 256);
        agent.hypervisor.create_full(vm, image).unwrap();
    }

    #[test]
    fn home_host_is_powered_with_memserver() {
        let a = home();
        assert_eq!(a.acpi.state(), PowerState::Powered);
        assert!(a.memserver.is_some());
        assert_eq!(a.role, HostRole::Home);
    }

    #[test]
    fn consolidation_host_sleeps_by_default() {
        let a = HostAgent::new_consolidation(2, ByteSize::gib(1), &HostEnergyProfile::table1());
        assert_eq!(a.acpi.state(), PowerState::Sleeping);
        assert!(a.memserver.is_none());
    }

    #[test]
    fn can_sleep_only_when_empty() {
        let mut a = home();
        assert!(a.can_sleep());
        add_vm(&mut a, 1, VmState::Idle);
        assert!(!a.can_sleep(), "host with any VM must stay awake");
        a.hypervisor.destroy(VmId(1)).unwrap();
        assert!(a.can_sleep());
    }

    #[test]
    fn report_contents() {
        let mut a = home();
        add_vm(&mut a, 1, VmState::Active);
        add_vm(&mut a, 2, VmState::Idle);
        let r = a.report(SimTime::ZERO);
        assert_eq!(r.vms, 2);
        assert_eq!(r.active_vms, 1);
        assert_eq!(r.demand, ByteSize::mib(128));
        assert_eq!(r.per_vm.len(), 2);
        assert!(!r.per_vm[0].partial);
        assert_eq!(r.power, PowerState::Powered);
    }

    #[test]
    fn set_vm_state_updates_reports() {
        let mut a = home();
        add_vm(&mut a, 1, VmState::Active);
        assert_eq!(a.active_vm_count(), 1);
        a.set_vm_state(VmId(1), VmState::Idle).unwrap();
        assert_eq!(a.active_vm_count(), 0);
        assert!(a.set_vm_state(VmId(9), VmState::Idle).is_err());
    }
}
