//! Deterministic guest memory images.
//!
//! The functional micro-benchmarks need per-page byte volumes — how much
//! does page N compress to, what does the upload of a working set weigh —
//! without materializing 4 GiB per VM. A [`GuestMemoryImage`] assigns each
//! page a content class by hashing its page number, and draws its
//! compressed size from a small pool of *real* codec measurements taken on
//! synthesized pages of that class. The image is a pure function of
//! `(seed, mix)`: the same page always has the same class, bytes and
//! compressed size.

use oasis_mem::compress::{compress, PageClass, PageMix};
use oasis_mem::{ByteSize, PageNum, PAGE_SIZE};
use oasis_sim::SimRng;

/// Number of representative pages measured per class.
const SAMPLES_PER_CLASS: usize = 16;

/// A VM's memory content model.
#[derive(Clone, Debug)]
pub struct GuestMemoryImage {
    seed: u64,
    mix: PageMix,
    num_pages: u64,
    /// Real compressed sizes of sample pages, per class.
    class_samples: [Vec<u32>; 4],
}

impl GuestMemoryImage {
    /// Creates an image of `num_pages` pages with the given content mix.
    pub fn new(seed: u64, mix: PageMix, num_pages: u64) -> Self {
        let class_samples = core::array::from_fn(|ci| {
            let class = PageClass::ALL[ci];
            (0..SAMPLES_PER_CLASS)
                .map(|i| {
                    let page = class.synthesize(seed ^ (i as u64) << 32);
                    compress(&page).len() as u32
                })
                .collect()
        });
        GuestMemoryImage { seed, mix, num_pages, class_samples }
    }

    /// A 4 GiB desktop VM image.
    pub fn desktop(seed: u64) -> Self {
        GuestMemoryImage::new(seed, PageMix::desktop(), ByteSize::gib(4).pages(PAGE_SIZE))
    }

    /// Number of pages in the image.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// The content class of a page (stable per image).
    pub fn class_of(&self, page: PageNum) -> PageClass {
        let mut rng = SimRng::new(self.seed ^ page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.mix.sample(&mut rng)
    }

    /// Compressed size of a page under the real codec.
    pub fn compressed_size(&self, page: PageNum) -> ByteSize {
        let class = self.class_of(page);
        let samples = &self.class_samples[class.index()];
        let idx = (page.0.wrapping_mul(0xA24B_AED4_963E_E407) >> 32) as usize % samples.len();
        ByteSize::bytes(u64::from(samples[idx]))
    }

    /// Total compressed size of a set of pages.
    pub fn compressed_size_of(&self, pages: &[PageNum]) -> ByteSize {
        pages.iter().map(|&p| self.compressed_size(p)).sum()
    }

    /// Raw (uncompressed) size of a set of pages.
    pub fn raw_size_of(&self, pages: &[PageNum]) -> ByteSize {
        ByteSize::bytes(pages.len() as u64 * PAGE_SIZE)
    }

    /// Synthesizes the actual bytes of a page (tests / deep inspection).
    pub fn synthesize(&self, page: PageNum) -> Vec<u8> {
        self.class_of(page).synthesize(self.seed ^ page.0)
    }

    /// Mean compressed/raw ratio across the class samples, weighted by the
    /// mix — the aggregate ratio the statistical level uses.
    pub fn aggregate_ratio(&self) -> f64 {
        self.mix.aggregate_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_is_deterministic() {
        let a = GuestMemoryImage::new(5, PageMix::desktop(), 1_000);
        let b = GuestMemoryImage::new(5, PageMix::desktop(), 1_000);
        for i in 0..100 {
            assert_eq!(a.class_of(PageNum(i)), b.class_of(PageNum(i)));
            assert_eq!(a.compressed_size(PageNum(i)), b.compressed_size(PageNum(i)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GuestMemoryImage::new(1, PageMix::desktop(), 10_000);
        let b = GuestMemoryImage::new(2, PageMix::desktop(), 10_000);
        let same = (0..200).filter(|&i| a.class_of(PageNum(i)) == b.class_of(PageNum(i))).count();
        assert!(same < 200, "class assignment identical across seeds");
    }

    #[test]
    fn compressed_sizes_bounded_by_page_size() {
        let img = GuestMemoryImage::new(3, PageMix::desktop(), 10_000);
        for i in 0..500 {
            let s = img.compressed_size(PageNum(i));
            assert!(s.as_bytes() > 0);
            assert!(s.as_bytes() <= PAGE_SIZE + 1, "page {i} size {s}");
        }
    }

    #[test]
    fn mix_ratio_reflected_in_sizes() {
        let img = GuestMemoryImage::new(4, PageMix::desktop(), 100_000);
        let pages: Vec<PageNum> = (0..5_000).map(PageNum).collect();
        let compressed = img.compressed_size_of(&pages).as_bytes() as f64;
        let raw = img.raw_size_of(&pages).as_bytes() as f64;
        let ratio = compressed / raw;
        let expected = img.aggregate_ratio();
        assert!((ratio - expected).abs() < 0.1, "ratio {ratio} vs {expected}");
    }

    #[test]
    fn synthesized_bytes_roundtrip_with_codec() {
        let img = GuestMemoryImage::new(6, PageMix::server(), 1_000);
        for i in [0u64, 1, 99, 500] {
            let bytes = img.synthesize(PageNum(i));
            assert_eq!(bytes.len(), PAGE_SIZE as usize);
            let packed = oasis_mem::compress(&bytes);
            assert_eq!(oasis_mem::decompress(&packed).unwrap(), bytes);
        }
    }

    #[test]
    fn desktop_image_geometry() {
        let img = GuestMemoryImage::desktop(1);
        assert_eq!(img.num_pages(), 1_048_576);
    }
}
