//! The memtap fault-servicing process (§4.2).
//!
//! "For each partial VM, the host agent creates a memtap user level
//! process that is responsible for handling VM page faults and retrieving
//! pages from the corresponding memory server." A fault costs one network
//! round trip to the memory server, the server's drive read, the wire
//! transfer of the compressed page, and decompression in memtap before the
//! hypervisor is notified to reschedule the suspended vCPU.

use oasis_mem::{ByteSize, PageNum};
use oasis_net::LinkSpec;
use oasis_sim::SimDuration;
use oasis_vm::VmId;

use crate::memserver::{MemoryServer, MsError};

/// Decompression throughput of the memtap process (bytes per second).
///
/// LZ-class decompression runs at memory speed; 1 GiB/s is conservative
/// for the Atom-class clients of the prototype era.
const DECOMPRESS_BYTES_PER_SEC: f64 = 1024.0 * 1024.0 * 1024.0;

/// Fixed event-channel and scheduling overhead per fault.
const FAULT_OVERHEAD: SimDuration = SimDuration::from_micros(120);

/// Statistics of one memtap process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemtapStats {
    /// Faults serviced.
    pub faults: u64,
    /// Compressed bytes fetched from the memory server.
    pub compressed_bytes: ByteSize,
    /// Raw bytes installed into the partial VM.
    pub raw_bytes: ByteSize,
}

/// Encryption throughput of the secure record layer, bytes per second
/// (ChaCha20-Poly1305 in software on Atom-class hardware).
const CRYPTO_BYTES_PER_SEC: f64 = 600.0 * 1024.0 * 1024.0;

/// The memtap process of one partial VM.
#[derive(Clone, Debug)]
pub struct Memtap {
    vm: VmId,
    /// Network path to the memory server.
    link: LinkSpec,
    /// Memory-server drive read + daemon latency per request.
    service_time: SimDuration,
    /// Whether transfers run over the §4.3 TLS-style secure channel.
    secured: bool,
    stats: MemtapStats,
}

impl Memtap {
    /// Creates a memtap for `vm`, configured with the host and port of the
    /// memory server holding the VM's pages (modeled as a link spec plus
    /// per-request service time).
    pub fn new(vm: VmId, link: LinkSpec, service_time: SimDuration) -> Self {
        Memtap { vm, link, service_time, secured: false, stats: MemtapStats::default() }
    }

    /// Creates a memtap whose transfers run over a secure channel
    /// (§4.3 Security): every record carries a 24-byte sequence + tag
    /// overhead and pays AEAD processing on both ends.
    pub fn new_secured(vm: VmId, link: LinkSpec, service_time: SimDuration) -> Self {
        Memtap { vm, link, service_time, secured: true, stats: MemtapStats::default() }
    }

    /// `true` when the §4.3 secure channel is in use.
    pub fn is_secured(&self) -> bool {
        self.secured
    }

    /// The VM this memtap serves.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemtapStats {
        self.stats
    }

    /// Services one fault for a page whose compressed size is `compressed`.
    ///
    /// Returns the end-to-end latency until the vCPU can be rescheduled.
    pub fn service_fault(&mut self, compressed: ByteSize) -> SimDuration {
        self.stats.faults += 1;
        self.stats.compressed_bytes += compressed;
        self.stats.raw_bytes += ByteSize::bytes(oasis_mem::PAGE_SIZE);
        self.fault_latency(compressed)
    }

    /// Latency of a single fault without recording it.
    pub fn fault_latency(&self, compressed: ByteSize) -> SimDuration {
        let request_rtt = self.link.latency * 2;
        let mut payload = compressed.as_bytes() as f64;
        let mut crypto = SimDuration::ZERO;
        if self.secured {
            payload += oasis_net::secure::SecureChannel::record_overhead() as f64;
            // Seal at the server, open at the client.
            crypto = SimDuration::from_secs_f64(2.0 * payload / CRYPTO_BYTES_PER_SEC);
        }
        let wire = SimDuration::from_secs_f64(payload / self.link.bandwidth);
        let decompress =
            SimDuration::from_secs_f64(oasis_mem::PAGE_SIZE as f64 / DECOMPRESS_BYTES_PER_SEC);
        FAULT_OVERHEAD + request_rtt + self.service_time + wire + decompress + crypto
    }

    /// Latency to fault in `n` pages of mean compressed size `mean`,
    /// serially (a blocked vCPU fetches one page at a time).
    pub fn serial_fetch_latency(&self, n: u64, mean: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(self.fault_latency(mean).as_secs_f64() * n as f64)
    }

    /// Fetches a chunk of pages from the memory server in one pipelined
    /// exchange: every request is issued ([`MemoryServer::begin_fetch`]),
    /// then answered in order ([`MemoryServer::complete_fetch`]).
    ///
    /// The memtap stats are charged exactly once, for exactly the pages
    /// that were actually served. If the server fails mid-chunk — most
    /// importantly a daemon crash landing between two answers — the
    /// remaining in-flight requests are aborted and *nothing* about them
    /// reaches the stats: not the fault count, not the bytes, not the
    /// latency. (A per-page loop that pre-charged the whole chunk would
    /// overstate fetch traffic on every crash; see
    /// `tests/fault_scenarios.rs`.)
    ///
    /// The served prefix is accounted identically to serial
    /// [`service_fault`](Memtap::service_fault) calls: same per-page
    /// latency terms summed in the same order, same byte totals.
    pub fn fetch_chunk(&mut self, ms: &mut MemoryServer, pages: &[PageNum]) -> ChunkFetch {
        let mut aborted = None;
        let mut begun = 0;
        for &page in pages {
            match ms.begin_fetch(self.vm, page) {
                Ok(()) => begun += 1,
                Err(e) => {
                    aborted = Some(e);
                    break;
                }
            }
        }
        let mut served = Vec::with_capacity(begun);
        let mut latency = SimDuration::ZERO;
        for &page in &pages[..begun] {
            match ms.complete_fetch(self.vm, page) {
                Ok(size) => {
                    latency += self.fault_latency(size);
                    served.push((page, size));
                }
                Err(e) => {
                    ms.abort_fetches();
                    if aborted.is_none() {
                        aborted = Some(e);
                    }
                    break;
                }
            }
        }
        self.stats.faults += served.len() as u64;
        self.stats.raw_bytes += ByteSize::bytes(served.len() as u64 * oasis_mem::PAGE_SIZE);
        for &(_, size) in &served {
            self.stats.compressed_bytes += size;
        }
        ChunkFetch { served, latency, aborted }
    }
}

/// Outcome of a chunk-granular fetch ([`Memtap::fetch_chunk`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkFetch {
    /// Pages actually served, in request order, with compressed sizes.
    pub served: Vec<(PageNum, ByteSize)>,
    /// End-to-end latency of the served prefix (sum of per-page fault
    /// latencies, in order).
    pub latency: SimDuration,
    /// The error that cut the chunk short, if any; pages after the served
    /// prefix were never fetched and never charged.
    pub aborted: Option<MsError>,
}

impl ChunkFetch {
    /// Compressed bytes of the served prefix.
    pub fn compressed(&self) -> ByteSize {
        self.served.iter().map(|&(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_power::MemoryServerProfile;

    fn memtap() -> Memtap {
        Memtap::new(VmId(1), LinkSpec::gige(), MemoryServerProfile::prototype().page_service_time)
    }

    #[test]
    fn fault_latency_is_milliseconds() {
        let mt = memtap();
        let lat = mt.fault_latency(ByteSize::bytes(2_000));
        // ~0.12 ms overhead + 0.4 ms RTT + 3.5 ms service + ~17 µs wire.
        let ms = lat.as_secs_f64() * 1_000.0;
        assert!((3.0..6.0).contains(&ms), "fault latency {ms} ms");
    }

    #[test]
    fn larger_pages_take_longer() {
        let mt = memtap();
        assert!(mt.fault_latency(ByteSize::bytes(4_097)) > mt.fault_latency(ByteSize::bytes(100)));
    }

    #[test]
    fn stats_accumulate() {
        let mut mt = memtap();
        mt.service_fault(ByteSize::bytes(1_000));
        mt.service_fault(ByteSize::bytes(2_000));
        let s = mt.stats();
        assert_eq!(s.faults, 2);
        assert_eq!(s.compressed_bytes, ByteSize::bytes(3_000));
        assert_eq!(s.raw_bytes, ByteSize::bytes(8_192));
        assert_eq!(mt.vm(), VmId(1));
    }

    #[test]
    fn serial_fetch_scales_linearly() {
        let mt = memtap();
        let one = mt.fault_latency(ByteSize::bytes(1_500)).as_secs_f64();
        let thousand = mt.serial_fetch_latency(1_000, ByteSize::bytes(1_500)).as_secs_f64();
        assert!((thousand - 1_000.0 * one).abs() < 0.01);
    }

    #[test]
    fn secured_memtap_pays_modest_overhead() {
        let plain = memtap();
        let secured = Memtap::new_secured(
            VmId(1),
            LinkSpec::gige(),
            MemoryServerProfile::prototype().page_service_time,
        );
        assert!(secured.is_secured());
        let a = plain.fault_latency(ByteSize::bytes(2_000)).as_secs_f64();
        let b = secured.fault_latency(ByteSize::bytes(2_000)).as_secs_f64();
        assert!(b > a, "security is not free");
        assert!(b < a * 1.05, "overhead must stay under 5%: {a} vs {b}");
    }

    /// A serving memory server holding `n` pages of varying compressed
    /// sizes for `VmId(1)`.
    fn loaded_server(n: u64) -> MemoryServer {
        let mut ms = MemoryServer::new(MemoryServerProfile::prototype());
        let batch: Vec<_> = (0..n)
            .map(|i| (oasis_mem::PageNum(i), ByteSize::bytes(1_000 + (i % 7) * 100)))
            .collect();
        ms.upload(VmId(1), &batch, false).unwrap();
        ms.handoff_to_server().unwrap();
        ms
    }

    #[test]
    fn fetch_chunk_matches_serial_faults() {
        let mut serial_ms = loaded_server(10);
        let mut chunk_ms = loaded_server(10);
        let mut serial_mt = memtap();
        let mut chunk_mt = memtap();
        let pages: Vec<PageNum> = (0..10).map(PageNum).collect();
        let mut serial_lat = SimDuration::ZERO;
        for &p in &pages {
            let size = serial_ms.serve_page(VmId(1), p).unwrap();
            serial_lat += serial_mt.service_fault(size);
        }
        let fetch = chunk_mt.fetch_chunk(&mut chunk_ms, &pages);
        assert_eq!(fetch.aborted, None);
        assert_eq!(fetch.served.len(), 10);
        assert_eq!(fetch.latency, serial_lat, "same per-page terms, same order");
        assert_eq!(chunk_mt.stats(), serial_mt.stats());
        assert_eq!(chunk_ms.stats(), serial_ms.stats());
        assert_eq!(chunk_ms.in_flight(), 0);
    }

    #[test]
    fn mid_chunk_crash_charges_only_served_pages() {
        let mut ms = loaded_server(8);
        let mut mt = memtap();
        ms.schedule_crash_after(3);
        let pages: Vec<PageNum> = (0..8).map(PageNum).collect();
        let fetch = mt.fetch_chunk(&mut ms, &pages);
        assert_eq!(fetch.aborted, Some(MsError::Crashed));
        assert_eq!(fetch.served.len(), 3, "three answers landed before the daemon died");
        let s = mt.stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.compressed_bytes, fetch.compressed());
        assert_eq!(s.raw_bytes, ByteSize::bytes(3 * oasis_mem::PAGE_SIZE));
        let expected: SimDuration =
            fetch.served.iter().fold(SimDuration::ZERO, |acc, &(_, sz)| acc + mt.fault_latency(sz));
        assert_eq!(fetch.latency, expected, "latency covers the served prefix only");
        assert_eq!(ms.stats().requests, 3, "server counts only answered requests");
        assert_eq!(ms.in_flight(), 0, "in-flight remainder was aborted");
    }

    #[test]
    fn bad_page_stops_chunk_after_prefix() {
        let mut ms = loaded_server(5);
        let mut mt = memtap();
        let pages = [PageNum(0), PageNum(1), PageNum(99), PageNum(2)];
        let fetch = mt.fetch_chunk(&mut ms, &pages);
        assert_eq!(fetch.aborted, Some(MsError::UnknownPage(VmId(1), PageNum(99))));
        assert_eq!(fetch.served.len(), 2, "requests issued before the bad page are answered");
        assert_eq!(mt.stats().faults, 2);
        assert_eq!(ms.in_flight(), 0);
    }

    #[test]
    fn libreoffice_startup_scale_matches_figure6() {
        // 42 000 serial faults at ~4 ms each ≈ 170 s: the paper's 168 s
        // LibreOffice start inside a partial VM.
        let mt = memtap();
        let lat = mt.serial_fetch_latency(42_000, ByteSize::bytes(1_800));
        let secs = lat.as_secs_f64();
        assert!((140.0..200.0).contains(&secs), "startup {secs} s");
    }
}
