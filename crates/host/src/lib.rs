//! Host substrate: hypervisor model, host agent, memtap and the
//! low-power memory server.
//!
//! One Oasis host runs a hypervisor with extended page-fault handling, a
//! user-level host agent in dom0, one memtap process per partial VM, and
//! (on home hosts) a low-power memory server sharing a SAS drive (§4).
//! This crate models each of those components functionally:
//!
//! * [`guest`] — deterministic guest memory images with per-page content
//!   classes and codec-derived compressed sizes.
//! * [`hypervisor`] — VM hosting, absent-entry page faults, on-demand
//!   2 MiB chunk frame allocation (§4.2).
//! * [`memserver`] — the memory server of §4.3: drive attach/detach
//!   protocol, compressed + differential upload, page serving while the
//!   host sleeps.
//! * [`memtap`] — the per-VM fault-servicing process: request, transfer,
//!   decompress, resume vCPU (§4.2).
//! * [`agent`] — the dom0 host agent: VM lifecycle, ACPI power operations
//!   and xenstat-style statistics reporting (§4.2).
//! * [`sleep_sim`] — the event-driven §2 experiment: how much S3 sleep a
//!   home host gets when it must wake for every page request (Figure 2's
//!   motivation for the low-power memory server).

#![warn(missing_docs)]

pub mod agent;
pub mod guest;
pub mod hypervisor;
pub mod memserver;
pub mod memtap;
pub mod sleep_sim;

pub use agent::{HostAgent, HostStats};
pub use guest::GuestMemoryImage;
pub use hypervisor::Hypervisor;
pub use memserver::MemoryServer;
pub use memtap::{ChunkFetch, Memtap};
