//! The hypervisor model: VM hosting and extended page-fault handling.
//!
//! §4.2: "When setting up the page tables of a partial VM, the hypervisor
//! marks its page entries as absent which causes page faults whenever the
//! VM attempts to access the pages. … Page fault handling in Xen was
//! extended to allocate frames on-demand and, via an event channel, notify
//! the corresponding memtap process … The hypervisor allocates frames at
//! the granularity of a chunk consisting of 2 MiB."
//!
//! [`Hypervisor`] hosts VMs, routes guest accesses through their page
//! tables, allocates frames from a [`ChunkAllocator`] on demand, and
//! tracks dirty state for reintegration.

use std::collections::BTreeMap;

use oasis_mem::chunk::{ChunkAllocator, CHUNK_SIZE};
use oasis_mem::dirty::DirtyLog;
use oasis_mem::page_table::{Access, PageTable};
use oasis_mem::wss::WorkingSetTracker;
use oasis_mem::{ByteSize, PageNum, PAGE_SIZE};
use oasis_telemetry::{Counter, Event, Telemetry};
use oasis_vm::{Vm, VmId};

use crate::guest::GuestMemoryImage;

/// Errors from hypervisor operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HvError {
    /// The VM is not hosted here.
    UnknownVm(VmId),
    /// A VM with this id already runs here.
    DuplicateVm(VmId),
    /// The host's memory is exhausted.
    OutOfMemory,
    /// The page number is outside the VM's allocation.
    BadPage(VmId, PageNum),
}

impl core::fmt::Display for HvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HvError::UnknownVm(id) => write!(f, "{id} is not hosted here"),
            HvError::DuplicateVm(id) => write!(f, "{id} already exists"),
            HvError::OutOfMemory => write!(f, "host memory exhausted"),
            HvError::BadPage(id, p) => write!(f, "{id}: {p:?} out of range"),
        }
    }
}

impl std::error::Error for HvError {}

/// Result of a guest memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuestAccess {
    /// Page resident; access completed locally.
    Hit,
    /// Page absent; the vCPU is paused and memtap must fetch the page.
    FaultPending(PageNum),
}

/// A VM hosted by this hypervisor.
#[derive(Clone, Debug)]
pub struct HostedVm {
    /// Control-plane view.
    pub vm: Vm,
    /// Pseudo-physical page table.
    pub table: PageTable,
    /// Shadow-page-table dirty log (for differential upload and
    /// reintegration).
    pub dirty: DirtyLog,
    /// Unique-touch tracker for working-set measurement.
    pub wss: WorkingSetTracker,
    /// Content model of the VM's memory.
    pub image: GuestMemoryImage,
}

/// The hypervisor of one host.
#[derive(Clone, Debug)]
pub struct Hypervisor {
    allocator: ChunkAllocator,
    vms: BTreeMap<VmId, HostedVm>,
    telemetry: Telemetry,
    /// Cached instrument handles: the fault path is hot, so the registry
    /// is consulted once, not per access.
    hits: Counter,
    faults: Counter,
}

impl Hypervisor {
    /// Creates a hypervisor managing `capacity` of machine memory.
    pub fn new(capacity: ByteSize) -> Self {
        Hypervisor::with_telemetry(capacity, Telemetry::disabled())
    }

    /// Creates a hypervisor reporting to the given telemetry bus.
    pub fn with_telemetry(capacity: ByteSize, telemetry: Telemetry) -> Self {
        let m = telemetry.metrics();
        let hits = m.counter("guest_accesses_total", &[("result", "hit")]);
        let faults = m.counter("guest_accesses_total", &[("result", "fault")]);
        Hypervisor {
            allocator: ChunkAllocator::new(capacity),
            vms: BTreeMap::new(),
            telemetry,
            hits,
            faults,
        }
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Iterates over hosted VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.keys().copied()
    }

    /// Access to a hosted VM.
    pub fn vm(&self, id: VmId) -> Result<&HostedVm, HvError> {
        self.vms.get(&id).ok_or(HvError::UnknownVm(id))
    }

    /// Mutable access to a hosted VM.
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut HostedVm, HvError> {
        self.vms.get_mut(&id).ok_or(HvError::UnknownVm(id))
    }

    /// Creates a fully resident VM (normal creation or full-migration
    /// arrival).
    pub fn create_full(&mut self, vm: Vm, image: GuestMemoryImage) -> Result<(), HvError> {
        self.insert(vm, image, true)
    }

    /// Creates a partial VM from a migrated descriptor: page tables are
    /// present but every entry is absent (§4.2).
    pub fn create_partial(&mut self, vm: Vm, image: GuestMemoryImage) -> Result<(), HvError> {
        self.insert(vm, image, false)
    }

    fn insert(&mut self, vm: Vm, image: GuestMemoryImage, resident: bool) -> Result<(), HvError> {
        if self.vms.contains_key(&vm.id) {
            return Err(HvError::DuplicateVm(vm.id));
        }
        let pages = vm.allocation.pages(PAGE_SIZE);
        let table =
            if resident { PageTable::new_resident(pages) } else { PageTable::new_absent(pages) };
        self.vms.insert(
            vm.id,
            HostedVm {
                vm,
                dirty: DirtyLog::new(pages),
                wss: WorkingSetTracker::new(pages),
                table,
                image,
            },
        );
        Ok(())
    }

    /// Destroys a VM and frees its chunks; returns its control-plane view.
    pub fn destroy(&mut self, id: VmId) -> Result<Vm, HvError> {
        let hosted = self.vms.remove(&id).ok_or(HvError::UnknownVm(id))?;
        self.allocator.free_owner(id.0);
        Ok(hosted.vm)
    }

    /// Routes a guest access. Absent pages pause the vCPU and return
    /// [`GuestAccess::FaultPending`]; memtap must complete the fault via
    /// [`install_fetched`](Hypervisor::install_fetched).
    pub fn guest_access(
        &mut self,
        id: VmId,
        page: PageNum,
        write: bool,
    ) -> Result<GuestAccess, HvError> {
        let hosted = self.vms.get_mut(&id).ok_or(HvError::UnknownVm(id))?;
        match hosted.table.touch(page, write) {
            Ok(Access::Hit) => {
                hosted.wss.touch(page);
                if write {
                    hosted.dirty.record(page);
                }
                self.hits.inc();
                Ok(GuestAccess::Hit)
            }
            Ok(Access::Fault) => {
                self.faults.inc();
                Ok(GuestAccess::FaultPending(page))
            }
            Err(_) => Err(HvError::BadPage(id, page)),
        }
    }

    /// Batched equivalent of serial [`guest_access`] calls over the run
    /// `start..start + writes.len()` (page `start + i` accessed with
    /// `writes[i]`), stopping at the first absent page.
    ///
    /// Returns the number of hits consumed from the front of the run;
    /// if it is shorter than `writes`, page `start + hits` faulted (or
    /// the run crossed the table end) and the caller services it exactly
    /// as in the serial path. One VM lookup, one range update of the
    /// accessed bits and working set, and one counter add replace the
    /// per-page walk — with identical resulting state: bitmaps are
    /// order-insensitive and the counter totals are integer sums.
    ///
    /// [`guest_access`]: Hypervisor::guest_access
    pub fn guest_access_run(
        &mut self,
        id: VmId,
        start: PageNum,
        writes: &[bool],
    ) -> Result<u64, HvError> {
        let hosted = self.vms.get_mut(&id).ok_or(HvError::UnknownVm(id))?;
        let hits =
            hosted.table.touch_run(start, writes).map_err(|_| HvError::BadPage(id, start))?;
        hosted.wss.touch_range(start, hits);
        for (i, &write) in writes[..hits as usize].iter().enumerate() {
            if write {
                hosted.dirty.record(PageNum(start.0 + i as u64));
            }
        }
        self.hits.add(hits);
        Ok(hits)
    }

    /// Batched equivalent of serial write [`guest_access`] calls over an
    /// arbitrary (scattered) page list, stopping at the first absent
    /// page.
    ///
    /// Returns the number of hits consumed from the front of `pages`.
    /// Duplicates are fine — re-touching a page is idempotent, exactly
    /// as in the serial loop. Out-of-range pages error with
    /// [`HvError::BadPage`] after the preceding hits are recorded, like
    /// the serial path.
    ///
    /// [`guest_access`]: Hypervisor::guest_access
    pub fn guest_access_writes(&mut self, id: VmId, pages: &[PageNum]) -> Result<u64, HvError> {
        let hosted = self.vms.get_mut(&id).ok_or(HvError::UnknownVm(id))?;
        let mut hits = 0u64;
        for &page in pages {
            match hosted.table.touch(page, true) {
                Ok(Access::Hit) => {
                    hosted.wss.touch(page);
                    hosted.dirty.record(page);
                    hits += 1;
                }
                Ok(Access::Fault) => break,
                Err(_) => {
                    self.hits.add(hits);
                    return Err(HvError::BadPage(id, page));
                }
            }
        }
        self.hits.add(hits);
        Ok(hits)
    }

    /// Completes a fault: allocates a frame from the chunk allocator and
    /// installs the fetched page, then replays the access.
    pub fn install_fetched(&mut self, id: VmId, page: PageNum, write: bool) -> Result<(), HvError> {
        let frame = self.allocator.alloc_frame(id.0).map_err(|_| HvError::OutOfMemory)?;
        let hosted = self.vms.get_mut(&id).ok_or(HvError::UnknownVm(id))?;
        hosted.table.install(page, frame).map_err(|_| HvError::BadPage(id, page))?;
        hosted.wss.touch(page);
        if write {
            hosted.dirty.record(page);
            hosted.table.touch(page, true).map_err(|_| HvError::BadPage(id, page))?;
        }
        self.telemetry.emit(Event::PageFaultFetched { vm: id.0, page: page.0 });
        Ok(())
    }

    /// Total memory demanded by hosted VMs (full allocation for full VMs,
    /// resident working set for partial VMs).
    pub fn memory_demand(&self) -> ByteSize {
        self.vms.values().map(|h| h.vm.memory_demand()).sum()
    }

    /// Host memory capacity.
    pub fn capacity(&self) -> ByteSize {
        CHUNK_SIZE * self.allocator.total_chunks()
    }

    /// Fragmentation of the chunked heap.
    pub fn heap_fragmentation(&self) -> f64 {
        self.allocator.fragmentation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::compress::PageMix;
    use oasis_vm::workload::WorkloadClass;

    fn small_vm(id: u32) -> (Vm, GuestMemoryImage) {
        let vm = Vm::new(VmId(id), WorkloadClass::Desktop, ByteSize::mib(64), 1);
        let image = GuestMemoryImage::new(id as u64, PageMix::desktop(), 64 * 256);
        (vm, image)
    }

    #[test]
    fn full_vm_hits_everywhere() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (vm, img) = small_vm(1);
        hv.create_full(vm, img).unwrap();
        assert_eq!(hv.guest_access(VmId(1), PageNum(100), false).unwrap(), GuestAccess::Hit);
        assert_eq!(hv.vm(VmId(1)).unwrap().wss.unique_pages(), 1);
    }

    #[test]
    fn partial_vm_faults_then_hits() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (mut vm, img) = small_vm(2);
        vm.make_partial(ByteSize::ZERO);
        hv.create_partial(vm, img).unwrap();
        let id = VmId(2);
        assert_eq!(
            hv.guest_access(id, PageNum(5), false).unwrap(),
            GuestAccess::FaultPending(PageNum(5))
        );
        hv.install_fetched(id, PageNum(5), false).unwrap();
        assert_eq!(hv.guest_access(id, PageNum(5), false).unwrap(), GuestAccess::Hit);
        assert_eq!(hv.vm(id).unwrap().table.present_count(), 1);
    }

    #[test]
    fn writes_feed_dirty_log() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (vm, img) = small_vm(3);
        hv.create_full(vm, img).unwrap();
        hv.guest_access(VmId(3), PageNum(1), true).unwrap();
        hv.guest_access(VmId(3), PageNum(2), false).unwrap();
        let hosted = hv.vm_mut(VmId(3)).unwrap();
        assert_eq!(hosted.dirty.take_epoch(), vec![PageNum(1)]);
    }

    #[test]
    fn fetched_write_is_dirty() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (mut vm, img) = small_vm(4);
        vm.make_partial(ByteSize::ZERO);
        hv.create_partial(vm, img).unwrap();
        hv.install_fetched(VmId(4), PageNum(9), true).unwrap();
        let hosted = hv.vm_mut(VmId(4)).unwrap();
        assert_eq!(hosted.dirty.take_epoch(), vec![PageNum(9)]);
    }

    #[test]
    fn duplicate_and_unknown_vm_errors() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (vm, img) = small_vm(5);
        hv.create_full(vm.clone(), img.clone()).unwrap();
        assert_eq!(hv.create_full(vm, img), Err(HvError::DuplicateVm(VmId(5))));
        assert_eq!(hv.guest_access(VmId(99), PageNum(0), false), Err(HvError::UnknownVm(VmId(99))));
        assert!(hv.destroy(VmId(99)).is_err());
    }

    #[test]
    fn destroy_frees_chunks_for_reuse() {
        let mut hv = Hypervisor::new(ByteSize::mib(2)); // One chunk.
        let (mut vm, img) = small_vm(6);
        vm.make_partial(ByteSize::ZERO);
        hv.create_partial(vm, img).unwrap();
        hv.install_fetched(VmId(6), PageNum(0), false).unwrap();
        // Second VM cannot get a chunk while the first holds it.
        let (mut vm2, img2) = small_vm(7);
        vm2.make_partial(ByteSize::ZERO);
        hv.create_partial(vm2, img2).unwrap();
        assert_eq!(hv.install_fetched(VmId(7), PageNum(0), false), Err(HvError::OutOfMemory));
        hv.destroy(VmId(6)).unwrap();
        assert!(hv.install_fetched(VmId(7), PageNum(0), false).is_ok());
    }

    #[test]
    fn memory_demand_sums_vm_demands() {
        let mut hv = Hypervisor::new(ByteSize::gib(1));
        let (vm1, img1) = small_vm(8);
        let (mut vm2, img2) = small_vm(9);
        vm2.make_partial(ByteSize::mib(10));
        hv.create_full(vm1, img1).unwrap();
        hv.create_partial(vm2, img2).unwrap();
        assert_eq!(hv.memory_demand(), ByteSize::mib(74));
        assert_eq!(hv.vm_count(), 2);
    }

    /// Serial reference for [`Hypervisor::guest_access_run`] /
    /// [`Hypervisor::guest_access_writes`]: per-page accesses stopping at
    /// the first fault.
    fn serial_accesses(hv: &mut Hypervisor, id: VmId, accesses: &[(PageNum, bool)]) -> u64 {
        let mut hits = 0;
        for &(page, write) in accesses {
            match hv.guest_access(id, page, write).unwrap() {
                GuestAccess::Hit => hits += 1,
                GuestAccess::FaultPending(_) => break,
            }
        }
        hits
    }

    /// Two hypervisors with one partial VM each, pages `0..present`
    /// installed in identical order.
    fn partial_pair(present: u64) -> (Hypervisor, Hypervisor, VmId) {
        let id = VmId(11);
        let make = || {
            let mut hv = Hypervisor::new(ByteSize::mib(256));
            let (mut vm, img) = small_vm(id.0);
            vm.make_partial(ByteSize::ZERO);
            hv.create_partial(vm, img).unwrap();
            for p in 0..present {
                hv.install_fetched(id, PageNum(p), false).unwrap();
            }
            hv
        };
        (make(), make(), id)
    }

    #[test]
    fn guest_access_run_matches_serial_loop() {
        let (mut serial, mut batched, id) = partial_pair(10);
        let writes = [true, false, false, true, true, false, true, false, true, true, false, true];
        let start = PageNum(2);
        let accesses: Vec<(PageNum, bool)> =
            writes.iter().enumerate().map(|(i, &w)| (PageNum(start.0 + i as u64), w)).collect();
        let want = serial_accesses(&mut serial, id, &accesses);
        let got = batched.guest_access_run(id, start, &writes).unwrap();
        assert_eq!(got, want, "run stops at the first absent page");
        assert_eq!(got, 8, "pages 2..10 hit, page 10 faults");
        assert_eq!(batched.hits.get(), serial.hits.get());
        let (s, b) = (serial.vm_mut(id).unwrap(), batched.vm_mut(id).unwrap());
        assert_eq!(b.wss.pages(), s.wss.pages());
        assert_eq!(b.dirty.take_epoch(), s.dirty.take_epoch());
        assert_eq!(b.table.present_count(), s.table.present_count());
        // The serial loop touched the faulting page (faults counter +1);
        // a batched caller replays exactly that access next.
        assert_eq!(
            batched.guest_access(id, PageNum(start.0 + got), writes[got as usize]).unwrap(),
            GuestAccess::FaultPending(PageNum(10))
        );
        assert_eq!(batched.faults.get(), serial.faults.get());
    }

    #[test]
    fn guest_access_run_full_residency_consumes_all() {
        let (mut serial, mut batched, id) = partial_pair(20);
        let writes = vec![true; 16];
        let accesses: Vec<(PageNum, bool)> = (0..16).map(|i| (PageNum(i), true)).collect();
        assert_eq!(serial_accesses(&mut serial, id, &accesses), 16);
        assert_eq!(batched.guest_access_run(id, PageNum(0), &writes).unwrap(), 16);
        let (s, b) = (serial.vm_mut(id).unwrap(), batched.vm_mut(id).unwrap());
        assert_eq!(b.dirty.take_epoch(), s.dirty.take_epoch());
        assert_eq!(b.wss.unique_pages(), s.wss.unique_pages());
    }

    #[test]
    fn guest_access_run_out_of_range_start() {
        let (_, mut hv, id) = partial_pair(4);
        let beyond = PageNum(64 * 256 + 1);
        assert_eq!(hv.guest_access_run(id, beyond, &[true]), Err(HvError::BadPage(id, beyond)));
    }

    #[test]
    fn guest_access_writes_matches_serial_loop() {
        let (mut serial, mut batched, id) = partial_pair(12);
        // Scattered targets with duplicates, ending at an absent page.
        let pages: Vec<PageNum> =
            [7u64, 2, 7, 11, 0, 2, 9, 30, 5].iter().map(|&p| PageNum(p)).collect();
        let accesses: Vec<(PageNum, bool)> = pages.iter().map(|&p| (p, true)).collect();
        let want = serial_accesses(&mut serial, id, &accesses);
        let got = batched.guest_access_writes(id, &pages).unwrap();
        assert_eq!(got, want);
        assert_eq!(got, 7, "page 30 is absent");
        assert_eq!(batched.hits.get(), serial.hits.get());
        let (s, b) = (serial.vm_mut(id).unwrap(), batched.vm_mut(id).unwrap());
        assert_eq!(b.wss.pages(), s.wss.pages());
        assert_eq!(b.dirty.take_epoch(), s.dirty.take_epoch());
    }

    #[test]
    fn guest_access_writes_bad_page_after_prefix() {
        let (_, mut hv, id) = partial_pair(6);
        let beyond = PageNum(64 * 256 + 5);
        let pages = [PageNum(1), PageNum(3), beyond];
        assert_eq!(hv.guest_access_writes(id, &pages), Err(HvError::BadPage(id, beyond)));
        assert_eq!(hv.hits.get(), 2, "prefix hits recorded before the error");
    }

    #[test]
    fn out_of_range_page_rejected() {
        let mut hv = Hypervisor::new(ByteSize::mib(256));
        let (vm, img) = small_vm(10);
        hv.create_full(vm, img).unwrap();
        let beyond = PageNum(64 * 256 + 1);
        assert_eq!(
            hv.guest_access(VmId(10), beyond, false),
            Err(HvError::BadPage(VmId(10), beyond))
        );
    }
}
