//! Event-driven home-host sleep simulation (the §2 / Figure 2 experiment).
//!
//! A home host serving page requests for its consolidated partial VMs
//! (without a low-power memory server) must wake for every request burst:
//! it resumes, serves, waits out an idle timer, suspends again. This
//! module wires the [`oasis_sim::Engine`] to the [`AcpiController`] and a
//! set of per-VM request processes to measure exactly how much S3 sleep
//! such a host can get — the experiment that motivates the memory server.

use oasis_power::acpi::AcpiController;
use oasis_power::{HostEnergyProfile, PowerState};
use oasis_sim::engine::{Engine, EventQueue, EventToken, Model};
use oasis_sim::stats::TimeWeighted;
use oasis_sim::{SimDuration, SimRng, SimTime};
use oasis_vm::workload::{IdleAccessModel, WorkloadClass};

/// Events of the sleep simulation.
#[derive(Debug)]
pub enum SleepEvent {
    /// A consolidated VM's memtap asks the home for pages.
    PageRequest {
        /// Index of the requesting VM.
        vm: usize,
    },
    /// The ACPI transition in progress completed.
    TransitionDone,
    /// The host has been quiet long enough to suspend.
    IdleTimerFired,
}

/// Result of one simulated serving period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SleepReport {
    /// Page-request bursts served.
    pub requests: u64,
    /// Fraction of time spent in S3.
    pub sleep_fraction: f64,
    /// Fraction of time spent transitioning (suspend + resume).
    pub transition_fraction: f64,
    /// Mean watts drawn over the period.
    pub mean_watts: f64,
    /// Requests that had to wait for a resume before being served.
    pub delayed_requests: u64,
}

/// The home host model: ACPI state machine + request processes.
struct HostModel {
    acpi: AcpiController,
    profile: HostEnergyProfile,
    idle_timer: SimDuration,
    vms: Vec<IdleAccessModel>,
    rng: SimRng,
    horizon: SimTime,
    // Accounting.
    asleep: TimeWeighted,
    transit: TimeWeighted,
    watts: TimeWeighted,
    requests: u64,
    delayed_requests: u64,
    idle_timer_token: Option<EventToken>,
}

impl HostModel {
    fn record_power(&mut self, now: SimTime) {
        let state = self.acpi.state();
        self.asleep.set(now, if state.is_sleeping() { 1.0 } else { 0.0 });
        self.transit.set(now, if state.is_in_transit() { 1.0 } else { 0.0 });
        self.watts.set(now, self.profile.watts(state, 0));
    }

    fn arm_idle_timer(&mut self, now: SimTime, queue: &mut EventQueue<SleepEvent>) {
        if let Some(token) = self.idle_timer_token.take() {
            queue.cancel(token);
        }
        let _ = now;
        self.idle_timer_token =
            Some(queue.schedule_after(self.idle_timer, SleepEvent::IdleTimerFired));
    }

    fn schedule_next_request(
        &mut self,
        vm: usize,
        now: SimTime,
        queue: &mut EventQueue<SleepEvent>,
    ) {
        let next = self.vms[vm].next_request(now, &mut self.rng);
        if next <= self.horizon {
            queue.schedule_at(next, SleepEvent::PageRequest { vm });
        }
    }
}

impl Model for HostModel {
    type Event = SleepEvent;

    // oasis-lint: boundary(panic-hygiene, "every expect below is guarded by the matching PowerState arm or check; the ACPI model cannot refuse")
    fn handle(&mut self, now: SimTime, event: SleepEvent, queue: &mut EventQueue<SleepEvent>) {
        match event {
            SleepEvent::PageRequest { vm } => {
                self.requests += 1;
                match self.acpi.state() {
                    PowerState::Powered => {
                        // Served immediately; the quiet period restarts.
                        self.arm_idle_timer(now, queue);
                    }
                    PowerState::Sleeping => {
                        self.delayed_requests += 1;
                        let ends = self.acpi.request_wake(now).expect("asleep");
                        queue.schedule_at(ends, SleepEvent::TransitionDone);
                    }
                    PowerState::Suspending => {
                        self.delayed_requests += 1;
                        // The wake chains after the suspend completes; the
                        // queued TransitionDone for the suspend will report
                        // the chained resume deadline.
                        let _ = self.acpi.request_wake(now).expect("suspending");
                    }
                    PowerState::Resuming => {
                        self.delayed_requests += 1;
                        // Already on its way up; nothing to do.
                    }
                }
                self.record_power(now);
                self.schedule_next_request(vm, now, queue);
            }
            SleepEvent::TransitionDone => {
                let (state, next) = self.acpi.on_transition_complete(now);
                if let Some(next_deadline) = next {
                    queue.schedule_at(next_deadline, SleepEvent::TransitionDone);
                }
                if state == PowerState::Powered {
                    self.arm_idle_timer(now, queue);
                }
                self.record_power(now);
            }
            SleepEvent::IdleTimerFired => {
                self.idle_timer_token = None;
                if self.acpi.state() == PowerState::Powered {
                    let ends = self.acpi.request_suspend(now).expect("powered");
                    queue.schedule_at(ends, SleepEvent::TransitionDone);
                    self.record_power(now);
                }
            }
        }
    }
}

/// Simulates a home host serving page requests for `vms` without a
/// low-power memory server, over `horizon`, with the given idle timer.
pub fn simulate_host_sleep(
    vms: &[WorkloadClass],
    horizon: SimDuration,
    idle_timer: SimDuration,
    seed: u64,
) -> SleepReport {
    let profile = HostEnergyProfile::table1();
    let mut model = HostModel {
        acpi: AcpiController::new(&profile),
        profile,
        idle_timer,
        vms: vms.iter().map(|c| c.idle_model()).collect(),
        rng: SimRng::new(seed ^ 0x51EE_B515),
        horizon: SimTime::ZERO + horizon,
        asleep: TimeWeighted::new(),
        transit: TimeWeighted::new(),
        watts: TimeWeighted::new(),
        requests: 0,
        delayed_requests: 0,
        idle_timer_token: None,
    };
    model.record_power(SimTime::ZERO);

    let mut engine = Engine::new(model);
    // Seed the first request of every VM and the initial idle timer.
    for vm in 0..vms.len() {
        let at = {
            let m = &mut engine.model;
            m.vms[vm].next_request(SimTime::ZERO, &mut m.rng)
        };
        engine.queue.schedule_at(at, SleepEvent::PageRequest { vm });
    }
    engine.queue.schedule_after(idle_timer, SleepEvent::IdleTimerFired);

    let end = SimTime::ZERO + horizon;
    engine.run_until(end);

    let model = &mut engine.model;
    SleepReport {
        requests: model.requests,
        sleep_fraction: model.asleep.average_at(end),
        transition_fraction: model.transit.average_at(end),
        mean_watts: model.watts.average_at(end),
        delayed_requests: model.delayed_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOURS: SimDuration = SimDuration::from_hours(12);
    const TIMER: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn single_database_vm_lets_the_host_sleep() {
        // Figure 2's left bar: one database VM, ~3.9 min between bursts.
        let r = simulate_host_sleep(&[WorkloadClass::Database], HOURS, TIMER, 1);
        assert!(r.sleep_fraction > 0.85, "sleep fraction {}", r.sleep_fraction);
        assert!(r.requests > 100);
        // Most requests arrive while asleep: each wakes the host.
        assert!(r.delayed_requests > r.requests / 2);
        assert!(r.mean_watts < 40.0, "mean watts {}", r.mean_watts);
    }

    #[test]
    fn ten_colocated_vms_prevent_sleep() {
        // Figure 2's right bar: 5 web + 5 database VMs, 5.8 s mean gaps —
        // barely longer than the 5.4 s transition round trip.
        let mix: Vec<WorkloadClass> =
            [WorkloadClass::Database; 5].into_iter().chain([WorkloadClass::WebServer; 5]).collect();
        let r = simulate_host_sleep(&mix, HOURS, TIMER, 1);
        assert!(r.sleep_fraction < 0.10, "sleep fraction {}", r.sleep_fraction);
        assert!(r.mean_watts > 90.0, "mean watts {}", r.mean_watts);
    }

    #[test]
    fn sleep_monotone_in_request_pressure() {
        let one = simulate_host_sleep(&[WorkloadClass::Database], HOURS, TIMER, 2);
        let three = simulate_host_sleep(&[WorkloadClass::Database; 3], HOURS, TIMER, 2);
        assert!(one.sleep_fraction > three.sleep_fraction);
    }

    #[test]
    fn longer_idle_timer_means_less_sleep() {
        let short = simulate_host_sleep(&[WorkloadClass::Database], HOURS, TIMER, 3);
        let long =
            simulate_host_sleep(&[WorkloadClass::Database], HOURS, SimDuration::from_secs(120), 3);
        assert!(short.sleep_fraction > long.sleep_fraction);
    }

    #[test]
    fn accounting_fractions_are_sane() {
        let r = simulate_host_sleep(&[WorkloadClass::WebServer; 2], HOURS, TIMER, 4);
        assert!(r.sleep_fraction >= 0.0 && r.sleep_fraction <= 1.0);
        assert!(r.transition_fraction >= 0.0 && r.transition_fraction <= 1.0);
        assert!(r.sleep_fraction + r.transition_fraction <= 1.0 + 1e-9);
        // Mean watts bounded by the profile extremes.
        assert!(r.mean_watts >= 12.9 && r.mean_watts <= 149.2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_host_sleep(&[WorkloadClass::Database; 2], HOURS, TIMER, 5);
        let b = simulate_host_sleep(&[WorkloadClass::Database; 2], HOURS, TIMER, 5);
        assert_eq!(a, b);
    }
}
