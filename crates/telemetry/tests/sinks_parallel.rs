//! Sink behavior under pressure and parallelism: ring overflow and
//! wraparound, and `BufferSink` replay ordering when per-worker buses
//! run on a real `WorkerPool` with more than one job (the `OASIS_JOBS`
//! fan-out path).

use oasis_sim::pool::WorkerPool;
use oasis_sim::SimTime;
use oasis_telemetry::{BufferSink, Event, Level, RingSink, Subscriber, Telemetry};

fn bus_with(sink: Box<dyn Subscriber>) -> Telemetry {
    let tel = Telemetry::new(Level::Debug);
    tel.attach(sink);
    tel
}

#[test]
fn ring_wraps_around_repeatedly_without_losing_order() {
    let ring = RingSink::new(4);
    let tel = bus_with(Box::new(ring.clone()));
    // 3 full laps plus a remainder: 14 events through a 4-slot ring.
    for host in 0..14u32 {
        tel.emit_at(SimTime::from_secs(u64::from(host)), Event::HostSuspended { host });
    }
    assert_eq!(ring.len(), 4);
    assert_eq!(ring.dropped(), 10);
    let snap = ring.snapshot();
    let hosts: Vec<u32> = snap
        .iter()
        .map(|r| match r.event {
            Event::HostSuspended { host } => host,
            ref other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(hosts, [10, 11, 12, 13], "oldest evicted first, order preserved");
    assert_eq!(snap.iter().map(|r| r.seq).collect::<Vec<_>>(), [10, 11, 12, 13]);
}

#[test]
fn one_slot_ring_keeps_only_the_latest() {
    let ring = RingSink::new(1);
    let tel = bus_with(Box::new(ring.clone()));
    for host in 0..5u32 {
        tel.emit(Event::HostResumed { host });
    }
    assert_eq!(ring.len(), 1);
    assert_eq!(ring.dropped(), 4);
    assert_eq!(ring.snapshot()[0].event, Event::HostResumed { host: 4 });
}

#[test]
fn ring_capacity_zero_is_clamped_not_panicking() {
    let ring = RingSink::new(0);
    let tel = bus_with(Box::new(ring.clone()));
    tel.emit(Event::HostSuspended { host: 1 });
    tel.emit(Event::HostSuspended { host: 2 });
    assert_eq!(ring.len(), 1, "cap clamps to 1");
    assert_eq!(ring.dropped(), 1);
}

/// One worker's run: its own bus, its own buffer, a deterministic
/// stream derived from the seed.
fn worker_run(seed: u64) -> BufferSink {
    let buf = BufferSink::new();
    let tel = bus_with(Box::new(buf.clone()));
    for i in 0..50u64 {
        let t = SimTime::from_secs(seed * 1_000 + i);
        tel.emit_at(t, Event::IntervalStarted { interval: i as u32, active: seed as u32 });
        if i % 7 == 0 {
            tel.emit_at(t, Event::WolRetry { host: seed as u32, attempt: (i % 3) as u32 + 1 });
        }
    }
    tel.flush();
    buf
}

#[test]
fn buffer_replay_is_input_ordered_across_pool_sizes() {
    let seeds: Vec<u64> = (0..16).collect();
    let streams_for = |jobs: usize| -> Vec<String> {
        let buffers = WorkerPool::new(jobs).map(seeds.clone(), worker_run);
        // Replay in input order through one collecting buffer, exactly
        // like the experiment sweep's collector thread does.
        let merged = BufferSink::new();
        {
            let mut sink: Box<dyn Subscriber> = Box::new(merged.clone());
            for buf in &buffers {
                buf.replay_into(sink.as_mut());
            }
        }
        assert!(buffers.iter().all(BufferSink::is_empty), "replay drains the workers");
        merged.drain().iter().map(|r| r.to_json()).collect()
    };
    let sequential = streams_for(1);
    assert_eq!(sequential.len(), 16 * (50 + 8));
    for jobs in [2, 4, 11] {
        assert_eq!(streams_for(jobs), sequential, "jobs={jobs} replays byte-identically");
    }
    // The merged stream is grouped by input index: every record of seed
    // k precedes every record of seed k+1 regardless of which worker
    // finished first.
    let mut last_seed = 0u64;
    for line in &sequential {
        let active = line.split("\"active\":").nth(1).map(|s| s.trim_end_matches('}'));
        if let Some(active) = active {
            let seed: u64 = active.parse().unwrap();
            assert!(seed >= last_seed, "seed blocks stay contiguous");
            last_seed = seed;
        }
    }
}
