//! Integration tests: JSONL event encoding and metrics export round-trips
//! through the crate's own JSON parser.

use std::io::Write;
use std::sync::{Arc, Mutex};

use oasis_sim::SimTime;
use oasis_telemetry::json::{self, Value};
use oasis_telemetry::{Event, JsonlSink, Level, Metrics, MigrationKind, Telemetry};

/// A `Write` handle over a shared buffer, so the test can read back what
/// a boxed sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_string(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_stream_parses_back_with_ordered_fields() {
    let buf = SharedBuf::default();
    let tel = Telemetry::new(Level::Debug);
    tel.attach(Box::new(JsonlSink::new(buf.clone())));

    tel.emit_at(SimTime::from_secs(300), Event::IntervalStarted { interval: 1, active: 411 });
    tel.emit(Event::MigrationCompleted {
        vm: 17,
        from: 0,
        to: 33,
        kind: MigrationKind::Partial,
        moved_bytes: 173_015_040,
        downtime_us: 3_000_000,
        decision: 4,
    });
    tel.emit(Event::Note { text: "quote \" backslash \\ newline \n done".into() });
    tel.flush();

    let text = buf.take_string();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);

    // Every line is a self-contained JSON object the in-crate parser
    // accepts, with the fixed t/seq/kind prefix.
    for (i, line) in lines.iter().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}"));
        let obj = v.as_obj().expect("object");
        assert_eq!(obj.get("seq").and_then(Value::as_f64), Some(i as f64));
        assert!(obj.get("kind").and_then(Value::as_str).is_some());
        assert!(line.starts_with(&format!("{{\"t\":300000000,\"seq\":{i},")));
    }

    let mig = json::parse(lines[1]).unwrap();
    assert_eq!(mig.get("kind").and_then(Value::as_str), Some("migration_completed"));
    assert_eq!(mig.get("vm").and_then(Value::as_f64), Some(17.0));
    assert_eq!(mig.get("to").and_then(Value::as_f64), Some(33.0));
    assert_eq!(mig.get("mig").and_then(Value::as_str), Some("partial"));
    assert_eq!(mig.get("moved_bytes").and_then(Value::as_f64), Some(173_015_040.0));
    assert_eq!(mig.get("decision").and_then(Value::as_f64), Some(4.0));

    let note = json::parse(lines[2]).unwrap();
    assert_eq!(
        note.get("text").and_then(Value::as_str),
        Some("quote \" backslash \\ newline \n done"),
        "escaping round-trips"
    );
}

fn populated_registry() -> Metrics {
    let m = Metrics::new();
    m.counter("migration_bytes_total", &[("kind", "partial")]).add(1_234);
    m.counter("migration_bytes_total", &[("kind", "full")]).add(999);
    m.counter("wol_packets_total", &[]).add(7);
    m.gauge("hosts_powered", &[]).set(31);
    let h = m.histogram("span_wall_ns", &[("span", "plan")]);
    for v in [3u64, 100, 100_000] {
        h.record(v);
    }
    m
}

#[test]
fn json_export_round_trips_through_parser() {
    let m = populated_registry();
    let doc = json::parse(&m.to_json()).expect("valid JSON");

    let counters = doc.get("counters").and_then(Value::as_arr).expect("counters array");
    let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
        counters
            .iter()
            .find(|c| {
                c.get("name").and_then(Value::as_str) == Some(name)
                    && label.is_none_or(|(k, v)| {
                        c.get("labels").and_then(|l| l.get(k)).and_then(Value::as_str) == Some(v)
                    })
            })
            .and_then(|c| c.get("value").and_then(Value::as_f64))
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(find("migration_bytes_total", Some(("kind", "partial"))), 1_234.0);
    assert_eq!(find("migration_bytes_total", Some(("kind", "full"))), 999.0);
    assert_eq!(find("wol_packets_total", None), 7.0);

    let gauges = doc.get("gauges").and_then(Value::as_arr).expect("gauges array");
    assert_eq!(gauges.len(), 1);
    assert_eq!(gauges[0].get("value").and_then(Value::as_f64), Some(31.0));

    let hists = doc.get("histograms").and_then(Value::as_arr).expect("histograms array");
    assert_eq!(hists.len(), 1);
    let h = &hists[0];
    assert_eq!(h.get("count").and_then(Value::as_f64), Some(3.0));
    assert_eq!(h.get("sum").and_then(Value::as_f64), Some(100_103.0));
    let buckets = h.get("buckets").and_then(Value::as_arr).expect("buckets");
    assert_eq!(buckets.len(), 3, "one sparse bucket per recorded magnitude");
    let total: f64 = buckets.iter().filter_map(|b| b.get("count").and_then(Value::as_f64)).sum();
    assert_eq!(total, 3.0);
}

#[test]
fn prometheus_export_is_parseable_and_consistent() {
    let m = populated_registry();
    let text = m.to_prometheus();

    // Every non-comment line is `name{labels} value` or `name value`,
    // and every sample carries a numeric value.
    let mut samples = 0;
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "only TYPE/HELP comments: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("space-separated sample");
        assert!(!series.is_empty());
        if value != "+Inf" {
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
        samples += 1;
    }
    assert!(samples >= 8, "counters + gauge + histogram series, got {samples}");

    assert!(text.contains("migration_bytes_total{kind=\"partial\"} 1234"));
    assert!(text.contains("wol_packets_total 7"));
    assert!(text.contains("hosts_powered 31"));
    // Histogram: cumulative buckets end at the total count, and the sum
    // and count lines agree with the recorded data.
    assert!(text.contains("span_wall_ns_bucket{le=\"+Inf\",span=\"plan\"} 3"));
    assert!(text.contains("span_wall_ns_sum{span=\"plan\"} 100103"));
    assert!(text.contains("span_wall_ns_count{span=\"plan\"} 3"));

    // The exposition is deterministic.
    assert_eq!(text, populated_registry().to_prometheus());
}
