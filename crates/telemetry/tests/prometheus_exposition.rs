//! Prometheus text exposition-format validation.
//!
//! The golden-byte test in `export_roundtrip.rs` pins what one known
//! registry renders to; this suite instead checks the *format rules* a
//! Prometheus scraper enforces, over a registry built to hit the edge
//! cases: label values needing escaping, described and undescribed
//! metrics, and histograms with gaps between occupied buckets.

use oasis_telemetry::Metrics;
use std::collections::BTreeMap;

fn edgy_registry() -> Metrics {
    let m = Metrics::new();
    m.describe("requests_total", "Requests by route.");
    m.describe("lat_us", "Latency in microseconds.");
    m.counter("requests_total", &[("route", "/metrics")]).add(3);
    m.counter("requests_total", &[("route", "quote\"slash\\newline\ntab\t")]).inc();
    m.gauge("hosts_powered", &[]).set(-2);
    let h = m.histogram("lat_us", &[("span", "plan")]);
    for v in [0, 1, 5, 5, 300, 70_000] {
        h.record(v);
    }
    m
}

/// Splits a sample line into (name, labels, value), validating label
/// syntax and escaping along the way.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, String) {
    let (series, value) = line.rsplit_once(' ').expect("sample lines are `series value`");
    assert!(!value.is_empty() && !value.contains(' '));
    let Some((name, rest)) = series.split_once('{') else {
        return (series.to_string(), Vec::new(), value.to_string());
    };
    let body = rest.strip_suffix('}').expect("label block closes");
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        assert_eq!(chars.next(), Some('='), "label `{key}` has a value");
        assert_eq!(chars.next(), Some('"'), "label values are quoted");
        let mut val = String::new();
        loop {
            match chars.next().expect("label value terminates") {
                '\\' => match chars.next().expect("escape has a payload") {
                    '\\' => val.push('\\'),
                    '"' => val.push('"'),
                    'n' => val.push('\n'),
                    other => panic!("invalid escape \\{other} in label value"),
                },
                '"' => break,
                '\n' => panic!("raw newline inside a label value"),
                c => val.push(c),
            }
        }
        labels.push((key, val));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(other) => panic!("unexpected {other:?} after label"),
        }
    }
    (name.to_string(), labels, value.to_string())
}

#[test]
fn every_line_is_a_comment_or_a_valid_sample() {
    let text = edgy_registry().to_prometheus();
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "only HELP/TYPE comments: {line}"
            );
        } else {
            parse_sample(line);
        }
    }
}

#[test]
fn label_values_round_trip_through_exposition_escaping() {
    let text = edgy_registry().to_prometheus();
    let odd = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(parse_sample)
        .find(|(_, labels, _)| labels.iter().any(|(_, v)| v.contains('"')))
        .expect("the edge-case label survives");
    let (_, labels, value) = odd;
    assert_eq!(labels[0].1, "quote\"slash\\newline\ntab\t", "unescaping restores the raw value");
    assert_eq!(value, "1");
}

#[test]
fn help_and_type_lines_are_well_formed_and_ordered() {
    let text = edgy_registry().to_prometheus();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            let next = lines.get(i + 1).expect("HELP is not the last line");
            assert!(
                next.starts_with(&format!("# TYPE {name} ")),
                "HELP for {name} must sit directly above its TYPE line, found {next}"
            );
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            assert!(parts.next().is_none());
            // Every sample until the next comment belongs to this family.
            for sample in lines[i + 1..].iter().take_while(|l| !l.starts_with('#')) {
                let (sample_name, _, _) = parse_sample(sample);
                assert!(
                    sample_name == name
                        || (kind == "histogram"
                            && [
                                format!("{name}_bucket"),
                                format!("{name}_sum"),
                                format!("{name}_count"),
                            ]
                            .contains(&sample_name)),
                    "{sample_name} under TYPE {name}"
                );
            }
        }
    }
    assert!(
        text.contains("# HELP requests_total Requests by route.\n# TYPE requests_total counter")
    );
}

#[test]
fn histogram_buckets_are_monotone_and_consistent() {
    let text = edgy_registry().to_prometheus();
    // series name (sans le) → ascending (le, cumulative) observations.
    let mut series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, labels, value) = parse_sample(line);
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = &labels.iter().find(|(k, _)| k == "le").expect("buckets carry le").1;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
            let rest: Vec<String> =
                labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
            series
                .entry(format!("{base}|{}", rest.join(",")))
                .or_default()
                .push((le, value.parse().unwrap()));
        } else if let Some(base) = name.strip_suffix("_count") {
            let rest: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert(format!("{base}|{}", rest.join(",")), value.parse().unwrap());
        }
    }
    assert!(!series.is_empty(), "the registry has a histogram");
    for (key, buckets) in &series {
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{key}: le bounds ascend");
            assert!(pair[0].1 <= pair[1].1, "{key}: cumulative counts never decrease");
        }
        let (last_le, last_count) = buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{key}: +Inf bucket present and last");
        assert_eq!(last_count, &counts[key], "{key}: +Inf equals _count");
    }
}
