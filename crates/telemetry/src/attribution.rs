//! Energy attribution and quiescence ledgers.
//!
//! The simulator's `energy_series` answers *how much* the managed
//! cluster drew; these ledgers answer *where it went* and *how often
//! nothing happened*:
//!
//! * [`EnergyLedger`] decomposes the cumulative total into per-host
//!   active / idle / transition / memory-server components and per-VM
//!   demand-weighted shares of the active component. Everything is kept
//!   in integer **millijoules**, so per-host components sum bit-exactly
//!   to host totals and host totals sum bit-exactly to the grand total —
//!   no float re-association can break the books.
//! * [`QuiescenceLedger`] counts host-intervals and VM-intervals in
//!   which nothing changed (no power transition, no migration, no
//!   demand/state mutation). The quiescent fraction is the direct
//!   sizing evidence for the event-driven skip-ahead core (ROADMAP
//!   item 1): every quiescent interval is one an event-driven simulator
//!   would never have to simulate.
//!
//! Both types are plain data — accumulated by `oasis-cluster`, attached
//! to its `SimReport`, rendered by `oasis report` — and deterministic:
//! fixed-seed runs produce identical ledgers, sequential or pooled.

use std::fmt::Write as _;

/// Energy drawn by one host over the run, split by component
/// (millijoules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostEnergy {
    /// Host id.
    pub host: u32,
    /// Utilization-driven draw: awake watts above the idle floor.
    pub active_mj: u64,
    /// Idle floor while awake plus sleep-state draw.
    pub idle_mj: u64,
    /// Suspend/resume transition energy.
    pub transition_mj: u64,
    /// Memory-server draw while asleep but serving partial VMs.
    pub memserver_mj: u64,
}

impl HostEnergy {
    /// Sum of the four components (exact integer addition).
    pub fn total_mj(&self) -> u64 {
        self.active_mj + self.idle_mj + self.transition_mj + self.memserver_mj
    }
}

/// One VM's demand-weighted share of its hosts' active energy
/// (millijoules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmEnergy {
    /// VM id.
    pub vm: u32,
    /// Share of the active component, attributed interval by interval.
    pub share_mj: u64,
}

/// Per-host and per-VM decomposition of the run's energy total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnergyLedger {
    /// Per-host component breakdown, in host-id order.
    pub hosts: Vec<HostEnergy>,
    /// Per-VM shares of the active component, in VM-id order.
    pub vms: Vec<VmEnergy>,
}

impl EnergyLedger {
    /// Grand total across hosts (exact integer addition).
    pub fn total_mj(&self) -> u64 {
        self.hosts.iter().map(HostEnergy::total_mj).sum()
    }

    /// Sum of one component across hosts, by accessor.
    pub fn component_mj(&self, f: impl Fn(&HostEnergy) -> u64) -> u64 {
        self.hosts.iter().map(f).sum()
    }

    /// Total of the per-VM shares; never exceeds the active component.
    pub fn vm_total_mj(&self) -> u64 {
        self.vms.iter().map(|v| v.share_mj).sum()
    }

    /// True when no energy was booked.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// One line per host plus a totals line, byte-stable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "host", "active_mj", "idle_mj", "transition_mj", "memserver_mj", "total_mj"
        );
        for h in &self.hosts {
            let _ = writeln!(
                out,
                "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
                h.host,
                h.active_mj,
                h.idle_mj,
                h.transition_mj,
                h.memserver_mj,
                h.total_mj()
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "total",
            self.component_mj(|h| h.active_mj),
            self.component_mj(|h| h.idle_mj),
            self.component_mj(|h| h.transition_mj),
            self.component_mj(|h| h.memserver_mj),
            self.total_mj()
        );
        out
    }
}

/// Counts of intervals in which a host or VM changed nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuiescenceLedger {
    /// Simulated intervals observed.
    pub intervals: u64,
    /// Host-interval observations (`intervals × hosts`).
    pub host_intervals: u64,
    /// Host-intervals with no power transition and no resident mutation.
    pub host_quiescent: u64,
    /// VM-interval observations (`intervals × vms`).
    pub vm_intervals: u64,
    /// VM-intervals with no demand, state, placement or replica change.
    pub vm_quiescent: u64,
}

impl QuiescenceLedger {
    /// Fraction of host-intervals that were quiescent (0 when none
    /// observed).
    pub fn host_fraction(&self) -> f64 {
        if self.host_intervals == 0 {
            return 0.0;
        }
        self.host_quiescent as f64 / self.host_intervals as f64
    }

    /// Fraction of VM-intervals that were quiescent (0 when none
    /// observed).
    pub fn vm_fraction(&self) -> f64 {
        if self.vm_intervals == 0 {
            return 0.0;
        }
        self.vm_quiescent as f64 / self.vm_intervals as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> EnergyLedger {
        EnergyLedger {
            hosts: vec![
                HostEnergy {
                    host: 0,
                    active_mj: 10,
                    idle_mj: 100,
                    transition_mj: 5,
                    memserver_mj: 0,
                },
                HostEnergy {
                    host: 1,
                    active_mj: 20,
                    idle_mj: 200,
                    transition_mj: 0,
                    memserver_mj: 7,
                },
            ],
            vms: vec![VmEnergy { vm: 0, share_mj: 12 }, VmEnergy { vm: 1, share_mj: 18 }],
        }
    }

    #[test]
    fn totals_are_exact_integer_sums() {
        let l = ledger();
        assert_eq!(l.hosts[0].total_mj(), 115);
        assert_eq!(l.hosts[1].total_mj(), 227);
        assert_eq!(l.total_mj(), 342);
        assert_eq!(
            l.component_mj(|h| h.active_mj)
                + l.component_mj(|h| h.idle_mj)
                + l.component_mj(|h| h.transition_mj)
                + l.component_mj(|h| h.memserver_mj),
            l.total_mj(),
            "components re-sum to the same total in any order"
        );
        assert_eq!(l.vm_total_mj(), 30);
        assert!(l.vm_total_mj() <= l.component_mj(|h| h.active_mj));
    }

    #[test]
    fn render_carries_every_component() {
        let text = ledger().render();
        assert!(text.contains("active_mj"));
        assert!(text.lines().count() == 4, "header + 2 hosts + totals");
        assert!(text.lines().last().unwrap().contains("342"));
    }

    #[test]
    fn quiescence_fractions_guard_empty_ledgers() {
        assert_eq!(QuiescenceLedger::default().host_fraction(), 0.0);
        let q = QuiescenceLedger {
            intervals: 288,
            host_intervals: 288 * 34,
            host_quiescent: 288 * 17,
            vm_intervals: 288 * 900,
            vm_quiescent: 288 * 600,
        };
        assert!((q.host_fraction() - 0.5).abs() < 1e-12);
        assert!((q.vm_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }
}
