//! Event sinks.
//!
//! A [`Subscriber`] receives every [`EventRecord`] that passes the bus's
//! level filter. Three implementations ship with the crate: a JSONL file
//! writer for offline analysis, a bounded in-memory ring for tests and
//! post-mortem inspection, and an unbounded buffer ([`BufferSink`]) that
//! parallel workers use to hand their event streams back to the
//! collecting thread in deterministic order.

use crate::event::EventRecord;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives events that passed the level filter.
pub trait Subscriber: Send {
    /// Handles one event record.
    fn record(&mut self, rec: &EventRecord);

    /// Flushes any buffered output; called when the bus is flushed or the
    /// owning `Telemetry` handle is dropped.
    fn flush(&mut self) {}
}

/// Writes one JSON object per line to an arbitrary writer.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    /// Set when a write fails, so later writes stop spamming errors.
    failed: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates a sink writing to a fresh file at `path` (truncating any
    /// existing file).
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Creates a sink appending to `path`, so several processes or runs
    /// can share one trace file.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an existing writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, failed: false }
    }
}

impl<W: Write + Send> Subscriber for JsonlSink<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.failed {
            return;
        }
        let line = rec.to_json();
        if writeln!(self.writer, "{line}").is_err() {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A bounded ring of the most recent events.
///
/// The sink half (registered with the bus) and any number of reader
/// handles share the same buffer, so tests can attach a ring, run a
/// simulation and inspect what was emitted.
#[derive(Clone)]
pub struct RingSink {
    buf: Arc<Mutex<RingBuf>>,
}

struct RingBuf {
    cap: usize,
    items: VecDeque<EventRecord>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `cap` records (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            buf: Arc::new(Mutex::new(RingBuf {
                cap: cap.max(1),
                items: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Copies out the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.buf.lock().unwrap().items.iter().cloned().collect()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().items.len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().unwrap().dropped
    }
}

impl Subscriber for RingSink {
    fn record(&mut self, rec: &EventRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.items.len() == buf.cap {
            buf.items.pop_front();
            buf.dropped += 1;
        }
        buf.items.push_back(rec.clone());
    }
}

/// An unbounded buffer for per-worker event capture and cross-thread
/// handoff.
///
/// Parallel experiment runs cannot share one file sink: workers would
/// interleave their streams in scheduling order, destroying the
/// byte-identical-per-seed guarantee. Instead each worker attaches a
/// `BufferSink` to its run-local bus, returns it with the run's result,
/// and the collecting thread — which sees results in input order —
/// [`replays`](BufferSink::replay_into) the buffers into the shared sink
/// one after another, reproducing the sequential stream exactly.
///
/// Like [`RingSink`], the registered sink half and any reader handles
/// share the same storage, and the handle is `Send + Sync` so it can
/// cross the worker-pool boundary.
#[derive(Clone, Default)]
pub struct BufferSink {
    buf: Arc<Mutex<Vec<EventRecord>>>,
}

impl BufferSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// Takes every buffered record, oldest first, leaving the buffer
    /// empty.
    pub fn drain(&self) -> Vec<EventRecord> {
        std::mem::take(&mut *self.buf.lock().unwrap())
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffer into `sink` in capture order.
    pub fn replay_into(&self, sink: &mut dyn Subscriber) {
        for rec in self.drain() {
            sink.record(&rec);
        }
    }
}

impl Subscriber for BufferSink {
    fn record(&mut self, rec: &EventRecord) {
        self.buf.lock().unwrap().push(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use oasis_sim::SimTime;

    fn rec(seq: u64) -> EventRecord {
        EventRecord {
            time: SimTime::from_secs(seq),
            seq,
            event: Event::HostSuspended { host: seq as u32 },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(3);
        let mut sink = ring.clone();
        for seq in 0..5 {
            sink.record(&rec(seq));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn buffer_replay_reconstructs_the_sequential_stream() {
        // Two "workers" capture into private buffers; replaying them in
        // input order through one JSONL sink yields the same bytes as a
        // single sequential writer would have produced.
        let workers: Vec<BufferSink> = (0..2).map(|_| BufferSink::new()).collect();
        for (w, buf) in workers.iter().enumerate() {
            let mut sink = buf.clone();
            for i in 0..3 {
                sink.record(&rec((w * 3 + i) as u64));
            }
        }
        let mut merged = JsonlSink::new(Vec::new());
        for buf in &workers {
            buf.replay_into(&mut merged);
        }
        let mut sequential = JsonlSink::new(Vec::new());
        for seq in 0..6 {
            sequential.record(&rec(seq));
        }
        assert_eq!(merged.writer, sequential.writer);
        assert!(workers.iter().all(|b| b.is_empty()), "replay drains the buffers");
    }

    #[test]
    fn telemetry_and_buffers_cross_threads() {
        // The handoff story depends on these bounds holding; assert them
        // at compile time so a regression is a build failure, not a race.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Telemetry>();
        assert_send_sync::<BufferSink>();
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        sink.flush();
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            crate::json::parse(line).expect("each line is valid JSON");
        }
    }
}
