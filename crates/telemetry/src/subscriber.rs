//! Event sinks.
//!
//! A [`Subscriber`] receives every [`EventRecord`] that passes the bus's
//! level filter. Two implementations ship with the crate: a JSONL file
//! writer for offline analysis and a bounded in-memory ring for tests
//! and post-mortem inspection.

use crate::event::EventRecord;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives events that passed the level filter.
pub trait Subscriber: Send {
    /// Handles one event record.
    fn record(&mut self, rec: &EventRecord);

    /// Flushes any buffered output; called when the bus is flushed or the
    /// owning `Telemetry` handle is dropped.
    fn flush(&mut self) {}
}

/// Writes one JSON object per line to an arbitrary writer.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    /// Set when a write fails, so later writes stop spamming errors.
    failed: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates a sink writing to a fresh file at `path` (truncating any
    /// existing file).
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Creates a sink appending to `path`, so several processes or runs
    /// can share one trace file.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an existing writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, failed: false }
    }
}

impl<W: Write + Send> Subscriber for JsonlSink<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.failed {
            return;
        }
        let line = rec.to_json();
        if writeln!(self.writer, "{line}").is_err() {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A bounded ring of the most recent events.
///
/// The sink half (registered with the bus) and any number of reader
/// handles share the same buffer, so tests can attach a ring, run a
/// simulation and inspect what was emitted.
#[derive(Clone)]
pub struct RingSink {
    buf: Arc<Mutex<RingBuf>>,
}

struct RingBuf {
    cap: usize,
    items: VecDeque<EventRecord>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `cap` records (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            buf: Arc::new(Mutex::new(RingBuf {
                cap: cap.max(1),
                items: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Copies out the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.buf.lock().unwrap().items.iter().cloned().collect()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().items.len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().unwrap().dropped
    }
}

impl Subscriber for RingSink {
    fn record(&mut self, rec: &EventRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.items.len() == buf.cap {
            buf.items.pop_front();
            buf.dropped += 1;
        }
        buf.items.push_back(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use oasis_sim::SimTime;

    fn rec(seq: u64) -> EventRecord {
        EventRecord {
            time: SimTime::from_secs(seq),
            seq,
            event: Event::HostSuspended { host: seq as u32 },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(3);
        let mut sink = ring.clone();
        for seq in 0..5 {
            sink.record(&rec(seq));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        sink.flush();
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            crate::json::parse(line).expect("each line is valid JSON");
        }
    }
}
