//! Hierarchical span profiler.
//!
//! Where [`crate::span::Span`] records flat per-name histograms, the
//! profiler maintains a *call tree*: every [`ProfileScope`] attaches to
//! the scope that was live when it started, so one run yields a tree of
//! named nodes with call counts, total and self time — both simulated
//! (deterministic) and wall-clock (the real cost of the code).
//!
//! The tree snapshot exports in three shapes:
//!
//! * a rendered text tree ([`ProfileTree::render`]);
//! * a JSON document ([`ProfileTree::to_json`]);
//! * folded-stack lines ([`ProfileTree::folded`]) in the format
//!   `flamegraph.pl` and inferno consume: `root;child;leaf <value>`.
//!
//! Determinism: node identity and order come from first-entry order,
//! which is a pure function of the simulation's control flow, so the
//! tree *shape*, call counts and simulated times are byte-identical
//! across fixed-seed runs. Wall-clock fields are not; exports take a
//! [`FoldedMetric`] / `include_wall` selector so callers that need
//! byte-stable output (CI determinism legs, `oasis report`) can omit
//! them. Wall-clock readings never enter the event stream.
//!
//! ```
//! use oasis_telemetry::{Level, Telemetry};
//! let tel = Telemetry::new(Level::Info);
//! {
//!     let day = tel.profile("run_day");
//!     {
//!         let _plan = tel.profile("planner");
//!     }
//!     day.end();
//! }
//! let tree = tel.profiler().snapshot();
//! assert_eq!(tree.roots[0].name, "run_day");
//! assert_eq!(tree.roots[0].children[0].name, "planner");
//! ```

use crate::Telemetry;
use oasis_sim::SimTime;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which per-node value a folded-stack export carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldedMetric {
    /// Self wall-clock microseconds (the flamegraph default).
    #[default]
    WallMicros,
    /// Self simulated microseconds — byte-stable across fixed-seed runs.
    SimMicros,
    /// Call counts — byte-stable across fixed-seed runs.
    Calls,
}

impl std::str::FromStr for FoldedMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wall" | "wall-us" => Ok(FoldedMetric::WallMicros),
            "sim" | "sim-us" => Ok(FoldedMetric::SimMicros),
            "calls" => Ok(FoldedMetric::Calls),
            other => Err(format!("unknown folded metric {other:?} (expected wall|sim|calls)")),
        }
    }
}

/// One node of the internal call-tree arena.
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    wall_ns: u64,
    sim_us: u64,
}

impl Node {
    fn named(name: &'static str) -> Node {
        Node { name, children: Vec::new(), calls: 0, wall_ns: 0, sim_us: 0 }
    }
}

struct ProfState {
    /// Arena; `nodes[0]` is a synthetic unnamed root that only anchors
    /// top-level scopes.
    nodes: Vec<Node>,
    /// Indices of the currently live scopes, outermost first.
    stack: Vec<usize>,
}

/// The call-tree profiler attached to a [`Telemetry`] bus.
///
/// Cheap to clone; all clones share state. Disabled profilers (the
/// [`Telemetry::disabled`] default) make every operation a no-op.
#[derive(Clone)]
pub struct Profiler {
    state: Option<Arc<Mutex<ProfState>>>,
}

impl Profiler {
    pub(crate) fn new(enabled: bool) -> Profiler {
        Profiler {
            state: enabled.then(|| {
                Arc::new(Mutex::new(ProfState { nodes: vec![Node::named("")], stack: Vec::new() }))
            }),
        }
    }

    /// True when scopes are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Opens a scope named `name` under the currently live scope and
    /// returns its node index.
    fn enter(&self, name: &'static str) -> Option<usize> {
        let state = self.state.as_ref()?;
        let mut st = state.lock().unwrap();
        let parent = st.stack.last().copied().unwrap_or(0);
        let existing =
            st.nodes[parent].children.iter().copied().find(|&c| st.nodes[c].name == name);
        let idx = existing.unwrap_or_else(|| {
            let idx = st.nodes.len();
            st.nodes.push(Node::named(name));
            st.nodes[parent].children.push(idx);
            idx
        });
        st.stack.push(idx);
        Some(idx)
    }

    /// Closes the scope at `idx`, attributing `wall_ns`/`sim_us` to it.
    ///
    /// Misnested closes (a scope closed while an inner one is still
    /// live) pop the inner scopes without attributing time to them; a
    /// close whose scope is no longer on the stack is ignored.
    fn exit(&self, idx: usize, wall_ns: u64, sim_us: u64) {
        let Some(state) = self.state.as_ref() else { return };
        let mut st = state.lock().unwrap();
        let Some(pos) = st.stack.iter().rposition(|&i| i == idx) else { return };
        st.stack.truncate(pos);
        let node = &mut st.nodes[idx];
        node.calls += 1;
        node.wall_ns += wall_ns;
        node.sim_us += sim_us;
    }

    /// Copies the current call tree out as a [`ProfileTree`].
    ///
    /// Live (unclosed) scopes appear with whatever was attributed so
    /// far; child order is first-entry order.
    pub fn snapshot(&self) -> ProfileTree {
        let Some(state) = self.state.as_ref() else {
            return ProfileTree { roots: Vec::new() };
        };
        let st = state.lock().unwrap();
        fn build(st: &ProfState, idx: usize) -> ProfileNode {
            let node = &st.nodes[idx];
            let children: Vec<ProfileNode> = node.children.iter().map(|&c| build(st, c)).collect();
            let child_wall: u64 = children.iter().map(|c| c.total_wall_ns).sum();
            let child_sim: u64 = children.iter().map(|c| c.total_sim_us).sum();
            ProfileNode {
                name: node.name.to_string(),
                calls: node.calls,
                total_wall_ns: node.wall_ns,
                self_wall_ns: node.wall_ns.saturating_sub(child_wall),
                total_sim_us: node.sim_us,
                self_sim_us: node.sim_us.saturating_sub(child_sim),
                children,
            }
        }
        let roots = st.nodes[0].children.iter().map(|&c| build(&st, c)).collect();
        ProfileTree { roots }
    }
}

/// One node of a [`ProfileTree`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Scope name.
    pub name: String,
    /// Completed passes through this scope.
    pub calls: u64,
    /// Wall-clock nanoseconds spent inside this scope, children included.
    pub total_wall_ns: u64,
    /// Wall-clock nanoseconds minus the children's totals.
    pub self_wall_ns: u64,
    /// Simulated microseconds spent inside this scope, children included.
    pub total_sim_us: u64,
    /// Simulated microseconds minus the children's totals.
    pub self_sim_us: u64,
    /// Child scopes in first-entry order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn folded_value(&self, metric: FoldedMetric) -> u64 {
        match metric {
            FoldedMetric::WallMicros => self.self_wall_ns / 1_000,
            FoldedMetric::SimMicros => self.self_sim_us,
            FoldedMetric::Calls => self.calls,
        }
    }
}

/// A deterministic snapshot of the profiler's call tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileTree {
    /// Top-level scopes in first-entry order.
    pub roots: Vec<ProfileNode>,
}

impl ProfileTree {
    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total wall-clock nanoseconds across the top-level scopes.
    pub fn total_wall_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_wall_ns).sum()
    }

    /// Sum of self wall-clock nanoseconds over every node — equals
    /// [`ProfileTree::total_wall_ns`] up to `saturating_sub` clamping.
    pub fn self_wall_ns_sum(&self) -> u64 {
        fn walk(n: &ProfileNode) -> u64 {
            n.self_wall_ns + n.children.iter().map(walk).sum::<u64>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// Every node paired with its depth, in pre-order.
    pub fn flatten(&self) -> Vec<(usize, &ProfileNode)> {
        fn walk<'t>(n: &'t ProfileNode, depth: usize, out: &mut Vec<(usize, &'t ProfileNode)>) {
            out.push((depth, n));
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// Folded-stack lines (`a;b;c <value>`), one per node in pre-order.
    ///
    /// With [`FoldedMetric::SimMicros`] or [`FoldedMetric::Calls`] the
    /// output is byte-identical across fixed-seed runs; pipe it through
    /// `flamegraph.pl` or `inferno-flamegraph` to render.
    pub fn folded(&self, metric: FoldedMetric) -> String {
        fn walk(n: &ProfileNode, path: &mut String, metric: FoldedMetric, out: &mut String) {
            let len = path.len();
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(&n.name);
            let _ = writeln!(out, "{path} {}", n.folded_value(metric));
            for c in &n.children {
                walk(c, path, metric, out);
            }
            path.truncate(len);
        }
        let mut out = String::new();
        let mut path = String::new();
        for r in &self.roots {
            walk(r, &mut path, metric, &mut out);
        }
        out
    }

    /// Renders the tree as indented text, two spaces per level.
    ///
    /// With `include_wall` false the output contains only deterministic
    /// fields (calls and simulated time).
    pub fn render(&self, include_wall: bool) -> String {
        let mut out = String::new();
        for (depth, n) in self.flatten() {
            let _ = write!(
                out,
                "{:indent$}{name:<width$} calls={calls:<8} sim_total={st}us sim_self={ss}us",
                "",
                indent = depth * 2,
                name = n.name,
                width = 28usize.saturating_sub(depth * 2),
                calls = n.calls,
                st = n.total_sim_us,
                ss = n.self_sim_us,
            );
            if include_wall {
                let _ = write!(
                    out,
                    " wall_total={:.3}ms wall_self={:.3}ms",
                    n.total_wall_ns as f64 / 1e6,
                    n.self_wall_ns as f64 / 1e6,
                );
            }
            out.push('\n');
        }
        out
    }

    /// Encodes the tree as a JSON array of node objects (field order
    /// fixed for byte-stable golden output; wall fields gated on
    /// `include_wall`).
    pub fn to_json(&self, include_wall: bool) -> String {
        fn node(n: &ProfileNode, include_wall: bool, out: &mut String) {
            let _ = write!(
                out,
                r#"{{"name":"{}","calls":{},"sim_total_us":{},"sim_self_us":{}"#,
                n.name, n.calls, n.total_sim_us, n.self_sim_us
            );
            if include_wall {
                let _ = write!(
                    out,
                    r#","wall_total_ns":{},"wall_self_ns":{}"#,
                    n.total_wall_ns, n.self_wall_ns
                );
            }
            out.push_str(",\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node(c, include_wall, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node(r, include_wall, &mut out);
        }
        out.push(']');
        out
    }
}

/// A live profiler scope; closes (and attributes its time) when dropped
/// or on [`ProfileScope::end`].
///
/// With the profiler disabled the scope carries nothing — no clock
/// reads on entry, a no-op on drop — so scopes can bracket per-host
/// inner loops without taxing profile-off runs.
#[derive(Debug)]
pub struct ProfileScope {
    live: Option<ScopeLive>,
}

#[derive(Debug)]
struct ScopeLive {
    telemetry: Telemetry,
    node: usize,
    start_sim: SimTime,
    start_wall: Instant,
}

impl ProfileScope {
    // oasis-lint: boundary(wall-clock, "profiler wall timing is observability output only; sim decisions read telemetry.now()")
    pub(crate) fn start(telemetry: &Telemetry, name: &'static str) -> ProfileScope {
        let Some(node) = telemetry.profiler().enter(name) else {
            return ProfileScope { live: None };
        };
        ProfileScope {
            live: Some(ScopeLive {
                telemetry: telemetry.clone(),
                node,
                start_sim: telemetry.now(),
                start_wall: Instant::now(),
            }),
        }
    }

    /// Closes the scope now instead of at scope exit.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let Some(live) = self.live.take() else { return };
        let wall_ns = u64::try_from(live.start_wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let sim_us = live.telemetry.now().saturating_since(live.start_sim).as_micros();
        live.telemetry.profiler().exit(live.node, wall_ns, sim_us);
    }
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn sample_tree() -> ProfileTree {
        let tel = Telemetry::new(Level::Info);
        tel.advance_to(SimTime::from_secs(0));
        let day = tel.profile("run_day");
        {
            let plan = tel.profile("planner");
            tel.advance_to(SimTime::from_secs(10));
            plan.end();
            let _fetch = tel.profile("fetch");
            tel.advance_to(SimTime::from_secs(15));
        }
        {
            let _plan = tel.profile("planner");
            tel.advance_to(SimTime::from_secs(18));
        }
        day.end();
        tel.profiler().snapshot()
    }

    #[test]
    fn scopes_nest_and_merge_by_name() {
        let tree = sample_tree();
        assert_eq!(tree.roots.len(), 1);
        let day = &tree.roots[0];
        assert_eq!(day.name, "run_day");
        assert_eq!(day.calls, 1);
        let names: Vec<&str> = day.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["planner", "fetch"], "first-entry order, merged by name");
        assert_eq!(day.children[0].calls, 2, "re-entered scopes merge");
    }

    #[test]
    fn self_time_is_total_minus_children() {
        let tree = sample_tree();
        let day = &tree.roots[0];
        assert_eq!(day.total_sim_us, 18_000_000);
        // planner: 10s + 3s; fetch: 5s; day self: 18 − 13 − 5 = 0.
        assert_eq!(day.children[0].total_sim_us, 13_000_000);
        assert_eq!(day.children[1].total_sim_us, 5_000_000);
        assert_eq!(day.self_sim_us, 0);
        let self_sum: u64 = tree.flatten().iter().map(|(_, n)| n.self_sim_us).sum();
        assert_eq!(self_sum, day.total_sim_us, "self times sum to the root total");
        assert_eq!(tree.self_wall_ns_sum(), tree.total_wall_ns());
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let tree = sample_tree();
        let folded = tree.folded(FoldedMetric::Calls);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, ["run_day 1", "run_day;planner 2", "run_day;fetch 1"]);
        let sim = tree.folded(FoldedMetric::SimMicros);
        assert!(sim.contains("run_day;planner 13000000"));
        for line in sim.lines() {
            let (_, value) = line.rsplit_once(' ').expect("stack value");
            value.parse::<u64>().expect("numeric value");
        }
    }

    #[test]
    fn render_and_json_are_deterministic_without_wall() {
        let a = sample_tree();
        let b = sample_tree();
        assert_eq!(a.render(false), b.render(false));
        assert_eq!(a.to_json(false), b.to_json(false));
        assert!(!a.to_json(false).contains("wall"));
        assert!(a.to_json(true).contains("\"wall_total_ns\""));
        crate::json::parse(&a.to_json(true)).expect("valid JSON");
    }

    #[test]
    fn disabled_profiler_is_a_no_op() {
        let tel = Telemetry::disabled();
        {
            let _scope = tel.profile("anything");
        }
        assert!(!tel.profiler().is_enabled());
        assert!(tel.profiler().snapshot().is_empty());
    }

    #[test]
    fn misnested_end_does_not_corrupt_the_stack() {
        let tel = Telemetry::new(Level::Info);
        let outer = tel.profile("outer");
        let _inner = tel.profile("inner");
        // Ending the outer scope while the inner is live pops both; the
        // inner's later drop finds its node gone from the stack and is
        // ignored.
        outer.end();
        drop(_inner);
        let tree = tel.profiler().snapshot();
        assert_eq!(tree.roots[0].calls, 1);
        assert_eq!(tree.roots[0].children[0].calls, 0, "inner never closed cleanly");
    }

    #[test]
    fn folded_metric_parses() {
        assert_eq!("wall".parse::<FoldedMetric>(), Ok(FoldedMetric::WallMicros));
        assert_eq!("sim".parse::<FoldedMetric>(), Ok(FoldedMetric::SimMicros));
        assert_eq!("calls".parse::<FoldedMetric>(), Ok(FoldedMetric::Calls));
        assert!("bogus".parse::<FoldedMetric>().is_err());
    }
}
