//! The metrics registry: labeled counters, gauges and log-bucketed
//! histograms.
//!
//! Instruments are handed out as cheap `Arc`-backed handles: a counter
//! increment is one relaxed atomic add, so hot paths fetch their handle
//! once and update it without touching the registry again. The registry
//! exports everything as Prometheus text exposition format or as a JSON
//! document.

use crate::json::escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    let mut l: Labels = pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    l
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values whose bit length is `i`, i.e. the range `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples.
///
/// Buckets double in width, so relative error on quantiles is at most 2×
/// while `record` stays O(1) with no allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    data: Arc<Mutex<HistData>>,
}

#[derive(Debug)]
struct HistData {
    counts: [u64; HISTOGRAM_BUCKETS],
    sum: u128,
    count: u64,
}

/// Index of the bucket that holds `value`.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            data: Arc::new(Mutex::new(HistData {
                counts: [0; HISTOGRAM_BUCKETS],
                sum: 0,
                count: 0,
            })),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let mut d = self.data.lock().unwrap();
        d.counts[bucket_index(value)] += 1;
        d.sum += value as u128;
        d.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.data.lock().unwrap().count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.data.lock().unwrap().sum
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let d = self.data.lock().unwrap();
        if d.count == 0 {
            return 0;
        }
        let rank = ((q * d.count as f64).ceil() as u64).clamp(1, d.count);
        let mut seen = 0u64;
        for (i, &c) in d.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Copies out the raw bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        self.data.lock().unwrap().counts
    }
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

/// Escapes a label value per the Prometheus text exposition format:
/// only `\`, `"` and newline are escaped (`\\`, `\"`, `\n`); everything
/// else — including other control characters and non-ASCII — passes
/// through verbatim. This deliberately differs from JSON string
/// escaping, which Prometheus parsers would reject (e.g. `\0`).
fn prom_label_value_into(out: &mut String, v: &str) {
    out.push('"');
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a `# HELP` text per the exposition format: `\` and newline
/// only (quotes are legal verbatim in help text).
fn prom_help_into(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

impl MetricKey {
    fn render(&self, out: &mut String) {
        out.push_str(&self.name);
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=");
                prom_label_value_into(out, v);
            }
            out.push('}');
        }
    }
}

/// The registry. Cloning shares the underlying instrument tables.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<MetricKey, Counter>>,
    gauges: Mutex<BTreeMap<MetricKey, Gauge>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Registers a `# HELP` description for metric `name`; the first
    /// description registered for a name wins. Described metrics get a
    /// HELP line before their TYPE line in [`Metrics::to_prometheus`].
    pub fn describe(&self, name: &str, help: &str) {
        self.inner.help.lock().unwrap().entry(name.to_string()).or_insert_with(|| help.to_string());
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey { name: name.to_string(), labels: labels_of(labels) };
        self.inner.counters.lock().unwrap().entry(key).or_default().clone()
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey { name: name.to_string(), labels: labels_of(labels) };
        self.inner.gauges.lock().unwrap().entry(key).or_default().clone()
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey { name: name.to_string(), labels: labels_of(labels) };
        self.inner.histograms.lock().unwrap().entry(key).or_default().clone()
    }

    /// All counters named `name`, as `(labels, value)` pairs sorted by
    /// label set.
    pub fn counters_with_name(&self, name: &str) -> Vec<(Labels, u64)> {
        self.inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, c)| (k.labels.clone(), c.get()))
            .collect()
    }

    /// All histograms named `name`, as `(labels, handle)` pairs sorted by
    /// label set.
    pub fn histograms_with_name(&self, name: &str) -> Vec<(Labels, Histogram)> {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, h)| (k.labels.clone(), h.clone()))
            .collect()
    }

    /// Renders the registry in Prometheus text exposition format.
    ///
    /// Output is sorted by metric name then label set, so it is stable
    /// across runs.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let help = self.inner.help.lock().unwrap().clone();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                if let Some(text) = help.get(name) {
                    let _ = write!(out, "# HELP {name} ");
                    prom_help_into(out, text);
                    out.push('\n');
                }
                out.push_str(&line);
                last_type_line = line;
            }
        };

        for (key, c) in self.inner.counters.lock().unwrap().iter() {
            type_line(&mut out, &key.name, "counter");
            key.render(&mut out);
            let _ = writeln!(out, " {}", c.get());
        }
        for (key, g) in self.inner.gauges.lock().unwrap().iter() {
            type_line(&mut out, &key.name, "gauge");
            key.render(&mut out);
            let _ = writeln!(out, " {}", g.get());
        }
        for (key, h) in self.inner.histograms.lock().unwrap().iter() {
            type_line(&mut out, &key.name, "histogram");
            let buckets = h.buckets();
            let mut cumulative = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let mut labels = key.labels.clone();
                labels.push(("le".to_string(), bucket_upper_bound(i).to_string()));
                labels.sort();
                let bucket_key = MetricKey { name: format!("{}_bucket", key.name), labels };
                bucket_key.render(&mut out);
                let _ = writeln!(out, " {cumulative}");
            }
            let mut inf_labels = key.labels.clone();
            inf_labels.push(("le".to_string(), "+Inf".to_string()));
            inf_labels.sort();
            MetricKey { name: format!("{}_bucket", key.name), labels: inf_labels }.render(&mut out);
            let _ = writeln!(out, " {}", h.count());
            MetricKey { name: format!("{}_sum", key.name), labels: key.labels.clone() }
                .render(&mut out);
            let _ = writeln!(out, " {}", h.sum());
            MetricKey { name: format!("{}_count", key.name), labels: key.labels.clone() }
                .render(&mut out);
            let _ = writeln!(out, " {}", h.count());
        }
        out
    }

    /// Renders the registry as a JSON document with `counters`, `gauges`
    /// and `histograms` arrays, sorted by name then label set.
    pub fn to_json(&self) -> String {
        let emit_key = |out: &mut String, key: &MetricKey| {
            out.push_str("{\"name\":");
            escape_into(out, &key.name);
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in key.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                escape_into(out, v);
            }
            out.push('}');
        };

        let mut out = String::from("{\"counters\":[");
        for (i, (key, c)) in self.inner.counters.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            emit_key(&mut out, key);
            let _ = write!(out, ",\"value\":{}}}", c.get());
        }
        out.push_str("],\"gauges\":[");
        for (i, (key, g)) in self.inner.gauges.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            emit_key(&mut out, key);
            let _ = write!(out, ",\"value\":{}}}", g.get());
        }
        out.push_str("],\"histograms\":[");
        for (i, (key, h)) in self.inner.histograms.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            emit_key(&mut out, key);
            let _ = write!(out, ",\"count\":{},\"sum\":{},\"buckets\":[", h.count(), h.sum());
            let mut first = true;
            for (b, &c) in h.buckets().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{{\"le\":{},\"count\":{c}}}", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            // The upper bound of bucket i lands in bucket i; one past it
            // lands in bucket i + 1.
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(ub + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        // Median of 1..=100 is 50, which lives in bucket [32, 63].
        assert_eq!(h.quantile(0.5), 63);
        // p99 is 99, in bucket [64, 127].
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn counters_and_gauges_share_state_across_handles() {
        let m = Metrics::new();
        let a = m.counter("x_total", &[("k", "v")]);
        let b = m.counter("x_total", &[("k", "v")]);
        a.add(3);
        b.inc();
        assert_eq!(m.counter("x_total", &[("k", "v")]).get(), 4);
        let g = m.gauge("g", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(m.gauge("g", &[]).get(), 3);
    }

    #[test]
    fn prometheus_output_has_type_lines_and_values() {
        let m = Metrics::new();
        m.counter("events_total", &[("kind", "wol_retry")]).add(2);
        m.gauge("hosts_powered", &[]).set(7);
        m.histogram("lat_us", &[]).record(5);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("events_total{kind=\"wol_retry\"} 2"));
        assert!(text.contains("# TYPE hosts_powered gauge"));
        assert!(text.contains("hosts_powered 7"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"7\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_us_sum 5"));
        assert!(text.contains("lat_us_count 1"));
    }

    #[test]
    fn prometheus_label_values_use_exposition_escaping() {
        let m = Metrics::new();
        m.counter("odd_total", &[("k", "a\\b\"c\nd\te")]).inc();
        let text = m.to_prometheus();
        // Backslash, quote and newline escaped; the tab passes through
        // verbatim (JSON-style \t would be rejected by Prometheus).
        assert!(text.contains(r#"odd_total{k="a\\b\"c\nd	e"} 1"#), "got: {text}");
    }

    #[test]
    fn help_lines_precede_type_lines_for_described_metrics() {
        let m = Metrics::new();
        m.describe("events_total", "Events by kind.\nSecond line \\ slash.");
        m.describe("events_total", "loser: first description wins");
        m.counter("events_total", &[("kind", "a")]).inc();
        m.counter("events_total", &[("kind", "b")]).inc();
        m.counter("undescribed_total", &[]).inc();
        let text = m.to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let help = lines.iter().position(|l| l.starts_with("# HELP events_total")).unwrap();
        assert_eq!(lines[help], r"# HELP events_total Events by kind.\nSecond line \\ slash.");
        assert_eq!(lines[help + 1], "# TYPE events_total counter", "HELP directly above TYPE");
        assert_eq!(
            lines.iter().filter(|l| l.starts_with("# HELP events_total")).count(),
            1,
            "one HELP per name, not per series"
        );
        assert!(!text.contains("# HELP undescribed_total"));
    }
}
