//! Structured event tracing, metrics and span timing for the Oasis stack.
//!
//! Three pillars, one handle:
//!
//! * **Event bus** — typed, [`SimTime`]-stamped [`Event`]s flow through a
//!   level filter to any number of [`Subscriber`]s ([`JsonlSink`] for
//!   files, [`RingSink`] for tests). Events carry no wall-clock data, so
//!   a fixed-seed run produces a byte-identical stream every time.
//! * **Metrics registry** — labeled [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s behind lock-cheap handles, exportable as
//!   Prometheus text or JSON ([`Metrics`]).
//! * **Span timing** — scope guards ([`Span`]) that record both simulated
//!   and wall-clock duration of hot paths into histograms.
//!
//! The [`Telemetry`] handle is `Clone` (shared `Arc` core) and threads
//! through constructors; [`Telemetry::disabled`] is a near-free no-op for
//! code paths that don't care.
//!
//! ```
//! use oasis_telemetry::{Event, Level, RingSink, Telemetry};
//! use oasis_sim::SimTime;
//!
//! let tel = Telemetry::new(Level::Info);
//! let ring = RingSink::new(16);
//! tel.attach(Box::new(ring.clone()));
//!
//! tel.advance_to(SimTime::from_secs(60));
//! tel.emit(Event::HostSuspended { host: 3 });
//! assert_eq!(ring.snapshot()[0].event, Event::HostSuspended { host: 3 });
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod subscriber;

pub use attribution::{EnergyLedger, HostEnergy, QuiescenceLedger, VmEnergy};
pub use event::{
    DecisionClass, Event, EventRecord, FaultClass, Level, MigrationKind, RecoveryKind, CLUSTER_WIDE,
};
pub use metrics::{Counter, Gauge, Histogram, Metrics};
pub use profile::{FoldedMetric, ProfileNode, ProfileScope, ProfileTree, Profiler};
pub use span::Span;
pub use subscriber::{BufferSink, JsonlSink, RingSink, Subscriber};

use oasis_sim::SimTime;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The telemetry handle: event bus + metrics registry + logical clock.
///
/// Cloning is cheap and all clones share state.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

struct Inner {
    level: Level,
    seq: AtomicU64,
    decision_seq: AtomicU64,
    now_us: AtomicU64,
    subscribers: Mutex<Vec<Box<dyn Subscriber>>>,
    metrics: Metrics,
    profiler: Profiler,
}

impl Inner {
    fn with_level(level: Level) -> Self {
        let metrics = Metrics::new();
        metrics.describe("telemetry_events_total", "Events that passed the level filter, by kind.");
        metrics.describe("span_sim_us", "Span duration in simulated microseconds, by span name.");
        metrics.describe("span_wall_ns", "Span duration in wall-clock nanoseconds, by span name.");
        Inner {
            level,
            seq: AtomicU64::new(0),
            decision_seq: AtomicU64::new(0),
            now_us: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            metrics,
            profiler: Profiler::new(level != Level::Off),
        }
    }
}

impl Default for Inner {
    fn default() -> Self {
        Inner::with_level(Level::Off)
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("level", &self.inner.level)
            .field("events", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// Creates an enabled bus filtering at `level`, with no subscribers.
    pub fn new(level: Level) -> Self {
        Telemetry { inner: Arc::new(Inner::with_level(level)) }
    }

    /// Creates a disabled bus: events vanish, spans and instruments are
    /// no-ops. This is the default wherever telemetry threads through.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// True unless the filter level is [`Level::Off`].
    pub fn is_enabled(&self) -> bool {
        self.inner.level != Level::Off
    }

    /// The configured filter level.
    pub fn level(&self) -> Level {
        self.inner.level
    }

    /// Registers a subscriber; it receives every event that passes the
    /// level filter from now on.
    pub fn attach(&self, sub: Box<dyn Subscriber>) {
        self.inner.subscribers.lock().unwrap().push(sub);
    }

    /// Advances the logical clock to `t` (monotonic: earlier values are
    /// ignored). Simulation drivers call this as simulated time advances
    /// so that components without a clock of their own can still emit
    /// correctly-stamped events via [`Telemetry::emit`].
    pub fn advance_to(&self, t: SimTime) {
        self.inner.now_us.fetch_max(t.as_micros(), Ordering::Relaxed);
    }

    /// Current logical clock reading.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.inner.now_us.load(Ordering::Relaxed))
    }

    /// Emits `event` stamped with the logical clock.
    pub fn emit(&self, event: Event) {
        // Fast path for filtered events: stamping with `now()` and then
        // advancing the clock to that same reading is a no-op, so a
        // level-filtered emit can return before touching the clock
        // atomics at all. This keeps disabled-telemetry simulation runs
        // free of per-event synchronization.
        if !self.inner.level.allows(event.level()) {
            return;
        }
        self.emit_at(self.now(), event);
    }

    /// Emits `event` stamped with an explicit time, which also advances
    /// the logical clock.
    pub fn emit_at(&self, time: SimTime, event: Event) {
        self.advance_to(time);
        if !self.inner.level.allows(event.level()) {
            return;
        }
        self.inner.metrics.counter("telemetry_events_total", &[("kind", event.kind())]).inc();
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let record = EventRecord { time, seq, event };
        for sub in self.inner.subscribers.lock().unwrap().iter_mut() {
            sub.record(&record);
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Starts a [`Span`] named `name`; it records on drop.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self, name)
    }

    /// Starts a hierarchical profiler scope named `name`; it nests under
    /// the scope that is live when it starts and closes on drop.
    pub fn profile(&self, name: &'static str) -> ProfileScope {
        ProfileScope::start(self, name)
    }

    /// The call-tree profiler attached to this bus (disabled when the
    /// bus is disabled).
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// Allocates the next planner/recovery decision id.
    ///
    /// Ids are allocated unconditionally (even on a disabled bus) so a
    /// run's decision numbering does not depend on whether tracing is
    /// attached — the byte-identical-per-seed guarantee extends to the
    /// audit trail.
    pub fn next_decision_id(&self) -> u64 {
        self.inner.decision_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Flushes every subscriber (e.g. buffered file sinks).
    pub fn flush(&self) {
        for sub in self.inner.subscribers.lock().unwrap().iter_mut() {
            sub.flush();
        }
    }

    /// Snapshot of event counts and span timings, for attaching to
    /// simulation reports.
    pub fn summary(&self) -> TelemetrySummary {
        let m = self.metrics();
        let events_by_kind: Vec<(String, u64)> = m
            .counters_with_name("telemetry_events_total")
            .into_iter()
            .map(|(labels, v)| {
                let kind = labels
                    .iter()
                    .find(|(k, _)| k == "kind")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                (kind, v)
            })
            .collect();
        let events_total = events_by_kind.iter().map(|(_, v)| v).sum();
        let mut spans: Vec<SpanSummary> = m
            .histograms_with_name("span_sim_us")
            .into_iter()
            .map(|(labels, sim)| {
                let name = labels
                    .iter()
                    .find(|(k, _)| k == "span")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                let wall = m.histogram("span_wall_ns", &[("span", &name)]);
                SpanSummary {
                    count: sim.count(),
                    sim_us_p50: sim.quantile(0.5),
                    sim_us_p99: sim.quantile(0.99),
                    wall_ns_p50: wall.quantile(0.5),
                    wall_ns_p99: wall.quantile(0.99),
                    name,
                }
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetrySummary { events_total, events_by_kind, spans }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for sub in self.subscribers.get_mut().unwrap().iter_mut() {
            sub.flush();
        }
    }
}

/// Timing digest for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Completed passes.
    pub count: u64,
    /// Median simulated duration (µs, bucket upper bound).
    pub sim_us_p50: u64,
    /// p99 simulated duration (µs, bucket upper bound).
    pub sim_us_p99: u64,
    /// Median wall-clock duration (ns, bucket upper bound).
    pub wall_ns_p50: u64,
    /// p99 wall-clock duration (ns, bucket upper bound).
    pub wall_ns_p99: u64,
}

/// Event counts and span timings captured at the end of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Events that passed the filter, all kinds.
    pub events_total: u64,
    /// Per-kind event counts, sorted by kind.
    pub events_by_kind: Vec<(String, u64)>,
    /// Per-span timing digests, sorted by name.
    pub spans: Vec<SpanSummary>,
}

impl std::fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "telemetry: {} events", self.events_total)?;
        for (kind, n) in &self.events_by_kind {
            writeln!(f, "  event {kind:<24} {n}")?;
        }
        for s in &self.spans {
            let mut line = format!(
                "  span  {:<24} n={} sim_p50<={}us sim_p99<={}us",
                s.name, s.count, s.sim_us_p50, s.sim_us_p99
            );
            let _ = write!(line, " wall_p50<={}ns wall_p99<={}ns", s.wall_ns_p50, s.wall_ns_p99);
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bus_drops_everything() {
        let tel = Telemetry::disabled();
        let ring = RingSink::new(8);
        tel.attach(Box::new(ring.clone()));
        tel.emit(Event::HostSuspended { host: 1 });
        assert!(ring.is_empty());
        assert_eq!(tel.summary().events_total, 0);
    }

    #[test]
    fn level_filter_applies_per_event() {
        let tel = Telemetry::new(Level::Info);
        let ring = RingSink::new(8);
        tel.attach(Box::new(ring.clone()));
        tel.emit(Event::HostSuspended { host: 1 }); // info: passes
        tel.emit(Event::PageFaultFetched { vm: 1, page: 2 }); // debug: dropped
        tel.emit(Event::WolRetry { host: 1, attempt: 1 }); // warn: passes
        assert_eq!(ring.len(), 2);
        let summary = tel.summary();
        assert_eq!(summary.events_total, 2);
        assert!(summary.events_by_kind.iter().any(|(k, n)| k == "wol_retry" && *n == 1));
    }

    #[test]
    fn sequence_numbers_and_clock_are_monotonic() {
        let tel = Telemetry::new(Level::Debug);
        let ring = RingSink::new(8);
        tel.attach(Box::new(ring.clone()));
        tel.emit_at(SimTime::from_secs(5), Event::HostSuspended { host: 1 });
        tel.emit(Event::HostResumed { host: 1 });
        tel.emit_at(SimTime::from_secs(2), Event::HostSuspended { host: 2 });
        let snap = ring.snapshot();
        assert_eq!(snap.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        // The logical clock never runs backwards.
        assert_eq!(snap[1].time, SimTime::from_secs(5));
        assert_eq!(tel.now(), SimTime::from_secs(5));
    }
}
