//! Structured simulation events.
//!
//! Events are typed, stamped with [`SimTime`] and a per-run sequence
//! number, and carry only raw numeric ids (`u32`/`u64`) so this crate
//! depends on nothing but `oasis-sim`. Wall-clock time never appears in
//! an event: with a fixed seed the encoded stream is byte-identical
//! across runs and platforms, which the golden-stream test relies on.

use crate::json::escape_into;
use oasis_sim::SimTime;
use std::fmt::Write as _;

/// Severity attached to every event kind; the bus drops events below the
/// configured level before they reach any subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Emit nothing.
    Off,
    /// Unexpected-but-survivable conditions (WoL retries, capacity
    /// exhaustion).
    Warn,
    /// The main lifecycle narrative: migrations, host power transitions,
    /// policy decisions.
    Info,
    /// High-volume detail: per-interval markers, individual page fetches.
    Debug,
}

impl Level {
    /// True when an event at `event_level` passes a filter set to `self`.
    pub fn allows(self, event_level: Level) -> bool {
        event_level != Level::Off && event_level <= self
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Level::Off),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level {other:?} (expected off|warn|info|debug)")),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

/// Which migration mechanism an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// Whole-memory pre-copy live migration.
    Full,
    /// Working-set-only partial migration (§4 of the paper).
    Partial,
    /// Post-copy reintegration of a partial VM back to its home.
    Return,
    /// A full/partial pair exchanged between two hosts.
    Exchange,
}

impl MigrationKind {
    fn as_str(self) -> &'static str {
        match self {
            MigrationKind::Full => "full",
            MigrationKind::Partial => "partial",
            MigrationKind::Return => "return",
            MigrationKind::Exchange => "exchange",
        }
    }
}

/// Which injected fault class an event refers to.
///
/// Mirrors `oasis_faults::FaultSchedule`'s taxonomy; defined here (like
/// [`MigrationKind`]) so emitting crates need no extra dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A sleeping host ignores wake requests for the fault window.
    WakeFailure,
    /// An S3 resume hangs for extra seconds before completing.
    WakeDelay,
    /// A home host's memory-server daemon crashes (restarts when the
    /// window closes).
    MemServerCrash,
    /// Rack-network degradation inflating fetch and migration latency.
    LinkDegraded,
    /// Migrations started inside the window stall and need recovery.
    MigrationStall,
}

impl FaultClass {
    /// Stable snake_case tag used in encodings.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::WakeFailure => "wake_failure",
            FaultClass::WakeDelay => "wake_delay",
            FaultClass::MemServerCrash => "memserver_crash",
            FaultClass::LinkDegraded => "link_degraded",
            FaultClass::MigrationStall => "migration_stall",
        }
    }
}

/// Which recovery policy an [`Event::RecoveryApplied`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A failed wake succeeded after bounded exponential backoff.
    RetryWake,
    /// A partial VM was promoted in place because its home refused to
    /// wake (or its memory server was down).
    FallbackPromote,
    /// An orphaned partial VM was fully returned to (or re-placed near)
    /// its home.
    Rehome,
    /// A stalled migration completed after cancel-and-retry.
    RetryMigration,
    /// A migration was abandoned; the VM stays where it was.
    AbortMigration,
}

impl RecoveryKind {
    /// Stable snake_case tag used in encodings.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryKind::RetryWake => "retry_wake",
            RecoveryKind::FallbackPromote => "fallback_promote",
            RecoveryKind::Rehome => "rehome",
            RecoveryKind::RetryMigration => "retry_migration",
            RecoveryKind::AbortMigration => "abort_migration",
        }
    }
}

/// What kind of choice a planner/recovery [`Event::DecisionMade`]
/// records.
///
/// Every entry corresponds to one spot in the manager or simulator
/// where control flow commits to an action; the audit trail carries the
/// inputs that drove the choice plus a stable decision id threaded into
/// the downstream migration/recovery events it causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionClass {
    /// The consolidation planner scheduled a vacate/drain migration.
    Consolidate,
    /// The planner scheduled a FulltoPartial exchange.
    Exchange,
    /// An activating partial VM is promoted in place.
    PromoteInPlace,
    /// An activating partial VM relocates to another powered host
    /// (NewHome).
    Relocate,
    /// An activating partial VM wakes its home; all VMs homed there
    /// return.
    ReturnHome,
    /// Recovery: a partial VM promoted in place because its home is
    /// unreachable.
    FallbackPromote,
    /// Recovery: a VM shed to a fallback host after capacity exhaustion
    /// with an unwakeable home.
    Shed,
    /// Recovery: a stalled migration entered cancel-and-retry.
    Stall,
}

impl DecisionClass {
    /// Stable snake_case tag used in encodings.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionClass::Consolidate => "consolidate",
            DecisionClass::Exchange => "exchange",
            DecisionClass::PromoteInPlace => "promote_in_place",
            DecisionClass::Relocate => "relocate",
            DecisionClass::ReturnHome => "return_home",
            DecisionClass::FallbackPromote => "fallback_promote",
            DecisionClass::Shed => "shed",
            DecisionClass::Stall => "stall",
        }
    }
}

/// Sentinel id used in fault events whose target is the whole cluster
/// (e.g. a rack-wide link degradation) rather than one host or VM.
pub const CLUSTER_WIDE: u32 = u32::MAX;

/// A structured simulation event.
///
/// Variants carry raw ids rather than domain types so every crate in the
/// workspace can emit them without new dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A trace interval began; `active` is the number of active VMs.
    IntervalStarted {
        /// Zero-based five-minute interval index.
        interval: u32,
        /// VMs active during this interval.
        active: u32,
    },
    /// The manager produced a plan for the current interval.
    PolicyDecision {
        /// Zero-based five-minute interval index.
        interval: u32,
        /// Number of planned actions.
        actions: u32,
    },
    /// The planner or a recovery path committed one choice.
    ///
    /// The `decision` id reappears on every migration/recovery event
    /// the choice causes, so downstream effects (a resume-latency SLA
    /// violation, an aborted migration) resolve back to the decision —
    /// and its recorded inputs — that caused them.
    DecisionMade {
        /// Stable per-run decision id (allocated monotonically).
        decision: u64,
        /// What kind of choice was committed.
        class: DecisionClass,
        /// VM the choice concerns, or [`CLUSTER_WIDE`] when host-scoped.
        vm: u32,
        /// Destination or home host, or [`CLUSTER_WIDE`] when none.
        target: u32,
        /// Size of the candidate set the chooser examined.
        candidates: u32,
    },
    /// Round-level audit record for one consolidation planning pass:
    /// the aggregate inputs and the net-energy verdict behind the
    /// interval's [`Event::DecisionMade`] batch.
    PlanAudit {
        /// Zero-based five-minute interval index.
        interval: u32,
        /// Policy that planned (`PolicyKind` display form).
        policy: String,
        /// First decision id of the round; the round's action decisions
        /// are `decision_base .. decision_base + actions`.
        decision_base: u64,
        /// Planned actions emitted this round.
        actions: u32,
        /// FulltoPartial exchanges in the plan.
        exchanges: u32,
        /// Home hosts the vacate pass emptied.
        vacated: u32,
        /// Consolidation hosts the plan wakes.
        woken: u32,
        /// Net-energy verdict for the vacate pass.
        approved: bool,
        /// Consolidation hosts the drain pass emptied.
        drained: u32,
        /// Total candidate-set sizes examined across placements.
        candidates: u32,
        /// Aggregate resident VM demand across the view, MiB.
        demand_mib: u64,
    },
    /// A migration began.
    MigrationStarted {
        /// VM being moved.
        vm: u32,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Mechanism used.
        kind: MigrationKind,
        /// Id of the [`Event::DecisionMade`] that caused the migration.
        decision: u64,
    },
    /// A migration finished.
    MigrationCompleted {
        /// VM that moved.
        vm: u32,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Mechanism used.
        kind: MigrationKind,
        /// Bytes moved over the wire.
        moved_bytes: u64,
        /// Guest-visible downtime in microseconds.
        downtime_us: u64,
        /// Id of the [`Event::DecisionMade`] that caused the migration.
        decision: u64,
    },
    /// A host entered ACPI S3.
    HostSuspended {
        /// Host that suspended.
        host: u32,
    },
    /// A host woke from S3 and is serving again.
    HostResumed {
        /// Host that resumed.
        host: u32,
    },
    /// A Wake-on-LAN packet went unanswered and was re-sent.
    WolRetry {
        /// Host being woken.
        host: u32,
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// The memory server satisfied a demand fetch for a partial VM.
    PageFaultFetched {
        /// Faulting VM.
        vm: u32,
        /// Guest page number.
        page: u64,
    },
    /// A consolidation host ran out of frames while growing working sets.
    CapacityExhausted {
        /// Host whose allocator was exhausted.
        host: u32,
    },
    /// A scheduled fault became visible to the simulation.
    FaultInjected {
        /// Which fault class fired.
        fault: FaultClass,
        /// Affected host, or [`CLUSTER_WIDE`].
        host: u32,
    },
    /// A wake attempt against a faulted host failed and will back off.
    WakeFailed {
        /// Host that refused to wake.
        host: u32,
        /// 1-based recovery attempt.
        attempt: u32,
    },
    /// Every wake retry was exhausted; the host stays asleep.
    WakeAbandoned {
        /// Host abandoned as unwakeable for now.
        host: u32,
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// A memory-server daemon crashed; its pages are unreachable.
    MemServerCrashed {
        /// Home host whose memory server died.
        host: u32,
    },
    /// A crashed memory-server daemon restarted and serves again.
    MemServerRestarted {
        /// Home host whose memory server recovered.
        host: u32,
    },
    /// An in-flight migration stalled and entered cancel-and-retry.
    MigrationStalled {
        /// VM being moved.
        vm: u32,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Id of the decision whose migration stalled.
        decision: u64,
    },
    /// A stalled migration was abandoned after bounded retries.
    MigrationAborted {
        /// VM that stays at the source.
        vm: u32,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Retry attempts spent before aborting.
        attempts: u32,
        /// Id of the decision whose migration was abandoned.
        decision: u64,
    },
    /// A recovery policy resolved a fault.
    RecoveryApplied {
        /// Which policy fired.
        action: RecoveryKind,
        /// The VM or host the action applied to (see `action`).
        target: u32,
        /// Id of the decision the recovery belongs to.
        decision: u64,
    },
    /// One benchmark measurement, routed from the bench reporter.
    BenchSample {
        /// Benchmark name.
        name: String,
        /// Mean nanoseconds per iteration.
        ns_per_iter: u64,
        /// Iterations measured.
        iters: u64,
    },
    /// Free-form annotation (bench banners, harness notes).
    Note {
        /// The message text.
        text: String,
    },
}

impl Event {
    /// Stable snake_case kind tag used in encodings and metrics labels.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::IntervalStarted { .. } => "interval_started",
            Event::PolicyDecision { .. } => "policy_decision",
            Event::DecisionMade { .. } => "decision_made",
            Event::PlanAudit { .. } => "plan_audit",
            Event::MigrationStarted { .. } => "migration_started",
            Event::MigrationCompleted { .. } => "migration_completed",
            Event::HostSuspended { .. } => "host_suspended",
            Event::HostResumed { .. } => "host_resumed",
            Event::WolRetry { .. } => "wol_retry",
            Event::PageFaultFetched { .. } => "page_fault_fetched",
            Event::CapacityExhausted { .. } => "capacity_exhausted",
            Event::FaultInjected { .. } => "fault_injected",
            Event::WakeFailed { .. } => "wake_failed",
            Event::WakeAbandoned { .. } => "wake_abandoned",
            Event::MemServerCrashed { .. } => "memserver_crashed",
            Event::MemServerRestarted { .. } => "memserver_restarted",
            Event::MigrationStalled { .. } => "migration_stalled",
            Event::MigrationAborted { .. } => "migration_aborted",
            Event::RecoveryApplied { .. } => "recovery_applied",
            Event::BenchSample { .. } => "bench_sample",
            Event::Note { .. } => "note",
        }
    }

    /// Severity of this event kind.
    pub fn level(&self) -> Level {
        match self {
            Event::WolRetry { .. }
            | Event::CapacityExhausted { .. }
            | Event::FaultInjected { .. }
            | Event::WakeFailed { .. }
            | Event::WakeAbandoned { .. }
            | Event::MemServerCrashed { .. }
            | Event::MigrationStalled { .. }
            | Event::MigrationAborted { .. } => Level::Warn,
            Event::IntervalStarted { .. } | Event::PageFaultFetched { .. } => Level::Debug,
            _ => Level::Info,
        }
    }

    fn encode_fields(&self, out: &mut String) {
        match self {
            Event::IntervalStarted { interval, active } => {
                let _ = write!(out, r#","interval":{interval},"active":{active}"#);
            }
            Event::PolicyDecision { interval, actions } => {
                let _ = write!(out, r#","interval":{interval},"actions":{actions}"#);
            }
            Event::DecisionMade { decision, class, vm, target, candidates } => {
                let _ = write!(
                    out,
                    r#","decision":{decision},"class":"{}","vm":{vm},"target":{target},"candidates":{candidates}"#,
                    class.as_str()
                );
            }
            Event::PlanAudit {
                interval,
                policy,
                decision_base,
                actions,
                exchanges,
                vacated,
                woken,
                approved,
                drained,
                candidates,
                demand_mib,
            } => {
                let _ = write!(out, r#","interval":{interval},"policy":"#);
                escape_into(out, policy);
                let _ = write!(
                    out,
                    r#","decision_base":{decision_base},"actions":{actions},"exchanges":{exchanges},"vacated":{vacated},"woken":{woken},"approved":{approved},"drained":{drained},"candidates":{candidates},"demand_mib":{demand_mib}"#
                );
            }
            Event::MigrationStarted { vm, from, to, kind, decision } => {
                let _ = write!(
                    out,
                    r#","vm":{vm},"from":{from},"to":{to},"mig":"{}","decision":{decision}"#,
                    kind.as_str()
                );
            }
            Event::MigrationCompleted {
                vm,
                from,
                to,
                kind,
                moved_bytes,
                downtime_us,
                decision,
            } => {
                let _ = write!(
                    out,
                    r#","vm":{vm},"from":{from},"to":{to},"mig":"{}","moved_bytes":{moved_bytes},"downtime_us":{downtime_us},"decision":{decision}"#,
                    kind.as_str()
                );
            }
            Event::HostSuspended { host } | Event::HostResumed { host } => {
                let _ = write!(out, r#","host":{host}"#);
            }
            Event::WolRetry { host, attempt } => {
                let _ = write!(out, r#","host":{host},"attempt":{attempt}"#);
            }
            Event::PageFaultFetched { vm, page } => {
                let _ = write!(out, r#","vm":{vm},"page":{page}"#);
            }
            Event::CapacityExhausted { host } => {
                let _ = write!(out, r#","host":{host}"#);
            }
            Event::FaultInjected { fault, host } => {
                let _ = write!(out, r#","fault":"{}","host":{host}"#, fault.as_str());
            }
            Event::WakeFailed { host, attempt } => {
                let _ = write!(out, r#","host":{host},"attempt":{attempt}"#);
            }
            Event::WakeAbandoned { host, attempts } => {
                let _ = write!(out, r#","host":{host},"attempts":{attempts}"#);
            }
            Event::MemServerCrashed { host } | Event::MemServerRestarted { host } => {
                let _ = write!(out, r#","host":{host}"#);
            }
            Event::MigrationStalled { vm, from, to, decision } => {
                let _ = write!(out, r#","vm":{vm},"from":{from},"to":{to},"decision":{decision}"#);
            }
            Event::MigrationAborted { vm, from, to, attempts, decision } => {
                let _ = write!(
                    out,
                    r#","vm":{vm},"from":{from},"to":{to},"attempts":{attempts},"decision":{decision}"#
                );
            }
            Event::RecoveryApplied { action, target, decision } => {
                let _ = write!(
                    out,
                    r#","action":"{}","target":{target},"decision":{decision}"#,
                    action.as_str()
                );
            }
            Event::BenchSample { name, ns_per_iter, iters } => {
                out.push_str(",\"name\":");
                escape_into(out, name);
                let _ = write!(out, r#","ns_per_iter":{ns_per_iter},"iters":{iters}"#);
            }
            Event::Note { text } => {
                out.push_str(",\"text\":");
                escape_into(out, text);
            }
        }
    }
}

/// An [`Event`] plus its bus-assigned timestamp and sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulated time at which the event was emitted.
    pub time: SimTime,
    /// Monotonic per-bus sequence number, starting at 0.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl EventRecord {
    /// Encodes the record as a single JSON object (no trailing newline).
    ///
    /// The field order is fixed (`t`, `seq`, `kind`, payload fields) so
    /// the output is byte-stable for golden tests.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"t":{},"seq":{},"kind":"{}""#,
            self.time.as_micros(),
            self.seq,
            self.event.kind()
        );
        self.event.encode_fields(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filtering_is_ordered() {
        assert!(Level::Debug.allows(Level::Info));
        assert!(Level::Info.allows(Level::Warn));
        assert!(!Level::Warn.allows(Level::Info));
        assert!(!Level::Off.allows(Level::Warn));
        assert!(!Level::Debug.allows(Level::Off));
    }

    #[test]
    fn fault_event_encodings_are_stable() {
        let rec = EventRecord {
            time: SimTime::from_secs(60),
            seq: 7,
            event: Event::FaultInjected { fault: FaultClass::MemServerCrash, host: 3 },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t":60000000,"seq":7,"kind":"fault_injected","fault":"memserver_crash","host":3}"#
        );
        let rec = EventRecord {
            time: SimTime::ZERO,
            seq: 0,
            event: Event::RecoveryApplied {
                action: RecoveryKind::RetryWake,
                target: 9,
                decision: 41,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t":0,"seq":0,"kind":"recovery_applied","action":"retry_wake","target":9,"decision":41}"#
        );
    }

    #[test]
    fn decision_event_encodings_are_stable() {
        let rec = EventRecord {
            time: SimTime::from_secs(300),
            seq: 12,
            event: Event::DecisionMade {
                decision: 7,
                class: DecisionClass::Consolidate,
                vm: 42,
                target: 33,
                candidates: 3,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t":300000000,"seq":12,"kind":"decision_made","decision":7,"class":"consolidate","vm":42,"target":33,"candidates":3}"#
        );
        let rec = EventRecord {
            time: SimTime::from_secs(300),
            seq: 13,
            event: Event::PlanAudit {
                interval: 1,
                policy: "FulltoPartial".to_string(),
                decision_base: 7,
                actions: 12,
                exchanges: 2,
                vacated: 4,
                woken: 1,
                approved: true,
                drained: 0,
                candidates: 31,
                demand_mib: 18_200,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t":300000000,"seq":13,"kind":"plan_audit","interval":1,"policy":"FulltoPartial","decision_base":7,"actions":12,"exchanges":2,"vacated":4,"woken":1,"approved":true,"drained":0,"candidates":31,"demand_mib":18200}"#
        );
        let rec = EventRecord {
            time: SimTime::from_secs(301),
            seq: 14,
            event: Event::MigrationStarted {
                vm: 42,
                from: 0,
                to: 33,
                kind: MigrationKind::Partial,
                decision: 7,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"t":301000000,"seq":14,"kind":"migration_started","vm":42,"from":0,"to":33,"mig":"partial","decision":7}"#
        );
    }

    #[test]
    fn fault_events_warn_and_recoveries_inform() {
        assert_eq!(Event::WakeAbandoned { host: 1, attempts: 6 }.level(), Level::Warn);
        assert_eq!(
            Event::MigrationStalled { vm: 1, from: 0, to: 2, decision: 0 }.level(),
            Level::Warn
        );
        assert_eq!(Event::MemServerRestarted { host: 1 }.level(), Level::Info);
        assert_eq!(
            Event::RecoveryApplied { action: RecoveryKind::Rehome, target: 1, decision: 0 }.level(),
            Level::Info
        );
    }

    #[test]
    fn kind_tags_are_distinct() {
        let events = [
            Event::IntervalStarted { interval: 0, active: 0 },
            Event::PolicyDecision { interval: 0, actions: 0 },
            Event::DecisionMade {
                decision: 0,
                class: DecisionClass::Consolidate,
                vm: 0,
                target: 0,
                candidates: 0,
            },
            Event::PlanAudit {
                interval: 0,
                policy: String::new(),
                decision_base: 0,
                actions: 0,
                exchanges: 0,
                vacated: 0,
                woken: 0,
                approved: false,
                drained: 0,
                candidates: 0,
                demand_mib: 0,
            },
            Event::MigrationStarted {
                vm: 0,
                from: 0,
                to: 0,
                kind: MigrationKind::Full,
                decision: 0,
            },
            Event::MigrationCompleted {
                vm: 0,
                from: 0,
                to: 0,
                kind: MigrationKind::Partial,
                moved_bytes: 0,
                downtime_us: 0,
                decision: 0,
            },
            Event::HostSuspended { host: 0 },
            Event::HostResumed { host: 0 },
            Event::WolRetry { host: 0, attempt: 1 },
            Event::PageFaultFetched { vm: 0, page: 0 },
            Event::CapacityExhausted { host: 0 },
            Event::FaultInjected { fault: FaultClass::WakeFailure, host: 0 },
            Event::WakeFailed { host: 0, attempt: 1 },
            Event::WakeAbandoned { host: 0, attempts: 6 },
            Event::MemServerCrashed { host: 0 },
            Event::MemServerRestarted { host: 0 },
            Event::MigrationStalled { vm: 0, from: 0, to: 0, decision: 0 },
            Event::MigrationAborted { vm: 0, from: 0, to: 0, attempts: 3, decision: 0 },
            Event::RecoveryApplied { action: RecoveryKind::Rehome, target: 0, decision: 0 },
            Event::BenchSample { name: String::new(), ns_per_iter: 0, iters: 0 },
            Event::Note { text: String::new() },
        ];
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
