//! Minimal JSON support: string escaping for the encoders and a small
//! recursive-descent parser used by tests and export round-trips.
//!
//! The workspace is dependency-free by design, so rather than pulling in
//! `serde` this module implements exactly the subset the telemetry
//! formats need: objects, arrays, strings, integers, floats, booleans
//! and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal, quotes included.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64`, which is exact for the `u64` ranges
    /// telemetry emits in practice (metrics values fit in 53 bits in the
    /// tests that parse them back).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the object map if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
    }
}
