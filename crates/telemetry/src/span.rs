//! Scoped span timing.
//!
//! A [`Span`] measures one pass through a hot path and records two
//! durations into the metrics registry when it ends:
//!
//! * `span_sim_us{span=...}` — elapsed *simulated* microseconds, taken
//!   from the bus's logical clock. Deterministic across runs.
//! * `span_wall_ns{span=...}` — elapsed *wall-clock* nanoseconds, the
//!   real cost of running the code. Never fed into the event stream, so
//!   determinism of the trace is preserved.
//!
//! Spans end when dropped, so the idiomatic use is a scope guard:
//!
//! ```
//! use oasis_telemetry::{Level, Telemetry};
//! let tel = Telemetry::new(Level::Info);
//! {
//!     let _span = tel.span("manager_plan");
//!     // ... hot path ...
//! }
//! assert_eq!(tel.metrics().histograms_with_name("span_wall_ns").len(), 1);
//! ```

use crate::metrics::Histogram;
use crate::Telemetry;
use oasis_sim::SimTime;
use std::time::Instant;

/// A live span; records its durations when dropped (or on [`Span::end`]).
///
/// On a disabled bus the span carries nothing: starting it reads no
/// clock (logical or wall) and dropping it is a no-op, so guards can
/// stay on hot paths without taxing telemetry-off runs.
#[derive(Debug)]
pub struct Span {
    live: Option<SpanLive>,
}

#[derive(Debug)]
struct SpanLive {
    sim_hist: Histogram,
    wall_hist: Histogram,
    start_sim: SimTime,
    start_wall: Instant,
    telemetry: Telemetry,
}

impl Span {
    // oasis-lint: boundary(wall-clock, "span wall timing feeds telemetry histograms only; sim decisions read telemetry.now()")
    pub(crate) fn start(telemetry: &Telemetry, name: &'static str) -> Span {
        if !telemetry.is_enabled() {
            return Span { live: None };
        }
        let m = telemetry.metrics();
        Span {
            live: Some(SpanLive {
                sim_hist: m.histogram("span_sim_us", &[("span", name)]),
                wall_hist: m.histogram("span_wall_ns", &[("span", name)]),
                start_sim: telemetry.now(),
                start_wall: Instant::now(),
                telemetry: telemetry.clone(),
            }),
        }
    }

    /// Ends the span now instead of at scope exit.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let Some(live) = self.live.take() else { return };
        let elapsed = live.telemetry.now().saturating_since(live.start_sim);
        live.sim_hist.record(elapsed.as_micros());
        let ns = live.start_wall.elapsed().as_nanos();
        live.wall_hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use crate::{Level, Telemetry};
    use oasis_sim::SimTime;

    #[test]
    fn span_records_sim_and_wall_durations() {
        let tel = Telemetry::new(Level::Info);
        tel.advance_to(SimTime::from_secs(10));
        {
            let _span = tel.span("plan");
            tel.advance_to(SimTime::from_secs(13));
        }
        let sim = tel.metrics().histogram("span_sim_us", &[("span", "plan")]);
        assert_eq!(sim.count(), 1);
        assert_eq!(sim.sum(), 3_000_000);
        let wall = tel.metrics().histogram("span_wall_ns", &[("span", "plan")]);
        assert_eq!(wall.count(), 1);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _span = tel.span("plan");
        }
        assert!(tel.metrics().histograms_with_name("span_wall_ns").is_empty());
    }
}
