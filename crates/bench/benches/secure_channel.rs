//! Criterion benches for the §4.3 secure record layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oasis_net::secure::{open, seal};
use oasis_sim::SimRng;
use std::hint::black_box;

fn bench_seal_open(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let mut rng = SimRng::new(1);
    let page: Vec<u8> = (0..4_096).map(|_| rng.next_u64() as u8).collect();

    let mut group = c.benchmark_group("secure_page");
    group.throughput(Throughput::Bytes(page.len() as u64));
    group.bench_function("seal_4k", |b| {
        b.iter(|| seal(&key, &nonce, b"pfn", black_box(&page)))
    });
    let sealed = seal(&key, &nonce, b"pfn", &page);
    group.bench_function("open_4k", |b| {
        b.iter(|| open(&key, &nonce, b"pfn", black_box(&sealed)).expect("valid"))
    });
    group.finish();
}

fn bench_handshake(c: &mut Criterion) {
    use oasis_net::secure::{SessionBroker, TrustAnchor};
    c.bench_function("secure_handshake", |b| {
        let mut rng = SimRng::new(2);
        let anchor = TrustAnchor::new(&mut rng);
        let client =
            oasis_net::secure::handshake::Identity::generate("memtap", &anchor, &mut rng);
        let server =
            oasis_net::secure::handshake::Identity::generate("memserver", &anchor, &mut rng);
        let broker = SessionBroker::new(anchor);
        b.iter(|| broker.establish(&client, &server, 1, 2).expect("trusted"))
    });
}

criterion_group!(benches, bench_seal_open, bench_handshake);
criterion_main!(benches);
