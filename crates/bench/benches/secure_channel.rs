//! Benches for the §4.3 secure record layer.

use oasis_bench::timing::{bench, bench_bytes};
use oasis_net::secure::{open, seal, SessionBroker, TrustAnchor};
use oasis_sim::SimRng;
use std::hint::black_box;

fn main() {
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let mut rng = SimRng::new(1);
    let page: Vec<u8> = (0..4_096).map(|_| rng.next_u64() as u8).collect();

    bench_bytes("secure_page/seal_4k", page.len() as u64, || {
        black_box(seal(&key, &nonce, b"pfn", black_box(&page)));
    });
    let sealed = seal(&key, &nonce, b"pfn", &page);
    bench_bytes("secure_page/open_4k", page.len() as u64, || {
        black_box(open(&key, &nonce, b"pfn", black_box(&sealed)).expect("valid"));
    });

    {
        let mut rng = SimRng::new(2);
        let anchor = TrustAnchor::new(&mut rng);
        let client = oasis_net::secure::handshake::Identity::generate("memtap", &anchor, &mut rng);
        let server =
            oasis_net::secure::handshake::Identity::generate("memserver", &anchor, &mut rng);
        let broker = SessionBroker::new(anchor);
        bench("secure_handshake", || {
            black_box(broker.establish(&client, &server, 1, 2).expect("trusted"));
        });
    }
}
