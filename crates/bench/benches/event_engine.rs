//! Criterion benches for the discrete-event engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oasis_sim::{EventQueue, SimTime};
use std::hint::black_box;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            // Interleaved times to exercise heap reordering.
            for i in 0..n {
                q.schedule_at(SimTime::from_micros((i * 7_919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("event_queue/cancel_half_of_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let tokens: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule_at(SimTime::from_micros(i), i))
                .collect();
            for t in tokens.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_schedule_pop, bench_cancellation);
criterion_main!(benches);
