//! Benches for the discrete-event engine.

use oasis_bench::timing::{bench, bench_elements};
use oasis_sim::{EventQueue, SimTime};
use std::hint::black_box;

fn main() {
    let n = 10_000u64;
    bench_elements("event_queue/schedule_pop_10k", n, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Interleaved times to exercise heap reordering.
        for i in 0..n {
            q.schedule_at(SimTime::from_micros((i * 7_919) % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum);
    });

    bench("event_queue/cancel_half_of_10k", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let tokens: Vec<_> =
            (0..10_000u64).map(|i| q.schedule_at(SimTime::from_micros(i), i)).collect();
        for t in tokens.iter().step_by(2) {
            q.cancel(*t);
        }
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count);
    });
}
