//! Bench: one full simulated cluster day end to end.

use oasis_bench::timing::bench;
use oasis_cluster::{ClusterConfig, ClusterSim};
use oasis_core::PolicyKind;
use std::hint::black_box;

fn main() {
    for (label, homes, cons, vms) in [("small_6x10", 6u32, 2u32, 10u32), ("paper_30x30", 30, 4, 30)]
    {
        bench(&format!("cluster_day/{label}"), || {
            let cfg = ClusterConfig::builder()
                .home_hosts(homes)
                .consolidation_hosts(cons)
                .vms_per_host(vms)
                .policy(PolicyKind::FullToPartial)
                .seed(1)
                .build()
                .expect("valid configuration");
            black_box(ClusterSim::new(cfg).run_day().energy_savings);
        });
    }
}
