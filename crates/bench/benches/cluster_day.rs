//! Criterion bench: one full simulated cluster day end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_cluster::{ClusterConfig, ClusterSim};
use oasis_core::PolicyKind;
use std::hint::black_box;

fn bench_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_day");
    group.sample_size(10);
    for (label, homes, cons, vms) in
        [("small_6x10", 6u32, 2u32, 10u32), ("paper_30x30", 30, 4, 30)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                let cfg = ClusterConfig::builder()
                    .home_hosts(homes)
                    .consolidation_hosts(cons)
                    .vms_per_host(vms)
                    .policy(PolicyKind::FullToPartial)
                    .seed(1)
                    .build()
                    .expect("valid configuration");
                black_box(ClusterSim::new(cfg).run_day().energy_savings)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_day);
criterion_main!(benches);
