//! Criterion benches for the real-time page codec (§4.3's LZO stand-in).
//!
//! Compression sits on the partial-migration critical path (every page is
//! compressed before hitting the SAS drive and decompressed per fault in
//! memtap), so its throughput matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oasis_mem::compress::{compress, decompress, PageClass};
use oasis_mem::PAGE_SIZE;
use std::hint::black_box;

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(PAGE_SIZE));
    for class in PageClass::ALL {
        let page = class.synthesize(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{class:?}")),
            &page,
            |b, page| b.iter(|| compress(black_box(page))),
        );
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(PAGE_SIZE));
    for class in PageClass::ALL {
        let packed = compress(&class.synthesize(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{class:?}")),
            &packed,
            |b, packed| b.iter(|| decompress(black_box(packed)).expect("valid stream")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
