//! Benches for the real-time page codec (§4.3's LZO stand-in).
//!
//! Compression sits on the partial-migration critical path (every page is
//! compressed before hitting the SAS drive and decompressed per fault in
//! memtap), so its throughput matters.

use oasis_bench::timing::bench_bytes;
use oasis_mem::compress::{compress, decompress, PageClass};
use oasis_mem::PAGE_SIZE;
use std::hint::black_box;

fn main() {
    for class in PageClass::ALL {
        let page = class.synthesize(1);
        bench_bytes(&format!("compress/{class:?}"), PAGE_SIZE, || {
            black_box(compress(black_box(&page)));
        });
    }
    for class in PageClass::ALL {
        let packed = compress(&class.synthesize(1));
        bench_bytes(&format!("decompress/{class:?}"), PAGE_SIZE, || {
            black_box(decompress(black_box(&packed)).expect("valid stream"));
        });
    }
}
