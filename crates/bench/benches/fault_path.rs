//! Criterion benches for the page-fault servicing path: page table touch,
//! chunk-allocator frame grab, and the full hypervisor fault+install.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oasis_host::guest::GuestMemoryImage;
use oasis_host::hypervisor::Hypervisor;
use oasis_mem::chunk::ChunkAllocator;
use oasis_mem::compress::PageMix;
use oasis_mem::page_table::PageTable;
use oasis_mem::{ByteSize, MachineFrame, PageNum};
use oasis_vm::workload::WorkloadClass;
use oasis_vm::{Vm, VmId};
use std::hint::black_box;

fn bench_page_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    group.throughput(Throughput::Elements(1));
    group.bench_function("touch_hit", |b| {
        let mut pt = PageTable::new_resident(1_048_576);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7_919) % 1_048_576;
            black_box(pt.touch(PageNum(i), i.is_multiple_of(3)).expect("in range"))
        })
    });
    group.bench_function("fault_install_evict", |b| {
        let mut pt = PageTable::new_absent(1_048_576);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7_919) % 1_048_576;
            pt.touch(PageNum(i), false).expect("in range");
            pt.install(PageNum(i), MachineFrame(i)).expect("absent");
            pt.evict(PageNum(i)).expect("present");
        })
    });
    group.finish();
}

fn bench_chunk_allocator(c: &mut Criterion) {
    c.bench_function("chunk_allocator/alloc_free_cycle", |b| {
        b.iter(|| {
            let mut a = ChunkAllocator::new(ByteSize::gib(1));
            for owner in 0..8u32 {
                for _ in 0..1_000 {
                    a.alloc_frame(owner).expect("capacity");
                }
            }
            for owner in 0..8u32 {
                a.free_owner(owner);
            }
            black_box(a.free_chunks())
        })
    });
}

fn bench_hypervisor_fault(c: &mut Criterion) {
    c.bench_function("hypervisor/fault_and_install", |b| {
        let mut hv = Hypervisor::new(ByteSize::gib(8));
        let mut vm = Vm::new(VmId(1), WorkloadClass::Desktop, ByteSize::gib(4), 1);
        vm.make_partial(ByteSize::ZERO);
        let image = GuestMemoryImage::new(1, PageMix::desktop(), 1_048_576);
        hv.create_partial(vm, image).expect("fresh hypervisor");
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7_919) % 1_048_576;
            let page = PageNum(i);
            if !hv.vm(VmId(1)).expect("hosted").table.is_present(page) {
                hv.guest_access(VmId(1), page, false).expect("in range");
                hv.install_fetched(VmId(1), page, false).expect("install");
            } else {
                hv.guest_access(VmId(1), page, true).expect("in range");
            }
        })
    });
}

criterion_group!(benches, bench_page_table, bench_chunk_allocator, bench_hypervisor_fault);
criterion_main!(benches);
