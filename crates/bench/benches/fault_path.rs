//! Benches for the page-fault servicing path: page table touch, chunk-
//! allocator frame grab, and the full hypervisor fault+install.

use oasis_bench::timing::{bench, bench_elements};
use oasis_host::guest::GuestMemoryImage;
use oasis_host::hypervisor::Hypervisor;
use oasis_mem::chunk::ChunkAllocator;
use oasis_mem::compress::PageMix;
use oasis_mem::page_table::PageTable;
use oasis_mem::{ByteSize, MachineFrame, PageNum};
use oasis_vm::workload::WorkloadClass;
use oasis_vm::{Vm, VmId};
use std::hint::black_box;

fn main() {
    {
        let mut pt = PageTable::new_resident(1_048_576);
        let mut i = 0u64;
        bench_elements("page_table/touch_hit", 1, || {
            i = (i + 7_919) % 1_048_576;
            black_box(pt.touch(PageNum(i), i.is_multiple_of(3)).expect("in range"));
        });
    }
    {
        let mut pt = PageTable::new_absent(1_048_576);
        let mut i = 0u64;
        bench_elements("page_table/fault_install_evict", 1, || {
            i = (i + 7_919) % 1_048_576;
            pt.touch(PageNum(i), false).expect("in range");
            pt.install(PageNum(i), MachineFrame(i)).expect("absent");
            pt.evict(PageNum(i)).expect("present");
        });
    }

    bench("chunk_allocator/alloc_free_cycle", || {
        let mut a = ChunkAllocator::new(ByteSize::gib(1));
        for owner in 0..8u32 {
            for _ in 0..1_000 {
                a.alloc_frame(owner).expect("capacity");
            }
        }
        for owner in 0..8u32 {
            a.free_owner(owner);
        }
        black_box(a.free_chunks());
    });

    {
        let mut hv = Hypervisor::new(ByteSize::gib(8));
        let mut vm = Vm::new(VmId(1), WorkloadClass::Desktop, ByteSize::gib(4), 1);
        vm.make_partial(ByteSize::ZERO);
        let image = GuestMemoryImage::new(1, PageMix::desktop(), 1_048_576);
        hv.create_partial(vm, image).expect("fresh hypervisor");
        let mut i = 0u64;
        bench("hypervisor/fault_and_install", || {
            i = (i + 7_919) % 1_048_576;
            let page = PageNum(i);
            if !hv.vm(VmId(1)).expect("hosted").table.is_present(page) {
                hv.guest_access(VmId(1), page, false).expect("in range");
                hv.install_fetched(VmId(1), page, false).expect("install");
            } else {
                hv.guest_access(VmId(1), page, true).expect("in range");
            }
        });
    }
}
