//! Benches for the cluster manager's planning round.

use oasis_bench::timing::bench;
use oasis_core::manager::ManagerConfig;
use oasis_core::{ClusterManager, ClusterView, HostRole, HostView, PolicyKind, VmView};
use oasis_mem::ByteSize;
use oasis_vm::{HostId, VmId, VmState};
use std::hint::black_box;

/// Builds a §5.1-scale snapshot: 30 homes × 30 VMs + 4 consolidation
/// hosts, with a third of the VMs active.
fn paper_scale_view() -> ClusterView {
    let capacity = ByteSize::gib(192);
    let mut hosts = Vec::new();
    let mut vms = Vec::new();
    for h in 0..30u32 {
        hosts.push(HostView {
            id: HostId(h),
            role: HostRole::Compute,
            powered: true,
            vacatable: true,
            capacity,
        });
        for i in 0..30u32 {
            let id = h * 30 + i;
            vms.push(VmView {
                id: VmId(id),
                home: HostId(h),
                location: HostId(h),
                state: if id % 3 == 0 { VmState::Active } else { VmState::Idle },
                allocation: ByteSize::gib(4),
                demand: ByteSize::gib(4),
                partial_demand: ByteSize::mib(165),
                partial: false,
            });
        }
    }
    for c in 0..4u32 {
        hosts.push(HostView {
            id: HostId(30 + c),
            role: HostRole::Consolidation,
            powered: false,
            vacatable: true,
            capacity,
        });
    }
    let mut view = ClusterView { hosts, vms, host_demand: Vec::new() };
    view.rebuild_host_demand();
    view
}

fn main() {
    let view = paper_scale_view();
    for policy in [PolicyKind::Default, PolicyKind::FullToPartial, PolicyKind::NewHome] {
        let mut manager =
            ClusterManager::new(ManagerConfig { policy, ..ManagerConfig::default() }, 1);
        bench(&format!("manager_plan/{policy}"), || {
            black_box(manager.plan(&view));
        });
    }
}
