//! Phase-level latency probe for one paper-scale simulated day.
//!
//! Runs the §5.1 day 30 times and prints both the best complete run and
//! the independent per-phase minima (the least noise-polluted estimate on
//! a machine with frequency scaling). Pass `event` to probe the
//! event-driven engine, `profile` to additionally dump the span-profiler
//! tree from a telemetry-enabled run:
//!
//! ```text
//! cargo run --release -p oasis-bench --example engine_probe -- event
//! ```

use oasis_bench::timing::monotonic_secs;
use oasis_cluster::{ClusterConfig, ClusterSim, DayPhases};
use oasis_sim::EngineMode;
use oasis_telemetry::profile::ProfileNode;
use oasis_telemetry::{Level, Telemetry};

fn dump(n: &ProfileNode, depth: usize) {
    if n.total_wall_ns < 100_000 {
        return;
    }
    println!(
        "{:indent$}{} calls={} total={:.3}ms self={:.3}ms",
        "",
        n.name,
        n.calls,
        n.total_wall_ns as f64 / 1e6,
        n.self_wall_ns as f64 / 1e6,
        indent = depth * 2
    );
    for c in &n.children {
        dump(c, depth + 1);
    }
}

fn main() {
    let engine = if std::env::args().any(|a| a == "event") {
        EngineMode::EventDriven
    } else {
        EngineMode::Interval
    };
    let cfg = || {
        let mut c = ClusterConfig::builder().seed(1).build().unwrap();
        c.engine = engine;
        c
    };
    let _ = ClusterSim::new(cfg()).run_day(); // warmup

    // Clean (telemetry-disabled) phase split — what perf.rs measures.
    // Repeated; the minimum is the least noise-polluted sample.
    let mut best = f64::MAX;
    let mut best_phases = DayPhases::default();
    let mut min_phases = [f64::MAX; 6];
    let mut last = None;
    for _ in 0..30 {
        let mut phases = DayPhases::default();
        let t0 = monotonic_secs();
        let sim = ClusterSim::new_timed(cfg(), &monotonic_secs, &mut phases);
        let (report, stats) = sim.run_day_instrumented(&monotonic_secs, &mut phases);
        let wall = monotonic_secs() - t0;
        if wall < best {
            best = wall;
            best_phases = phases;
        }
        for (slot, v) in min_phases.iter_mut().zip([
            phases.construct_secs,
            phases.fault_service_secs,
            phases.activation_secs,
            phases.planner_secs,
            phases.fetch_secs,
            phases.accounting_secs,
        ]) {
            *slot = slot.min(v);
        }
        last = Some((report, stats));
    }
    let (report, stats) = last.unwrap();
    println!(
        "per-phase mins: construct={:.3} fault={:.3} act={:.3} plan={:.3} fetch={:.3} acct={:.3} sum={:.3}",
        min_phases[0] * 1e3,
        min_phases[1] * 1e3,
        min_phases[2] * 1e3,
        min_phases[3] * 1e3,
        min_phases[4] * 1e3,
        min_phases[5] * 1e3,
        min_phases.iter().sum::<f64>() * 1e3,
    );
    println!(
        "clean min: wall={:.3}ms construct={:.3} fault={:.3} act={:.3} plan={:.3} fetch={:.3} acct={:.3}",
        best * 1e3,
        best_phases.construct_secs * 1e3,
        best_phases.fault_service_secs * 1e3,
        best_phases.activation_secs * 1e3,
        best_phases.planner_secs * 1e3,
        best_phases.fetch_secs * 1e3,
        best_phases.accounting_secs * 1e3,
    );
    println!("decisions: {:?}", report.decisions);
    println!("migrations: {:?}", report.migrations);
    println!("stats: {stats:?}");

    if std::env::args().any(|a| a == "profile") {
        let telemetry = Telemetry::new(Level::Warn);
        let mut sim = ClusterSim::new(cfg());
        sim.attach_telemetry(telemetry.clone());
        let _ = sim.run_day();
        for root in &telemetry.profiler().snapshot().roots {
            dump(root, 0);
        }
    }
}
