//! Wall-clock probe for the stress-scenario registry.
//!
//! Runs every registered scenario (or one named on the command line)
//! under both day-loop engines and prints per-scenario wall times plus
//! the golden digest, so a perf regression in the stress paths —
//! reboot handling, spike wakes, fault recovery, the sharded day — is
//! visible before the golden suite merely times out:
//!
//! ```text
//! cargo run --release -p oasis-bench --example scenario_probe
//! cargo run --release -p oasis-bench --example scenario_probe -- patch_window
//! ```

use oasis_bench::timing::monotonic_secs;
use oasis_cluster::scenarios::{self, run_scenario_with};
use oasis_sim::pool::WorkerPool;
use oasis_sim::{EngineMode, ModelFidelity};

const RUNS: usize = 5;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let pool = WorkerPool::from_env();
    let specs: Vec<_> = scenarios::all()
        .into_iter()
        .filter(|s| filter.as_deref().is_none_or(|f| f == s.name))
        .collect();
    if specs.is_empty() {
        eprintln!("no scenario matches; registered: {}", scenarios::names().join(", "));
        std::process::exit(2);
    }
    for spec in specs {
        let mut digest = String::new();
        for engine in [EngineMode::Interval, EngineMode::EventDriven] {
            let mut best = f64::INFINITY;
            for _ in 0..RUNS {
                let t0 = monotonic_secs();
                let report =
                    run_scenario_with(&pool, &spec, 1, Some((engine, ModelFidelity::PerPage)))
                        .expect("scenario runs");
                best = best.min(monotonic_secs() - t0);
                digest = report.digest();
            }
            println!("{:<16} {:>9} best={:>8.2}ms", spec.name, format!("{engine:?}"), best * 1e3);
        }
        println!("  {digest}");
    }
}
