//! Phase-accounting lock: `DayPhases` bracketing double-counts nothing
//! under skip-ahead.
//!
//! `run_day_timed` brackets each simulation phase with the caller's
//! monotonic clock. The buckets must partition the day — every bracket
//! disjoint, none counted twice — on *both* engines: the event engine
//! re-brackets the same phases around its gated fast paths, and a
//! double-counted span there would silently inflate the committed
//! `BENCH_sim.json` breakdown. This is the test-suite analogue of the
//! `day_paper_span_coverage` figure `perf` reports: phase sum ≤ wall
//! (no double counting, ±5% clock-read slack) and phase sum ≥ half the
//! wall (the brackets actually cover the day, loop overhead aside).

use oasis_bench::timing::monotonic_secs;
use oasis_cluster::{ClusterConfig, ClusterSim, DayPhases};
use oasis_sim::EngineMode;

fn day_phases(engine: EngineMode) -> (DayPhases, f64) {
    let cfg = || {
        let mut c = ClusterConfig::builder().seed(1).build().expect("valid §5.1 configuration");
        c.engine = engine;
        c
    };
    // Warmup fills the process-wide trace cache, so the timed day below
    // measures the warm steady state `BENCH_sim.json` records.
    let _ = ClusterSim::new(cfg()).run_day();
    let mut phases = DayPhases::default();
    let t0 = monotonic_secs();
    let sim = ClusterSim::new_timed(cfg(), &monotonic_secs, &mut phases);
    let report = sim.run_day_timed(&monotonic_secs, &mut phases);
    let wall = monotonic_secs() - t0;
    assert!(report.total_kwh > 0.0, "paper day simulated no energy");
    (phases, wall)
}

#[test]
fn day_phase_brackets_partition_the_wall_on_both_engines() {
    for engine in [EngineMode::Interval, EngineMode::EventDriven] {
        let (phases, wall) = day_phases(engine);
        let sum = phases.total_secs();
        // No negative bucket: a clock handed in monotone non-decreasing
        // readings, so a negative bucket means brackets crossed.
        for (name, v) in [
            ("trace_sampling", phases.trace_sampling_secs),
            ("construct", phases.construct_secs),
            ("fault_service", phases.fault_service_secs),
            ("activation", phases.activation_secs),
            ("planner", phases.planner_secs),
            ("fetch", phases.fetch_secs),
            ("accounting", phases.accounting_secs),
        ] {
            assert!(v >= 0.0, "{engine:?}: phase {name} went negative ({v}s)");
        }
        // Disjoint brackets can never sum past the enclosing wall; ±5%
        // absorbs the clock reads themselves on very fast machines.
        assert!(
            sum <= wall * 1.05,
            "{engine:?}: phases double-count — sum {sum:.6}s > wall {wall:.6}s"
        );
        // And they must actually cover the day: everything outside the
        // buckets is loop prologue and report assembly, a small residual
        // at paper scale on either engine.
        assert!(
            sum >= wall * 0.5,
            "{engine:?}: phases cover too little — sum {sum:.6}s of wall {wall:.6}s"
        );
    }
}

#[test]
fn timed_and_untimed_days_are_byte_identical() {
    // The phase clock must never feed back into simulation: a timed run
    // (real clock) and an untimed run (constant clock) produce the same
    // report bytes on both engines.
    for engine in [EngineMode::Interval, EngineMode::EventDriven] {
        let cfg = || {
            let mut c = ClusterConfig::builder()
                .home_hosts(6)
                .consolidation_hosts(2)
                .vms_per_host(10)
                .seed(3)
                .build()
                .expect("valid configuration");
            c.engine = engine;
            c
        };
        let untimed = format!("{:?}", ClusterSim::new(cfg()).run_day());
        let mut phases = DayPhases::default();
        let timed = format!(
            "{:?}",
            ClusterSim::new_timed(cfg(), &monotonic_secs, &mut phases)
                .run_day_timed(&monotonic_secs, &mut phases)
        );
        assert_eq!(untimed, timed, "{engine:?}: phase clock leaked into the simulation");
        assert!(phases.total_secs() > 0.0, "{engine:?}: timed run recorded no phase wall");
    }
}
