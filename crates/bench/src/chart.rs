//! Terminal chart rendering for the figure binaries.
//!
//! Small, dependency-free plotting: column charts for time series and
//! step plots for CDFs, so the `figNN` binaries show the *shape* of each
//! figure directly in the terminal, not just its numbers.

/// Renders a column chart of `values` using `height` text rows.
///
/// Values are scaled to the maximum; a left axis shows the top and zero.
pub fn column_chart(values: &[f64], height: usize, label: &str) -> String {
    if values.is_empty() || height == 0 {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(1e-12);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max * row as f64 / height as f64;
        let axis = if row == height { format!("{max:>8.0} ┤") } else { format!("{:>8} │", "") };
        out.push_str(&axis);
        for &v in values {
            // A half block when the value reaches half of this row's band.
            let band_lo = max * (row - 1) as f64 / height as f64;
            let c = if v >= threshold {
                '█'
            } else if v > band_lo + (threshold - band_lo) / 2.0 {
                '▄'
            } else {
                ' '
            };
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8} └{}\n", 0, "─".repeat(values.len())));
    out.push_str(&format!("{:>10}{label}\n", ""));
    out
}

/// Downsamples `values` to at most `width` columns by averaging buckets.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.is_empty() || width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * values.len() / width;
            let hi = ((i + 1) * values.len() / width).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Renders a CDF as a fixed-width step plot: x spans `[0, x_max]`.
pub fn cdf_plot(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let x_max = points.iter().map(|&(x, _)| x).fold(1e-12, f64::max);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let frac_hi = row as f64 / height as f64;
        let frac_lo = (row - 1) as f64 / height as f64;
        out.push_str(&format!("{:>5.2} │", frac_hi));
        for col in 0..width {
            let x = x_max * (col as f64 + 0.5) / width as f64;
            // Fraction of samples ≤ x from the curve points.
            let f =
                points.iter().filter(|&&(px, _)| px <= x).map(|&(_, pf)| pf).fold(0.0, f64::max);
            out.push(if f > frac_lo && f <= frac_hi { '▉' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&format!("      └{}\n", "─".repeat(width)));
    out.push_str(&format!("       0{:>w$.0}\n", x_max, w = width - 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_chart_shape() {
        let chart = column_chart(&[1.0, 2.0, 4.0], 4, "t");
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 6, "4 rows + axis + label");
        // The tallest value fills the top row; the smallest does not.
        assert!(lines[0].ends_with("█"));
        assert!(lines[0].contains('4'));
    }

    #[test]
    fn column_chart_empty_inputs() {
        assert_eq!(column_chart(&[], 4, "x"), "");
        assert_eq!(column_chart(&[1.0], 0, "x"), "");
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let down = downsample(&values, 10);
        assert_eq!(down.len(), 10);
        let mean_full: f64 = values.iter().sum::<f64>() / 100.0;
        let mean_down: f64 = down.iter().sum::<f64>() / 10.0;
        assert!((mean_full - mean_down).abs() < 1.0);
        assert_eq!(downsample(&values, 200).len(), 100, "no upsampling");
    }

    #[test]
    fn cdf_plot_renders() {
        let points: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let plot = cdf_plot(&points, 20, 5);
        assert!(plot.lines().count() >= 6);
        assert!(plot.contains('▉'));
    }
}
