//! Figure 9: CDF of the consolidation ratio (VMs per powered
//! consolidation host) for Default, FulltoPartial and NewHome.
//!
//! Paper: the median rises from 60 (Default) to 93 (FulltoPartial), with
//! NewHome overlapping FulltoPartial.

use oasis_bench::chart::cdf_plot;
use oasis_bench::{outln, Reporter};
use oasis_cluster::experiments::figure9;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("fig09");
    out.banner("Figure 9", "CDF of VMs per consolidation host (weekday)");
    let mut results = figure9(DayKind::Weekday, 1);
    outln!(
        out,
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "policy",
        "p10",
        "p25",
        "p50",
        "p75",
        "p90",
        "max"
    );
    for (policy, report) in &mut results {
        let cdf = &mut report.consolidation_ratio;
        let q = |cdf: &mut oasis_sim::stats::Cdf, p: f64| cdf.quantile(p).unwrap_or(0.0);
        outln!(
            out,
            "{:<16} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0}",
            policy.to_string(),
            q(cdf, 0.10),
            q(cdf, 0.25),
            q(cdf, 0.50),
            q(cdf, 0.75),
            q(cdf, 0.90),
            q(cdf, 1.0),
        );
    }
    outln!(out);
    outln!(out, "full curves (20 points each):");
    for (policy, report) in &mut results {
        let curve = report.consolidation_ratio.curve(20);
        let mut row = format!("{:<16}", policy.to_string());
        for (v, _) in curve {
            row.push_str(&format!(" {v:>4.0}"));
        }
        outln!(out, "{row}");
    }
    outln!(out);
    for (policy, report) in &mut results {
        outln!(out, "{policy} CDF (x: VMs per host, y: fraction of samples):");
        let curve = report.consolidation_ratio.curve(40);
        out.block(&cdf_plot(&curve, 60, 8));
    }
    outln!(out, "paper: median 60 (Default) -> 93 (FulltoPartial); NewHome overlaps.");
}
