//! §5.6's generality claim: "other server workloads are likely to exhibit
//! similar performance" because idle desktop VMs are *more* demanding
//! than idle web or database VMs.
//!
//! Runs the paper's cluster with three populations — the all-desktop VDI
//! farm of §5, a web/database server farm, and a cloud-services fleet of
//! heartbeat-bound cluster members — under FulltoPartial.

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::ClusterConfig;
use oasis_core::PolicyKind;
use oasis_trace::DayKind;
use oasis_vm::workload::WorkloadClass;

fn run(mix: Vec<(WorkloadClass, f64)>, day: DayKind) -> oasis_cluster::SimReport {
    let cfg = ClusterConfig::builder()
        .policy(PolicyKind::FullToPartial)
        .day(day)
        .workload_mix(mix)
        .seed(1)
        .build()
        .expect("valid configuration");
    oasis_cluster::ClusterSim::new(cfg).run_day()
}

fn main() {
    let out = Reporter::new("server_farm");
    out.banner("§5.6", "generality: VDI vs server farm vs cloud services");
    let populations: [(&str, Vec<(WorkloadClass, f64)>); 3] = [
        ("VDI farm (all desktop)", vec![(WorkloadClass::Desktop, 1.0)]),
        (
            "server farm (web+db)",
            vec![(WorkloadClass::WebServer, 0.5), (WorkloadClass::Database, 0.5)],
        ),
        (
            "cloud services (nodes)",
            vec![(WorkloadClass::ClusterNode, 0.8), (WorkloadClass::Database, 0.2)],
        ),
    ];
    outln!(
        out,
        "{:<26} {:>9} {:>9} {:>12} {:>10}",
        "population",
        "weekday",
        "weekend",
        "SAS upload",
        "net GiB"
    );
    for (label, mix) in populations {
        let wd = run(mix.clone(), DayKind::Weekday);
        let we = run(mix, DayKind::Weekend);
        outln!(
            out,
            "{label:<26} {:>9} {:>9} {:>9.1} GiB {:>10.0}",
            pct(wd.energy_savings),
            pct(we.energy_savings),
            wd.traffic.total(oasis_net::TrafficClass::MemServerUpload).as_gib_f64(),
            wd.network_bytes().as_gib_f64(),
        );
    }
    outln!(out, "paper: idle desktops are the most demanding class (Figure 1), so");
    outln!(out, "       server fleets should consolidate at least as well.");
}
