//! Figure 10: weekday data-transfer breakdown per policy.
//!
//! Paper: FulltoPartial trades energy for network traffic — both its
//! partial and full migration volumes exceed the other policies'.

use oasis_bench::{outln, Reporter};
use oasis_cluster::experiments::figure10;
use oasis_net::TrafficClass;

fn main() {
    let out = Reporter::new("fig10");
    out.banner("Figure 10", "weekday data transfer breakdown (GiB)");
    outln!(
        out,
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "policy",
        "full",
        "descr",
        "fetch",
        "reint",
        "net total",
        "SAS"
    );
    for (policy, report) in figure10(1) {
        let t = &report.traffic;
        outln!(
            out,
            "{:<16} {:>9.1} {:>9.2} {:>9.2} {:>9.1} {:>11.1} {:>9.1}",
            policy.to_string(),
            t.total(TrafficClass::FullMigration).as_gib_f64(),
            t.total(TrafficClass::PartialDescriptor).as_gib_f64(),
            t.total(TrafficClass::DemandFetch).as_gib_f64(),
            t.total(TrafficClass::Reintegration).as_gib_f64(),
            t.network_total().as_gib_f64(),
            t.total(TrafficClass::MemServerUpload).as_gib_f64(),
        );
    }
    outln!(out, "(SAS uploads stay on the host-local drive path, §4.3)");
    outln!(out, "paper: FulltoPartial increases both partial and full migration");
    outln!(out, "       traffic — an acceptable trade within a rack.");
}
