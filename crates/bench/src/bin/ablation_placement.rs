//! Ablation: destination-selection strategy (§3.1 leaves anything beyond
//! random placement out of scope).

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::ClusterConfig;
use oasis_core::{PlacementStrategy, PolicyKind};
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("ablation_placement");
    out.banner("Ablation", "placement strategy (FulltoPartial)");
    outln!(
        out,
        "{:<10} {:>9} {:>9} {:>12} {:>9}",
        "strategy",
        "weekday",
        "weekend",
        "migrations",
        "p50 ratio"
    );
    for (name, strategy) in [
        ("Random", PlacementStrategy::Random),
        ("BestFit", PlacementStrategy::BestFit),
        ("WorstFit", PlacementStrategy::WorstFit),
        ("FirstFit", PlacementStrategy::FirstFit),
    ] {
        let mut results = Vec::new();
        for day in [DayKind::Weekday, DayKind::Weekend] {
            let cfg = ClusterConfig::builder()
                .policy(PolicyKind::FullToPartial)
                .day(day)
                .placement(strategy)
                .seed(1)
                .build()
                .expect("valid configuration");
            results.push(oasis_cluster::ClusterSim::new(cfg).run_day());
        }
        let [wd, we] = &mut results[..] else { unreachable!() };
        outln!(
            out,
            "{name:<10} {:>9} {:>9} {:>12} {:>9.0}",
            pct(wd.energy_savings),
            pct(we.energy_savings),
            wd.migrations.partial + wd.migrations.full,
            wd.consolidation_ratio.quantile(0.5).unwrap_or(0.0),
        );
    }
    outln!(out, "the paper's random choice is near-optimal here: capacity, not");
    outln!(out, "packing quality, bounds consolidation at this scale.");
}
