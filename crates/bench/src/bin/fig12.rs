//! Figure 12: sensitivity to cluster sizing.
//!
//! Keeps 900 VMs total while varying home-host counts (and thus VM
//! density) and consolidation hosts. Paper: savings are similar across
//! packings.

use oasis_bench::{outln, pct_pm, runs, Reporter};
use oasis_cluster::experiments::figure12;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("fig12");
    let runs = runs();
    out.banner("Figure 12", "sensitivity to cluster size (900 VMs, FulltoPartial)");
    outln!(out, "({runs} runs per point)");
    for day in [DayKind::Weekday, DayKind::Weekend] {
        outln!(out, "--- {day:?} ---");
        outln!(out, "{:<14} {:>10} {:>16}", "homes+cons", "VMs/host", "savings");
        for (homes, cons, vms_per_host, mean, std) in figure12(day, runs) {
            outln!(
                out,
                "{:<14} {vms_per_host:>10} {:>16}",
                format!("{homes}+{cons}"),
                pct_pm(mean, std)
            );
        }
    }
    outln!(out, "paper: savings are similar regardless of VM packing density.");
}
