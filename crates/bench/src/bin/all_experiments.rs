//! Runs every experiment binary's logic in sequence.
//!
//! Convenience wrapper used to regenerate `EXPERIMENTS.md`; prints the
//! same output as the individual `figNN` / `tableN` binaries.
//!
//! Build the whole bench crate first so no sibling binary is stale:
//! `cargo build --release -p oasis-bench && cargo run --release -p
//! oasis-bench --bin all_experiments`.

use oasis_bench::{outln, Reporter};
use std::process::Command;

fn main() {
    let out = Reporter::new("all_experiments");
    let bins = [
        "fig01",
        "fig02",
        "table1",
        "table2",
        "fig05",
        "net_micro",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "table3",
        "fig12",
        "baselines",
        "week",
        "fault_injection",
        "migration_compare",
        "server_farm",
        "ablation_upload",
        "ablation_overwrite",
        "ablation_interval",
        "ablation_cooldown",
        "ablation_placement",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let own_mtime = std::fs::metadata(&exe).and_then(|m| m.modified()).expect("own metadata");
    for bin in bins {
        let path = dir.join(bin);
        // Refuse to report stale results: every sibling must be at least
        // as fresh as this wrapper.
        if let Ok(meta) = std::fs::metadata(&path) {
            if let Ok(mtime) = meta.modified() {
                assert!(
                    mtime + std::time::Duration::from_secs(3_600) >= own_mtime,
                    "{bin} is stale; rebuild with `cargo build --release -p oasis-bench`"
                );
            }
        }
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
        outln!(out);
    }
}
