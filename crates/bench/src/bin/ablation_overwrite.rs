//! Ablation: overwrite obviation at reintegration (§4.4.3).
//!
//! With the optimization off, every dirty page crosses the wire when a
//! partial VM returns to its home.

use oasis_bench::{outln, secs, Reporter};
use oasis_migration::lab::{LabOptions, MicroLab};
use oasis_sim::SimDuration;
use oasis_vm::apps::DesktopWorkload;

fn run(obviation: bool) -> (f64, f64) {
    let mut lab = MicroLab::with_options(
        1,
        LabOptions { overwrite_obviation: obviation, ..LabOptions::default() },
    );
    lab.prime_os();
    lab.run_workload(&DesktopWorkload::workload1());
    lab.idle_wait(SimDuration::from_mins(5));
    lab.partial_migrate();
    lab.consolidated_idle(SimDuration::from_mins(20));
    let r = lab.reintegrate();
    (r.network_bytes.as_mib_f64(), r.total.as_secs_f64())
}

fn main() {
    let out = Reporter::new("ablation_overwrite");
    out.banner("Ablation", "overwrite obviation at reintegration (§4.4.3)");
    outln!(out, "{:<16} {:>12} {:>10}", "variant", "dirty sent", "latency");
    for (label, on) in [("obviation on", true), ("obviation off", false)] {
        let (mib, latency) = run(on);
        outln!(out, "{label:<16} {mib:>8.1} MiB {:>10}", secs(latency));
    }
    outln!(out, "paper: new allocations and recycled buffers are never sent.");
}
