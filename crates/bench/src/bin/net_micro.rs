//! §4.4.3: network traffic of one consolidation cycle.
//!
//! Paper: 16.0 ± 0.5 MiB descriptor, 56.9 ± 7.9 MiB of on-demand fetches,
//! 175.3 ± 49.3 MiB of reintegrated dirty state.

use oasis_bench::{outln, Reporter};
use oasis_migration::lab::MicroLab;
use oasis_net::TrafficClass;
use oasis_sim::stats::Summary;
use oasis_sim::SimDuration;
use oasis_vm::apps::DesktopWorkload;

fn main() {
    let out = Reporter::new("net_micro");
    out.banner("§4.4.3", "network traffic of one consolidation cycle (3 runs)");
    let mut descriptor = Summary::new();
    let mut fetched = Summary::new();
    let mut reintegrated = Summary::new();
    let mut sas = Summary::new();

    for seed in 1..=3u64 {
        let mut lab = MicroLab::new(seed);
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        let reint = lab.reintegrate();
        descriptor.record(lab.traffic.total(TrafficClass::PartialDescriptor).as_mib_f64());
        fetched.record(idle.fetched.as_mib_f64());
        reintegrated.record(reint.network_bytes.as_mib_f64());
        sas.record(lab.traffic.total(TrafficClass::MemServerUpload).as_mib_f64());
    }

    outln!(out, "{:<30} {:>14} {:>16}", "transfer", "measured", "paper");
    let rows = [
        ("VM descriptor", descriptor.mean(), "16.0 ± 0.5"),
        ("on-demand page fetches", fetched.mean(), "56.9 ± 7.9"),
        ("reintegrated dirty state", reintegrated.mean(), "175.3 ± 49.3"),
    ];
    for (label, measured, paper) in rows {
        outln!(out, "{label:<30} {measured:>10.1} MiB {paper:>16}");
    }
    outln!(out, "{:<30} {:>10.1} MiB {:>16}", "SAS upload (off-network)", sas.mean(), "n/a");
}
