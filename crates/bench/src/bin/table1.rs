//! Table 1: energy profiles and S3 transition times.
//!
//! Prints the host and memory-server profiles the whole evaluation runs
//! on, in the paper's row layout.

use oasis_bench::{outln, Reporter};
use oasis_power::{HostEnergyProfile, MemoryServerProfile, PowerState};

fn main() {
    let out = Reporter::new("table1");
    out.banner("Table 1", "energy profiles and S3 transition times");
    let host = HostEnergyProfile::table1();
    let ms = MemoryServerProfile::prototype();
    outln!(out, "{:<14} {:<12} {:>8} {:>10}", "Device", "State", "Time(s)", "Power(W)");
    let rows: Vec<(&str, &str, Option<f64>, f64)> = vec![
        ("Custom host", "Idle", None, host.watts(PowerState::Powered, 0)),
        ("", "20 VMs", None, host.watts(PowerState::Powered, 20)),
        ("", "Suspend", Some(host.suspend_time.as_secs_f64()), host.suspend_watts),
        ("", "Resume", Some(host.resume_time.as_secs_f64()), host.resume_watts),
        ("", "Sleep (S3)", None, host.sleep_watts),
        ("Memory server", "Idle", None, 27.8),
        ("SAS drive", "Idle", None, 14.4),
    ];
    for (device, state, time, power) in rows {
        let t = time.map_or("N/A".to_string(), |t| format!("{t:.1}"));
        outln!(out, "{device:<14} {state:<12} {t:>8} {power:>10.1}");
    }
    outln!(out);
    outln!(
        out,
        "combined sleeping home + memory server: {:.1} W (vs {:.1} W idle host)",
        host.sleep_watts + ms.active_watts,
        host.idle_watts
    );
    outln!(
        out,
        "memory server upload path: {:.0} MiB/s sequential SAS writes",
        ms.upload_bytes_per_sec / (1024.0 * 1024.0)
    );
}
