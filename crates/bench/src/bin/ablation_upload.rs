//! Ablation: the §4.3 memory-upload optimizations.
//!
//! Re-runs the Figure 5 flow with per-page compression and differential
//! upload toggled, isolating what each contributes to partial-migration
//! latency.

use oasis_bench::{outln, secs, Reporter};
use oasis_migration::lab::{LabOptions, MicroLab};
use oasis_sim::SimDuration;
use oasis_vm::apps::DesktopWorkload;

fn run(options: LabOptions) -> (f64, f64) {
    let mut lab = MicroLab::with_options(1, options);
    lab.prime_os();
    lab.run_workload(&DesktopWorkload::workload1());
    lab.idle_wait(SimDuration::from_mins(5));
    let first = lab.partial_migrate();
    lab.consolidated_idle(SimDuration::from_mins(20));
    lab.reintegrate();
    lab.run_workload(&DesktopWorkload::workload2());
    lab.idle_wait(SimDuration::from_mins(5));
    let second = lab.partial_migrate();
    (first.outcome.total.as_secs_f64(), second.outcome.total.as_secs_f64())
}

fn main() {
    let out = Reporter::new("ablation_upload");
    out.banner("Ablation", "memory-upload optimizations (§4.3)");
    let variants: [(&str, LabOptions); 4] = [
        ("compression + differential", LabOptions::default()),
        ("compression only", LabOptions { differential_upload: false, ..LabOptions::default() }),
        ("differential only", LabOptions { compression: false, ..LabOptions::default() }),
        (
            "neither",
            LabOptions { compression: false, differential_upload: false, ..LabOptions::default() },
        ),
    ];
    outln!(out, "{:<28} {:>12} {:>12}", "variant", "1st partial", "2nd partial");
    for (label, options) in variants {
        let (first, second) = run(options);
        outln!(out, "{label:<28} {:>12} {:>12}", secs(first), secs(second));
    }
    outln!(out, "paper ships with both on: 15.7 s then 7.2 s.");
}
