//! Figure 11: idle→active transition delay distribution for different
//! consolidation-host counts (FulltoPartial).
//!
//! Paper: zero-delay probability falls from 75% (2 hosts) to 38%
//! (12 hosts); partial-VM transitions typically wait under 4 s, with a
//! 19 s tail (99.99th percentile) during resume storms.

use oasis_bench::{outln, Reporter};
use oasis_cluster::experiments::figure11;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("fig11");
    out.banner("Figure 11", "idle→active transition delays (weekday)");
    outln!(
        out,
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "cons#",
        "zero%",
        "p50",
        "p90",
        "p99",
        "p99.99",
        "max"
    );
    for (cons, mut report) in figure11(DayKind::Weekday, 1) {
        let zero = report.zero_delay_fraction();
        let cdf = &mut report.transition_delays;
        outln!(
            out,
            "{cons:<7} {:>7.1}% {:>7.1}s {:>7.1}s {:>7.1}s {:>8.1}s {:>7.1}s",
            100.0 * zero,
            cdf.quantile(0.50).unwrap_or(0.0),
            cdf.quantile(0.90).unwrap_or(0.0),
            cdf.quantile(0.99).unwrap_or(0.0),
            cdf.quantile(0.9999).unwrap_or(0.0),
            cdf.quantile(1.0).unwrap_or(0.0),
        );
    }
    outln!(out, "paper: zero-delay 75% -> 38% as hosts grow 2 -> 12; partial");
    outln!(out, "       transitions < 4 s typical, 19 s at the 99.99th percentile.");
}
