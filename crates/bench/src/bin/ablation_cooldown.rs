//! Ablation: the vacate cooldown after a ReturnHome wake.
//!
//! Our engineering addition on top of the paper's policies: a freshly
//! woken home is not re-vacated for a cooldown period, damping
//! consolidate/return thrash at the cost of slower re-consolidation.

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::ClusterConfig;
use oasis_core::PolicyKind;
use oasis_sim::SimDuration;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("ablation_cooldown");
    out.banner("Ablation", "vacate cooldown after ReturnHome (FulltoPartial)");
    for day in [DayKind::Weekday, DayKind::Weekend] {
        outln!(out, "--- {day:?} ---");
        outln!(out, "{:<12} {:>10} {:>10} {:>12}", "cooldown", "savings", "returns", "partials");
        for mins in [0u64, 5, 15, 30, 60] {
            let cfg = ClusterConfig::builder()
                .policy(PolicyKind::FullToPartial)
                .day(day)
                .vacate_cooldown(SimDuration::from_mins(mins))
                .seed(1)
                .build()
                .expect("valid configuration");
            let r = oasis_cluster::ClusterSim::new(cfg).run_day();
            outln!(
                out,
                "{:<12} {:>10} {:>10} {:>12}",
                format!("{mins} min"),
                pct(r.energy_savings),
                r.migrations.returns_home,
                r.migrations.partial,
            );
        }
    }
}
