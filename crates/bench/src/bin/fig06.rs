//! Figure 6: application start-up latency, full VM vs partial VM.
//!
//! Starts each catalog application in a warm full VM and again in a
//! freshly consolidated partial VM where every cold page is a serial
//! remote fetch. Paper: up to 111× slower; LibreOffice takes 168 s, while
//! pre-fetching the whole remaining state would take only ~41 s.

use oasis_bench::{outln, Reporter};
use oasis_migration::lab::MicroLab;
use oasis_sim::SimDuration;
use oasis_vm::apps::{catalog, Application, DesktopWorkload};

fn main() {
    let out = Reporter::new("fig06");
    out.banner("Figure 6", "application start-up latency");
    let apps: [(&str, Application); 6] = [
        ("Terminal", catalog::TERMINAL),
        ("Pidgin IM", catalog::PIDGIN),
        ("Evince PDF", catalog::EVINCE_PDF),
        ("Thunderbird", catalog::THUNDERBIRD),
        ("Firefox site", catalog::FIREFOX_SITE),
        ("LibreOffice doc", catalog::LIBREOFFICE_DOC),
    ];

    let mut lab = MicroLab::new(7);
    lab.prime_os();
    lab.run_workload(&DesktopWorkload::workload1());
    lab.idle_wait(SimDuration::from_mins(5));

    // Warm full-VM latencies first.
    let full: Vec<f64> =
        apps.iter().map(|(_, app)| lab.app_startup_latency(app).as_secs_f64()).collect();
    lab.partial_migrate();
    let partial: Vec<f64> =
        apps.iter().map(|(_, app)| lab.app_startup_latency(app).as_secs_f64()).collect();

    outln!(out, "{:<18} {:>9} {:>11} {:>8}", "application", "full VM", "partial VM", "ratio");
    for (i, (name, _)) in apps.iter().enumerate() {
        outln!(
            out,
            "{name:<18} {:>8.1}s {:>10.1}s {:>7.0}x",
            full[i],
            partial[i],
            partial[i] / full[i]
        );
    }
    outln!(out, "paper: partial-VM starts up to 111x slower; LibreOffice 168 s.");
    outln!(out, "       Pre-fetching the remaining VM state takes ~41 s, which is");
    outln!(out, "       why activated partial VMs are converted to full VMs.");
}
