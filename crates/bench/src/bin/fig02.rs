//! Figure 2: server sleeping opportunities with 1 VM vs 10 VMs.
//!
//! Simulates the page-request arrival process at a home host serving one
//! database VM, and one serving ten VMs (5 web + 5 database), over 12
//! hours. Prints the mean request inter-arrival, the gap CDF, and the
//! achievable sleep fraction for a server with the measured 3.1 s + 2.3 s
//! transition times. Paper: 3.9 min (1 VM) vs 5.8 s (10 VMs), the latter
//! leaving essentially no sleep opportunity.

use oasis_bench::{outln, Reporter};
use oasis_host::sleep_sim::simulate_host_sleep;
use oasis_power::HostEnergyProfile;
use oasis_sim::stats::Cdf;
use oasis_sim::{SimDuration, SimRng, SimTime};
use oasis_vm::workload::WorkloadClass;

/// Simulates superposed request processes; returns arrival gaps (secs).
fn gaps(mix: &[(WorkloadClass, usize)], hours: f64, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    let horizon = hours * 3_600.0;
    let mut arrivals: Vec<f64> = Vec::new();
    for &(class, count) in mix {
        let model = class.idle_model();
        for vm in 0..count {
            let mut vm_rng = rng.fork(vm as u64);
            let mut t = SimTime::ZERO;
            loop {
                t = model.next_request(t, &mut vm_rng);
                if t.as_secs_f64() > horizon {
                    break;
                }
                arrivals.push(t.as_secs_f64());
            }
        }
    }
    arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    arrivals.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Quiet time before the host decides the burst is over and suspends.
const IDLE_TIMER_SECS: f64 = 10.0;

fn report(out: &Reporter, label: &str, gaps: &[f64], transition_secs: f64) {
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let mut cdf = Cdf::new();
    for &g in gaps {
        cdf.record(g);
    }
    // The host cannot foresee gap lengths: it waits out an idle timer,
    // then suspends, and must resume before serving the next request.
    // Only the remainder of the gap is actual sleep.
    let usable: f64 = gaps.iter().map(|g| (g - IDLE_TIMER_SECS - transition_secs).max(0.0)).sum();
    let total: f64 = gaps.iter().sum();
    outln!(
        out,
        "{label:<28} mean gap {:>8.1}s  p50 {:>7.1}s  p90 {:>7.1}s  sleepable {:>5.1}%",
        mean,
        cdf.quantile(0.5).unwrap_or(0.0),
        cdf.quantile(0.9).unwrap_or(0.0),
        100.0 * usable / total,
    );
}

fn main() {
    let out = Reporter::new("fig02");
    out.banner("Figure 2", "server sleeping opportunities, 1 VM vs 10 VMs");
    let transition = HostEnergyProfile::table1().transition_round_trip().as_secs_f64();
    outln!(out, "server transition round trip: {transition:.1}s");

    let one = gaps(&[(WorkloadClass::Database, 1)], 12.0, 42);
    let ten = gaps(&[(WorkloadClass::Database, 5), (WorkloadClass::WebServer, 5)], 12.0, 42);
    report(&out, "1 database VM", &one, transition);
    report(&out, "10 VMs (5 web + 5 db)", &ten, transition);

    // The event-driven version: the full ACPI state machine reacting to
    // the request processes (suspend/resume chains, idle timer), per §2.
    outln!(out);
    outln!(out, "event-driven host simulation (12 h, 10 s idle timer):");
    let horizon = SimDuration::from_hours(12);
    let timer = SimDuration::from_secs(10);
    let one = simulate_host_sleep(&[WorkloadClass::Database], horizon, timer, 42);
    let mix: Vec<WorkloadClass> =
        [WorkloadClass::Database; 5].into_iter().chain([WorkloadClass::WebServer; 5]).collect();
    let ten = simulate_host_sleep(&mix, horizon, timer, 42);
    for (label, r) in [("1 database VM", one), ("10 VMs (5 web + 5 db)", ten)] {
        outln!(
            out,
            "{label:<28} asleep {:>5.1}%  in-transit {:>5.1}%  mean draw {:>6.1} W",
            100.0 * r.sleep_fraction,
            100.0 * r.transition_fraction,
            r.mean_watts,
        );
    }
    outln!(out, "paper: 3.9 min vs 5.8 s mean inter-arrival; 10 co-located VMs");
    outln!(out, "       leave the host almost no chance to sleep.");
}
