//! Table 2: the desktop workloads that prime the micro-benchmark VM.

use oasis_bench::banner;
use oasis_vm::apps::DesktopWorkload;

fn main() {
    banner("Table 2", "desktop workloads");
    for workload in [DesktopWorkload::workload1(), DesktopWorkload::workload2()] {
        println!("{}:", workload.name);
        for (app, count) in &workload.apps {
            println!(
                "  {count}x {:<24} {:>8} startup pages  ({:>9})",
                app.name,
                app.startup_pages,
                app.startup_bytes().to_string(),
            );
        }
        println!(
            "  total footprint: {} ({} pages), background dirty {} pages/h",
            workload.total_bytes(),
            workload.total_pages(),
            workload.hourly_dirty_pages(),
        );
    }
}
