//! Table 2: the desktop workloads that prime the micro-benchmark VM.

use oasis_bench::{outln, Reporter};
use oasis_vm::apps::DesktopWorkload;

fn main() {
    let out = Reporter::new("table2");
    out.banner("Table 2", "desktop workloads");
    for workload in [DesktopWorkload::workload1(), DesktopWorkload::workload2()] {
        outln!(out, "{}:", workload.name);
        for (app, count) in &workload.apps {
            outln!(
                out,
                "  {count}x {:<24} {:>8} startup pages  ({:>9})",
                app.name,
                app.startup_pages,
                app.startup_bytes().to_string(),
            );
        }
        outln!(
            out,
            "  total footprint: {} ({} pages), background dirty {} pages/h",
            workload.total_bytes(),
            workload.total_pages(),
            workload.hourly_dirty_pages(),
        );
    }
}
