//! Figure 5: consolidation latencies for one VM.
//!
//! Runs the §4.4 flow three times (as the paper averages over 3 runs) in
//! the functional laboratory: prime Workload 1, idle, first partial
//! migration, 20 minutes consolidated, reintegration, Workload 2, second
//! partial migration. Prints the latency breakdown against the paper's
//! numbers: full 41 s; partial 15.7 s → 7.2 s (upload 10.2 s → 2.2 s);
//! reintegration 3.7 s.

use oasis_bench::{outln, secs, Reporter};
use oasis_migration::lab::MicroLab;
use oasis_sim::stats::Summary;
use oasis_sim::SimDuration;
use oasis_vm::apps::DesktopWorkload;

fn main() {
    let out = Reporter::new("fig05");
    out.banner("Figure 5", "consolidation latencies for one VM (avg of 3 runs)");
    let mut full = Summary::new();
    let mut p1_total = Summary::new();
    let mut p1_upload = Summary::new();
    let mut p2_total = Summary::new();
    let mut p2_upload = Summary::new();
    let mut reint = Summary::new();

    for seed in 1..=3u64 {
        let mut lab = MicroLab::new(seed);
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        full.record(lab.full_migrate_baseline().duration.as_secs_f64());
        let first = lab.partial_migrate();
        p1_total.record(first.outcome.total.as_secs_f64());
        p1_upload.record(first.outcome.upload_time.as_secs_f64());
        lab.consolidated_idle(SimDuration::from_mins(20));
        let r = lab.reintegrate();
        reint.record(r.total.as_secs_f64());
        lab.run_workload(&DesktopWorkload::workload2());
        lab.idle_wait(SimDuration::from_mins(5));
        let second = lab.partial_migrate();
        p2_total.record(second.outcome.total.as_secs_f64());
        p2_upload.record(second.outcome.upload_time.as_secs_f64());
    }

    outln!(out, "{:<34} {:>9} {:>9}", "operation", "measured", "paper");
    let rows = [
        ("full (pre-copy live) migration", full.mean(), 41.0),
        ("partial migration #1 (total)", p1_total.mean(), 15.7),
        ("  memory upload #1", p1_upload.mean(), 10.2),
        ("partial migration #2 (total)", p2_total.mean(), 7.2),
        ("  memory upload #2 (differential)", p2_upload.mean(), 2.2),
        ("reintegration", reint.mean(), 3.7),
    ];
    for (label, measured, paper) in rows {
        outln!(out, "{label:<34} {:>9} {:>9}", secs(measured), secs(paper));
    }
}
