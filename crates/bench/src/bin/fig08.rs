//! Figure 8: energy savings per policy as consolidation hosts vary
//! (30 home hosts; weekday and weekend; mean ± std over runs).

use oasis_bench::{outln, pct_pm, runs, Reporter};
use oasis_cluster::experiments::figure8;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("fig08");
    let runs = runs();
    out.banner("Figure 8", "energy savings vs consolidation hosts");
    outln!(out, "({runs} runs per point; set OASIS_RUNS to change)");
    for day in [DayKind::Weekday, DayKind::Weekend] {
        outln!(out, "--- {day:?} ---");
        let points = figure8(day, runs);
        let mut header = format!("{:<16}", "policy \\ cons#");
        for cons in [2, 4, 6, 8, 10, 12] {
            header.push_str(&format!("{cons:>14}"));
        }
        outln!(out, "{header}");
        let mut current = None;
        let mut row = String::new();
        for p in points {
            if current != Some(p.policy) {
                if current.is_some() {
                    outln!(out, "{row}");
                }
                row = format!("{:<16}", p.policy.to_string());
                current = Some(p.policy);
            }
            row.push_str(&format!("{:>14}", pct_pm(p.mean, p.std_dev)));
        }
        outln!(out, "{row}");
    }
    outln!(out, "paper: FulltoPartial reaches 28% (weekday) / 43% (weekend) at 4");
    outln!(out, "       consolidation hosts; OnlyPartial ~6%; Default marginal;");
    outln!(out, "       NewHome adds nothing over FulltoPartial.");
}
