//! Figure 8: energy savings per policy as consolidation hosts vary
//! (30 home hosts; weekday and weekend; mean ± std over runs).

use oasis_bench::{banner, pct_pm, runs};
use oasis_cluster::experiments::figure8;
use oasis_trace::DayKind;

fn main() {
    let runs = runs();
    banner("Figure 8", "energy savings vs consolidation hosts");
    println!("({runs} runs per point; set OASIS_RUNS to change)");
    for day in [DayKind::Weekday, DayKind::Weekend] {
        println!("--- {day:?} ---");
        let points = figure8(day, runs);
        print!("{:<16}", "policy \\ cons#");
        for cons in [2, 4, 6, 8, 10, 12] {
            print!("{cons:>14}");
        }
        println!();
        let mut current = None;
        for p in points {
            if current != Some(p.policy) {
                if current.is_some() {
                    println!();
                }
                print!("{:<16}", p.policy.to_string());
                current = Some(p.policy);
            }
            print!("{:>14}", pct_pm(p.mean, p.std_dev));
        }
        println!();
    }
    println!("paper: FulltoPartial reaches 28% (weekday) / 43% (weekend) at 4");
    println!("       consolidation hosts; OnlyPartial ~6%; Default marginal;");
    println!("       NewHome adds nothing over FulltoPartial.");
}
