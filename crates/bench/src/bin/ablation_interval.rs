//! Ablation: the manager's planning-interval length (§3.1 calls it "a
//! configurable parameter").
//!
//! Short intervals react faster to idleness but plan more often; long
//! intervals leave idle VMs unconsolidated. The trace's 5-minute
//! resolution bounds how fast state changes arrive.

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::ClusterConfig;
use oasis_core::PolicyKind;
use oasis_sim::SimDuration;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("ablation_interval");
    out.banner("Ablation", "planning-interval length (FulltoPartial, weekday)");
    outln!(out, "{:<12} {:>10} {:>12} {:>10}", "interval", "savings", "migrations", "returns");
    for mins in [5u64, 10, 15, 30, 60] {
        let cfg = ClusterConfig::builder()
            .policy(PolicyKind::FullToPartial)
            .day(DayKind::Weekday)
            .interval(SimDuration::from_mins(mins))
            .seed(1)
            .build()
            .expect("valid configuration");
        let r = oasis_cluster::ClusterSim::new(cfg).run_day();
        outln!(
            out,
            "{:<12} {:>10} {:>12} {:>10}",
            format!("{mins} min"),
            pct(r.energy_savings),
            r.migrations.partial + r.migrations.full,
            r.migrations.returns_home,
        );
    }
}
