//! Baseline comparison: the hybrid policies against AlwaysOn (no
//! consolidation) and FullOnly (live-migration-only consolidation, the
//! approach of prior work [5, 15, 22, 28]).

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::experiments::run_one;
use oasis_core::PolicyKind;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("baselines");
    out.banner("Baselines", "hybrid consolidation vs prior approaches");
    outln!(
        out,
        "{:<16} {:>10} {:>10} {:>8} {:>9} {:>9}",
        "policy",
        "weekday",
        "weekend",
        "full#",
        "partial#",
        "net GiB"
    );
    for policy in PolicyKind::ALL {
        let wd = run_one(policy, DayKind::Weekday, 4, 1);
        let we = run_one(policy, DayKind::Weekend, 4, 1);
        outln!(
            out,
            "{:<16} {:>10} {:>10} {:>8} {:>9} {:>9.0}",
            policy.to_string(),
            pct(wd.energy_savings),
            pct(we.energy_savings),
            wd.migrations.full,
            wd.migrations.partial,
            wd.network_bytes().as_gib_f64(),
        );
    }
    outln!(out, "full-VM-only consolidation is capacity-bound at 4 GiB per VM;");
    outln!(out, "the hybrid policies fit an order of magnitude more idle VMs.");
}
