//! Baseline comparison: the hybrid policies against AlwaysOn (no
//! consolidation) and FullOnly (live-migration-only consolidation, the
//! approach of prior work [5, 15, 22, 28]).

use oasis_bench::{banner, pct};
use oasis_cluster::experiments::run_one;
use oasis_core::PolicyKind;
use oasis_trace::DayKind;

fn main() {
    banner("Baselines", "hybrid consolidation vs prior approaches");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>9} {:>9}",
        "policy", "weekday", "weekend", "full#", "partial#", "net GiB"
    );
    for policy in PolicyKind::ALL {
        let wd = run_one(policy, DayKind::Weekday, 4, 1);
        let we = run_one(policy, DayKind::Weekend, 4, 1);
        println!(
            "{:<16} {:>10} {:>10} {:>8} {:>9} {:>9.0}",
            policy.to_string(),
            pct(wd.energy_savings),
            pct(we.energy_savings),
            wd.migrations.full,
            wd.migrations.partial,
            wd.network_bytes().as_gib_f64(),
        );
    }
    println!("full-VM-only consolidation is capacity-bound at 4 GiB per VM;");
    println!("the hybrid policies fit an order of magnitude more idle VMs.");
}
