//! Figure 1: memory access pattern of an idle desktop, web server and
//! database VM over one idle hour.
//!
//! Prints the cumulative unique memory touched (MiB) per class every five
//! minutes. Paper endpoints: desktop 188.2 MiB, web 37.6 MiB, database
//! 30.6 MiB — under 5 % of the 4 GiB allocation.

use oasis_bench::{outln, Reporter};
use oasis_mem::ByteSize;
use oasis_sim::SimDuration;
use oasis_vm::workload::WorkloadClass;

fn main() {
    let out = Reporter::new("fig01");
    out.banner("Figure 1", "idle memory access patterns (cumulative unique MiB)");
    let alloc = ByteSize::gib(4);
    outln!(out, "{:>6}  {:>10}  {:>10}  {:>10}", "min", "desktop", "web", "database");
    for mins in (0..=60).step_by(5) {
        let t = SimDuration::from_mins(mins);
        let row: Vec<f64> = WorkloadClass::ALL
            .iter()
            .map(|c| c.idle_model().unique_touched(t, alloc).as_mib_f64())
            .collect();
        outln!(out, "{mins:>6}  {:>10.1}  {:>10.1}  {:>10.1}", row[0], row[1], row[2]);
    }
    let hour = SimDuration::from_hours(1);
    for class in WorkloadClass::ALL {
        let touched = class.idle_model().unique_touched(hour, alloc);
        outln!(
            out,
            "{class:<9} 1h total: {:>7.1} MiB ({:.2}% of allocation)",
            touched.as_mib_f64(),
            100.0 * touched.as_bytes() as f64 / alloc.as_bytes() as f64
        );
    }
    outln!(out, "paper:    desktop 188.2 MiB, web 37.6 MiB, database 30.6 MiB");
}
