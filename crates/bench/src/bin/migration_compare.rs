//! Migration-mechanism comparison (§2 background).
//!
//! Pre-copy vs post-copy vs partial migration for a 4 GiB VM across
//! dirtying rates and links — the trade-offs that motivate the hybrid:
//! pre-copy for active VMs (minimal degradation), partial for idle VMs
//! (minimal footprint and latency).

use oasis_bench::{outln, Reporter};
use oasis_mem::ByteSize;
use oasis_migration::partial::PartialMigration;
use oasis_migration::postcopy;
use oasis_migration::precopy::{self, PrecopyConfig};
use oasis_net::LinkSpec;
use oasis_power::MemoryServerProfile;

fn main() {
    let out = Reporter::new("migration_compare");
    out.banner("§2", "migration mechanisms compared (4 GiB VM)");
    let memory = ByteSize::gib(4);
    let ms = MemoryServerProfile::prototype();

    for (link_name, link) in [("GigE", LinkSpec::gige()), ("10GigE", LinkSpec::ten_gige())] {
        outln!(out, "--- {link_name} ---");
        outln!(
            out,
            "{:<26} {:>10} {:>10} {:>12}",
            "mechanism",
            "duration",
            "downtime",
            "bytes moved"
        );
        for (label, dirty_mib_s) in [("idle VM", 0.5), ("active VM", 15.0), ("hot VM", 60.0)] {
            let rate = dirty_mib_s * 1024.0 * 1024.0;
            let pre = precopy::migrate(memory, rate, link, &PrecopyConfig::default());
            outln!(
                out,
                "pre-copy   ({label:<9})    {:>9.1}s {:>9.2}s {:>9.1} GiB",
                pre.duration.as_secs_f64(),
                pre.downtime.as_secs_f64(),
                pre.bytes_sent.as_gib_f64(),
            );
            let post = postcopy::migrate(memory, rate / 4_096.0, link);
            outln!(
                out,
                "post-copy  ({label:<9})    {:>9.1}s {:>9.2}s {:>9.1} GiB",
                post.duration.as_secs_f64(),
                post.downtime.as_secs_f64(),
                post.bytes_sent.as_gib_f64(),
            );
        }
        // Partial migration applies to idle VMs only (§3.1).
        let partial = PartialMigration::with_upload(ByteSize::from_mib_f64(1_305.6)).run(&ms, link);
        outln!(
            out,
            "partial    (idle VM  )    {:>9.1}s {:>9.2}s {:>9.3} GiB (+1.3 GiB SAS)",
            partial.total.as_secs_f64(),
            partial.total.as_secs_f64(),
            partial.network_bytes.as_gib_f64(),
        );
    }
    outln!(out);
    outln!(out, "the hybrid: pre-copy keeps active VMs fast; partial moves idle");
    outln!(out, "VMs in seconds with two orders of magnitude less network data.");
}
