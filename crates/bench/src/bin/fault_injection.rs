//! Fault injection: how Oasis behaves when the substrate misbehaves.
//!
//! Two failure modes beyond the paper's evaluation:
//!
//! * lost memory-server page requests (memtap retries after a timeout);
//! * lost Wake-on-LAN packets (the manager retransmits each second).

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::ClusterConfig;
use oasis_core::PolicyKind;
use oasis_migration::lab::{LabOptions, MicroLab};
use oasis_sim::SimDuration;
use oasis_trace::DayKind;
use oasis_vm::apps::DesktopWorkload;

fn main() {
    let out = Reporter::new("fault_injection");
    out.banner("Fault injection", "lossy page requests and Wake-on-LAN");

    outln!(out, "-- memory-server request loss (20-minute consolidated idle) --");
    outln!(out, "{:<12} {:>8} {:>9} {:>12}", "loss rate", "faults", "retries", "extra time");
    for rate in [0.0, 0.01, 0.05, 0.10, 0.25] {
        let mut lab = MicroLab::with_options(
            1,
            LabOptions { serve_error_rate: rate, ..LabOptions::default() },
        );
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        outln!(
            out,
            "{:<12} {:>8} {:>9} {:>11.1}s",
            format!("{:.0}%", rate * 100.0),
            idle.faults,
            idle.retries,
            idle.retry_time.as_secs_f64(),
        );
    }

    outln!(out);
    outln!(out, "-- Wake-on-LAN loss (FulltoPartial weekday, paper scale) --");
    outln!(out, "{:<12} {:>9} {:>12} {:>10}", "loss rate", "savings", "WoL retries", "p99 delay");
    for rate in [0.0, 0.05, 0.20, 0.50] {
        let cfg = ClusterConfig::builder()
            .policy(PolicyKind::FullToPartial)
            .day(DayKind::Weekday)
            .wol_loss_rate(rate)
            .seed(1)
            .build()
            .expect("valid configuration");
        let mut r = oasis_cluster::ClusterSim::new(cfg).run_day();
        outln!(
            out,
            "{:<12} {:>9} {:>12} {:>9.1}s",
            format!("{:.0}%", rate * 100.0),
            pct(r.energy_savings),
            r.migrations.wol_retries,
            r.transition_delays.quantile(0.99).unwrap_or(0.0),
        );
    }
    outln!(out, "Oasis degrades gracefully: retries cost user latency, never");
    outln!(out, "correctness, and savings are insensitive to moderate loss.");
}
