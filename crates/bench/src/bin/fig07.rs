//! Figure 7: active VMs and fully powered hosts over a simulation day
//! (30 home + 4 consolidation hosts, 900 VMs, FulltoPartial).

use oasis_bench::chart::{column_chart, downsample};
use oasis_bench::{outln, Reporter};
use oasis_cluster::experiments::figure7;
use oasis_trace::DayKind;

fn main() {
    let out = Reporter::new("fig07");
    out.banner("Figure 7", "active VMs and powered hosts over a day (FulltoPartial)");
    for day in [DayKind::Weekday, DayKind::Weekend] {
        let r = figure7(day, 1);
        outln!(out, "--- {:?} ---", day);
        outln!(out, "{:>8} {:>11} {:>14}", "time", "active VMs", "powered hosts");
        let active = r.active_vms_series.points();
        let powered = r.powered_hosts_series.points();
        for i in (0..active.len()).step_by(6) {
            let (t, a) = active[i];
            let (_, p) = powered[i];
            outln!(out, "{:>8} {a:>11.0} {p:>14.0}", t.to_string());
        }
        outln!(
            out,
            "peak active: {:.0} of {} VMs ({:.0}%); min powered hosts: {:.0}",
            r.active_vms_series.max().unwrap_or(0.0),
            r.vms,
            100.0 * r.active_vms_series.max().unwrap_or(0.0) / f64::from(r.vms),
            powered.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min),
        );
        let actives: Vec<f64> = active.iter().map(|&(_, v)| v).collect();
        let powered_vals: Vec<f64> = powered.iter().map(|&(_, v)| v).collect();
        outln!(out);
        out.block(&column_chart(&downsample(&actives, 72), 8, "active VMs (00:00 → 24:00)"));
        outln!(out);
        out.block(&column_chart(
            &downsample(&powered_vals, 72),
            6,
            "powered hosts (00:00 → 24:00)",
        ));
    }
    outln!(out, "paper: peak 411 active VMs (46%), diurnal pattern with the");
    outln!(out, "       trough at 06:30; at minimum all 900 VMs fit 3 hosts.");
}
