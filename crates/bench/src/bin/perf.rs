//! Macro-benchmark: the simulator's wall-clock baseline.
//!
//! Times two representative workloads and writes a machine-readable
//! report so the perf trajectory has a committed baseline and CI can
//! catch regressions:
//!
//! * **day** — one full simulated day (FulltoPartial, weekday, 4
//!   consolidation hosts), reported as wall seconds and simulated
//!   seconds per wall second;
//! * **paper day** — one §5.1-scale day (30 homes × 30 VMs) with a
//!   per-phase wall breakdown from [`DayPhases`]. This workload always
//!   runs at paper scale regardless of `OASIS_PERF_SCALE`: it is the
//!   throughput the paper reproduction actually cares about, and at
//!   ~tens of milliseconds warm it is cheap enough for every CI run.
//!   An untimed warmup day fills the process-wide trace-sampling cache
//!   first, so the timed day measures steady state. The day is then
//!   re-run on the event-driven engine (`day_paper_event_*` keys,
//!   including its deterministic skip counters), and `--check` holds it
//!   to an absolute wall budget on top of the regression gates;
//! * **sweep** — a figure8-style sweep (every figure-8 policy × the
//!   consolidation-host axis × `OASIS_RUNS` seeds), run once on one
//!   worker and once on `OASIS_JOBS` workers (default 4), reported as
//!   wall seconds, simulations per second, and parallel speedup;
//! * **datacenter day** — the sharded multi-rack tier (`day_dc_*`
//!   keys): a `Scale::DATACENTER`-shape day across `OASIS_DC_RACKS`
//!   racks (default 5,000 ≈ 25k hosts / 200k VMs) on the event engine
//!   with the global epoch planner, run on the parallel pool and
//!   sequentially for the rack-parallel speedup, with per-rack wall
//!   percentiles and the skip-accounting roll-up.
//!
//! Environment: `OASIS_PERF_SCALE=paper|smoke` picks the cluster scale
//! (default `smoke`, the committed-baseline configuration), `OASIS_RUNS`
//! the seeds per sweep point (default 5), `OASIS_JOBS` the parallel
//! worker count (default 4), `OASIS_DC_RACKS` the datacenter rack count,
//! and `OASIS_PERF_OUT` the report path (default `BENCH_sim.json`).
//!
//! `perf --check <baseline.json>` re-runs the bench and exits non-zero
//! if either throughput drops below half the baseline's (a >2x
//! regression), which is what CI's bench-smoke job enforces.

use oasis_bench::timing::{monotonic_secs, wall};
use oasis_bench::{outln, runs, Reporter};
use oasis_cluster::experiments::{figure8_at, run_one_at, Scale, CONS_SWEEP};
use oasis_cluster::shard::{run_datacenter_day, DatacenterConfig, PlannerScope};
use oasis_cluster::{ClusterConfig, ClusterSim, DayPhases};
use oasis_core::PolicyKind;
use oasis_sim::pool::JOBS_ENV;
use oasis_sim::{EngineMode, WorkerPool};
use oasis_telemetry::{Level, Telemetry};
use oasis_trace::DayKind;

/// Simulated seconds in the day workload (288 five-minute intervals).
const DAY_SIM_SECS: f64 = 86_400.0;

/// Racks in the datacenter workload; `OASIS_DC_RACKS` overrides (CI's
/// bench-smoke leg runs 12 so the gate finishes in milliseconds).
const DC_RACKS_ENV: &str = "OASIS_DC_RACKS";

/// Absolute wall budget for the sharded datacenter day, scaled to the
/// rack count: a fixed construction allowance plus a per-rack slice.
/// The committed 5,000-rack baseline lands around 6.5 s single-core on
/// the reference machine, so the full tier keeps ~4× headroom while a
/// 12-rack CI leg still catches an order-of-magnitude regression.
fn dc_budget_secs(racks: u32) -> f64 {
    10.0 + 0.004 * f64::from(racks)
}

/// Absolute wall budget `--check` enforces on the event-engine paper
/// day. The skip-ahead design target was 5 ms, but at §5.1 scale every
/// interval carries session edges, so the heap can never skip a whole
/// interval and the warm day lands around 13 ms on the reference
/// machine (see DESIGN.md §17); the budget adds headroom for slower CI
/// hosts and single-shot timing noise while still catching an
/// order-of-magnitude regression outright.
const EVENT_DAY_BUDGET_SECS: f64 = 0.050;

/// Wall-clock throughput measurements for one perf run.
struct PerfReport {
    scale_name: String,
    jobs: usize,
    sweep_sims: usize,
    day_wall_secs: f64,
    day_sim_secs_per_sec: f64,
    day_paper_wall_secs: f64,
    day_paper_sim_secs_per_sec: f64,
    day_paper_phases: DayPhases,
    /// Bracketed wall not captured by any phase bucket (loop overhead,
    /// report assembly); closes the books so phases + other ≈ total.
    day_paper_other_secs: f64,
    /// The same §5.1 day on the event-driven engine (byte-identical
    /// report, skip-ahead loop).
    day_paper_event_wall_secs: f64,
    day_paper_event_sim_secs_per_sec: f64,
    day_paper_event_phases: DayPhases,
    day_paper_event_other_secs: f64,
    /// Planner epochs the event engine replayed instead of re-planning
    /// (deterministic for a fixed seed, so the committed baseline pins
    /// it).
    day_paper_event_planner_replays: u64,
    /// Host-intervals the event engine charged from the span cache
    /// instead of re-integrating (deterministic, like the replays).
    day_paper_event_cached_host_intervals: u64,
    /// Fraction of a profiled paper day's bracketed wall covered by the
    /// span profiler's `run_day` tree.
    day_paper_span_coverage: f64,
    sweep_seq_wall_secs: f64,
    sweep_par_wall_secs: f64,
    sweep_seq_sims_per_sec: f64,
    sweep_par_sims_per_sec: f64,
    speedup: f64,
    /// The sharded datacenter day (`Scale::DATACENTER` shape,
    /// `OASIS_DC_RACKS` racks, event engine, global epoch planner).
    day_dc_racks: u32,
    day_dc_hosts: u32,
    day_dc_vms: u32,
    day_dc_jobs: usize,
    day_dc_wall_secs: f64,
    /// Aggregate simulated seconds per wall second: every rack advances
    /// one full day, so the numerator is `racks × 86_400`.
    day_dc_sim_secs_per_sec: f64,
    day_dc_seq_wall_secs: f64,
    day_dc_speedup: f64,
    /// Per-rack wall percentiles (construction + stepping + finish).
    day_dc_rack_p50_secs: f64,
    day_dc_rack_p99_secs: f64,
    /// Skip-accounting roll-up across all racks (deterministic for a
    /// fixed seed, so the committed baseline pins them).
    day_dc_planner_replays: u64,
    day_dc_cached_host_intervals: u64,
    day_dc_fetch_skipped: u64,
    day_dc_rebalance_grants: u64,
}

impl PerfReport {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"perf\",\n  \"scale\": \"{}\",\n  \"jobs\": {},\n  \
             \"sweep_sims\": {},\n  \"day_wall_secs\": {:.4},\n  \
             \"day_sim_secs_per_sec\": {:.1},\n  \"day_paper_wall_secs\": {:.4},\n  \
             \"day_paper_sim_secs_per_sec\": {:.1},\n  \"day_paper_trace_secs\": {:.4},\n  \
             \"day_paper_construct_secs\": {:.4},\n  \"day_paper_fault_secs\": {:.4},\n  \
             \"day_paper_activation_secs\": {:.4},\n  \"day_paper_planner_secs\": {:.4},\n  \
             \"day_paper_fetch_secs\": {:.4},\n  \"day_paper_accounting_secs\": {:.4},\n  \
             \"day_paper_other_secs\": {:.4},\n  \"day_paper_span_coverage\": {:.4},\n  \
             \"day_paper_event_wall_secs\": {:.4},\n  \
             \"day_paper_event_sim_secs_per_sec\": {:.1},\n  \
             \"day_paper_event_trace_secs\": {:.4},\n  \
             \"day_paper_event_construct_secs\": {:.4},\n  \
             \"day_paper_event_fault_secs\": {:.4},\n  \
             \"day_paper_event_activation_secs\": {:.4},\n  \
             \"day_paper_event_planner_secs\": {:.4},\n  \
             \"day_paper_event_fetch_secs\": {:.4},\n  \
             \"day_paper_event_accounting_secs\": {:.4},\n  \
             \"day_paper_event_other_secs\": {:.4},\n  \
             \"day_paper_event_planner_replays\": {},\n  \
             \"day_paper_event_cached_host_intervals\": {},\n  \
             \"day_paper_event_budget_secs\": {EVENT_DAY_BUDGET_SECS:.4},\n  \
             \"sweep_seq_wall_secs\": {:.4},\n  \
             \"sweep_par_wall_secs\": {:.4},\n  \"sweep_seq_sims_per_sec\": {:.3},\n  \
             \"sweep_par_sims_per_sec\": {:.3},\n  \"speedup\": {:.2},\n  \
             \"day_dc_racks\": {},\n  \"day_dc_hosts\": {},\n  \"day_dc_vms\": {},\n  \
             \"day_dc_jobs\": {},\n  \"day_dc_wall_secs\": {:.4},\n  \
             \"day_dc_sim_secs_per_sec\": {:.1},\n  \"day_dc_seq_wall_secs\": {:.4},\n  \
             \"day_dc_speedup\": {:.2},\n  \"day_dc_rack_p50_secs\": {:.6},\n  \
             \"day_dc_rack_p99_secs\": {:.6},\n  \"day_dc_planner_replays\": {},\n  \
             \"day_dc_cached_host_intervals\": {},\n  \"day_dc_fetch_skipped\": {},\n  \
             \"day_dc_rebalance_grants\": {},\n  \"day_dc_budget_secs\": {:.4}\n}}\n",
            self.scale_name,
            self.jobs,
            self.sweep_sims,
            self.day_wall_secs,
            self.day_sim_secs_per_sec,
            self.day_paper_wall_secs,
            self.day_paper_sim_secs_per_sec,
            self.day_paper_phases.trace_sampling_secs,
            self.day_paper_phases.construct_secs,
            self.day_paper_phases.fault_service_secs,
            self.day_paper_phases.activation_secs,
            self.day_paper_phases.planner_secs,
            self.day_paper_phases.fetch_secs,
            self.day_paper_phases.accounting_secs,
            self.day_paper_other_secs,
            self.day_paper_span_coverage,
            self.day_paper_event_wall_secs,
            self.day_paper_event_sim_secs_per_sec,
            self.day_paper_event_phases.trace_sampling_secs,
            self.day_paper_event_phases.construct_secs,
            self.day_paper_event_phases.fault_service_secs,
            self.day_paper_event_phases.activation_secs,
            self.day_paper_event_phases.planner_secs,
            self.day_paper_event_phases.fetch_secs,
            self.day_paper_event_phases.accounting_secs,
            self.day_paper_event_other_secs,
            self.day_paper_event_planner_replays,
            self.day_paper_event_cached_host_intervals,
            self.sweep_seq_wall_secs,
            self.sweep_par_wall_secs,
            self.sweep_seq_sims_per_sec,
            self.sweep_par_sims_per_sec,
            self.speedup,
            self.day_dc_racks,
            self.day_dc_hosts,
            self.day_dc_vms,
            self.day_dc_jobs,
            self.day_dc_wall_secs,
            self.day_dc_sim_secs_per_sec,
            self.day_dc_seq_wall_secs,
            self.day_dc_speedup,
            self.day_dc_rack_p50_secs,
            self.day_dc_rack_p99_secs,
            self.day_dc_planner_replays,
            self.day_dc_cached_host_intervals,
            self.day_dc_fetch_skipped,
            self.day_dc_rebalance_grants,
            dc_budget_secs(self.day_dc_racks),
        )
    }
}

/// Extracts a `"key": number` field from the flat report JSON.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn scale_from_env() -> (Scale, String) {
    match std::env::var("OASIS_PERF_SCALE").as_deref() {
        Ok("paper") => (Scale::PAPER, "paper".to_string()),
        Ok("smoke") | Err(_) => (Scale::SMOKE, "smoke".to_string()),
        Ok(other) => {
            eprintln!("perf: unknown OASIS_PERF_SCALE {other:?} (paper|smoke)");
            std::process::exit(2);
        }
    }
}

fn run_perf(out: &Reporter) -> PerfReport {
    let (scale, scale_name) = scale_from_env();
    let runs = runs();
    let jobs = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let sweep_sims = PolicyKind::FIGURE8.len() * CONS_SWEEP.len() * runs as usize;

    out.banner("perf", "macro-benchmark: day + figure8-style sweep");
    outln!(out, "(scale {scale_name}: {} homes × {} VMs;", scale.home_hosts, scale.vms_per_host);
    outln!(out, " {runs} runs per sweep point; {jobs} parallel workers)");

    // Workload 1: one full simulated day.
    let (_, day_wall_secs) =
        wall(|| run_one_at(scale, PolicyKind::FullToPartial, DayKind::Weekday, 4, 1));
    let day_sim_secs_per_sec = DAY_SIM_SECS / day_wall_secs;
    outln!(out, "day:    {day_wall_secs:>8.3}s wall   {day_sim_secs_per_sec:>10.0} sim-secs/sec");
    out.sample("day", (day_wall_secs * 1e9) as u64, 1);

    // Workload 1b: the §5.1 rack, profiled per phase. Always run at
    // paper scale — this is the number the reproduction is judged on.
    // The untimed warmup day fills the process-wide trace-sampling
    // cache so the timed day measures the warm steady state; the phase
    // clock never feeds back into the simulation, so the profiled run
    // is byte-identical to a plain `run_day`.
    let paper_cfg = || ClusterConfig::builder().seed(1).build().expect("valid §5.1 configuration");
    ClusterSim::new(paper_cfg()).run_day();
    let mut day_paper_phases = DayPhases::default();
    let (_, day_paper_wall_secs) = wall(|| {
        ClusterSim::new_timed(paper_cfg(), &monotonic_secs, &mut day_paper_phases)
            .run_day_timed(&monotonic_secs, &mut day_paper_phases)
    });
    let day_paper_sim_secs_per_sec = DAY_SIM_SECS / day_paper_wall_secs;
    outln!(
        out,
        "paper:  {day_paper_wall_secs:>8.3}s wall   {day_paper_sim_secs_per_sec:>10.0} sim-secs/sec  (30×30 rack, warm)"
    );
    outln!(
        out,
        "        trace {:.4}s  construct {:.4}s  fault {:.4}s  activation {:.4}s",
        day_paper_phases.trace_sampling_secs,
        day_paper_phases.construct_secs,
        day_paper_phases.fault_service_secs,
        day_paper_phases.activation_secs
    );
    let day_paper_other_secs = (day_paper_wall_secs - day_paper_phases.total_secs()).max(0.0);
    outln!(
        out,
        "        planner {:.4}s  fetch {:.4}s  accounting {:.4}s  other {:.4}s  (phases+other {:.4}s)",
        day_paper_phases.planner_secs,
        day_paper_phases.fetch_secs,
        day_paper_phases.accounting_secs,
        day_paper_other_secs,
        day_paper_phases.total_secs() + day_paper_other_secs
    );
    out.sample("day_paper", (day_paper_wall_secs * 1e9) as u64, 1);

    // Workload 1b-event: the same §5.1 rack on the event-driven engine
    // (next-wake heap, planner replays, span-cache energy charging).
    // The report is byte-identical to the interval engine's — the
    // fidelity_equivalence battery locks that — so this measures pure
    // engine overhead, and the instrumented run also yields the
    // deterministic skip counters the committed baseline pins.
    let paper_event_cfg = || {
        let mut cfg = paper_cfg();
        cfg.engine = EngineMode::EventDriven;
        cfg
    };
    ClusterSim::new(paper_event_cfg()).run_day();
    let mut day_paper_event_phases = DayPhases::default();
    let ((_, event_stats), day_paper_event_wall_secs) = wall(|| {
        ClusterSim::new_timed(paper_event_cfg(), &monotonic_secs, &mut day_paper_event_phases)
            .run_day_instrumented(&monotonic_secs, &mut day_paper_event_phases)
    });
    let day_paper_event_sim_secs_per_sec = DAY_SIM_SECS / day_paper_event_wall_secs;
    outln!(
        out,
        "paper:  {day_paper_event_wall_secs:>8.3}s wall   {day_paper_event_sim_secs_per_sec:>10.0} sim-secs/sec  (30×30 rack, event engine)"
    );
    let day_paper_event_other_secs =
        (day_paper_event_wall_secs - day_paper_event_phases.total_secs()).max(0.0);
    outln!(
        out,
        "        replays {}/{} epochs  cached {}/{} host-intervals  fetch skipped {}/{}",
        event_stats.planner_replays,
        event_stats.planner_epochs,
        event_stats.cached_host_intervals,
        event_stats.host_intervals(),
        event_stats.fetch_skipped,
        event_stats.fetch_full + event_stats.fetch_skipped,
    );
    out.sample("day_paper_event", (day_paper_event_wall_secs * 1e9) as u64, 1);

    // Workload 1c: the same paper day with the hierarchical span
    // profiler attached (events filtered at Warn, no sinks — the cost
    // measured is the profiler itself). The tree's wall self-times must
    // account for the bracketed wall of the run they cover.
    let telemetry = Telemetry::new(Level::Warn);
    let mut profiled = ClusterSim::new(paper_cfg());
    profiled.attach_telemetry(telemetry.clone());
    let (_, profiled_wall_secs) = wall(move || profiled.run_day());
    let tree = telemetry.profiler().snapshot();
    let day_paper_span_coverage = if profiled_wall_secs > 0.0 {
        tree.total_wall_ns() as f64 / 1e9 / profiled_wall_secs
    } else {
        0.0
    };
    outln!(out, "profiled paper day ({profiled_wall_secs:.3}s bracketed wall):");
    for line in tree.render(true).lines() {
        outln!(out, "  {line}");
    }
    outln!(
        out,
        "        span self-times sum to {:.4}s — {:.1}% of the bracketed wall",
        tree.self_wall_ns_sum() as f64 / 1e9,
        day_paper_span_coverage * 100.0
    );

    // Workload 2: the sweep, sequential then parallel. The results must
    // agree exactly — the pool's order-preserving map is what makes the
    // parallel path trustworthy enough to benchmark.
    let seq = WorkerPool::sequential();
    let par = WorkerPool::new(jobs);
    let (seq_points, sweep_seq_wall_secs) =
        wall(|| figure8_at(&seq, scale, DayKind::Weekday, runs));
    let (par_points, sweep_par_wall_secs) =
        wall(|| figure8_at(&par, scale, DayKind::Weekday, runs));
    assert_eq!(seq_points, par_points, "parallel sweep diverged from sequential");

    let sweep_seq_sims_per_sec = sweep_sims as f64 / sweep_seq_wall_secs;
    let sweep_par_sims_per_sec = sweep_sims as f64 / sweep_par_wall_secs;
    let speedup = sweep_seq_wall_secs / sweep_par_wall_secs;
    outln!(
        out,
        "sweep:  {sweep_seq_wall_secs:>8.3}s seq    {sweep_seq_sims_per_sec:>10.2} sims/sec  ({sweep_sims} sims)"
    );
    outln!(
        out,
        "        {sweep_par_wall_secs:>8.3}s par    {sweep_par_sims_per_sec:>10.2} sims/sec  ({speedup:.2}x speedup)"
    );
    out.sample("sweep_seq", (sweep_seq_wall_secs * 1e9) as u64, 1);
    out.sample("sweep_par", (sweep_par_wall_secs * 1e9) as u64, 1);

    // Workload 3: the sharded datacenter day. Rack shape comes from
    // `Scale::DATACENTER`; `OASIS_DC_RACKS` scales the rack count down
    // for CI. Pinned to the event engine and the global epoch planner —
    // the configuration the headline number is quoted for — and run
    // once on the parallel pool and once sequentially for the
    // rack-parallel speedup. The shard equivalence suite locks both
    // runs byte-identical, so the comparison is pure scheduling.
    let dc_racks = match std::env::var(DC_RACKS_ENV) {
        Ok(v) => match v.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("perf: invalid {DC_RACKS_ENV} {v:?} (positive rack count)");
                std::process::exit(2);
            }
        },
        Err(_) => Scale::DATACENTER.racks,
    };
    let dc_scale = Scale { racks: dc_racks, ..Scale::DATACENTER };
    let mut dc = DatacenterConfig::at(dc_scale, PolicyKind::FullToPartial, DayKind::Weekday, 1)
        .planner(PlannerScope::Global);
    dc.base.engine = EngineMode::EventDriven;
    let (dc_report, day_dc_wall_secs) =
        wall(|| run_datacenter_day(&WorkerPool::new(jobs), &dc, &monotonic_secs));
    let (dc_seq_report, day_dc_seq_wall_secs) =
        wall(|| run_datacenter_day(&WorkerPool::sequential(), &dc, &monotonic_secs));
    let dc_stats = dc_report.stats_total();
    debug_assert_eq!(dc_stats, dc_seq_report.stats_total());
    let day_dc_sim_secs_per_sec = f64::from(dc_racks) * DAY_SIM_SECS / day_dc_wall_secs;
    let day_dc_speedup = day_dc_seq_wall_secs / day_dc_wall_secs;
    let mut rack_walls = dc_report.rack_wall_secs.clone();
    rack_walls.sort_by(f64::total_cmp);
    let day_dc_rack_p50_secs = rack_walls[rack_walls.len() / 2];
    let day_dc_rack_p99_secs = rack_walls[((rack_walls.len() - 1) as f64 * 0.99).round() as usize];
    outln!(
        out,
        "dc:     {day_dc_wall_secs:>8.3}s wall   {day_dc_sim_secs_per_sec:>10.0} sim-secs/sec  \
         ({} racks = {} hosts / {} VMs, event engine)",
        dc_report.racks,
        dc_report.hosts,
        dc_report.vms
    );
    outln!(
        out,
        "        {day_dc_seq_wall_secs:>8.3}s seq    ({day_dc_speedup:.2}x speedup on {jobs} \
         workers)  rack p50 {day_dc_rack_p50_secs:.4}s  p99 {day_dc_rack_p99_secs:.4}s"
    );
    outln!(
        out,
        "        replays {}/{} epochs  cached {}/{} host-intervals  fetch skipped {}/{}  grants {}",
        dc_stats.planner_replays,
        dc_stats.planner_epochs,
        dc_stats.cached_host_intervals,
        dc_stats.host_intervals(),
        dc_stats.fetch_skipped,
        dc_stats.fetch_full + dc_stats.fetch_skipped,
        dc_report.rebalance_grants,
    );
    out.sample("day_dc", (day_dc_wall_secs * 1e9) as u64, 1);

    PerfReport {
        scale_name,
        jobs,
        sweep_sims,
        day_wall_secs,
        day_sim_secs_per_sec,
        day_paper_wall_secs,
        day_paper_sim_secs_per_sec,
        day_paper_phases,
        day_paper_other_secs,
        day_paper_span_coverage,
        day_paper_event_wall_secs,
        day_paper_event_sim_secs_per_sec,
        day_paper_event_phases,
        day_paper_event_other_secs,
        day_paper_event_planner_replays: event_stats.planner_replays,
        day_paper_event_cached_host_intervals: event_stats.cached_host_intervals,
        sweep_seq_wall_secs,
        sweep_par_wall_secs,
        sweep_seq_sims_per_sec,
        sweep_par_sims_per_sec,
        speedup,
        day_dc_racks: dc_report.racks,
        day_dc_hosts: dc_report.hosts,
        day_dc_vms: dc_report.vms,
        day_dc_jobs: jobs,
        day_dc_wall_secs,
        day_dc_sim_secs_per_sec,
        day_dc_seq_wall_secs,
        day_dc_speedup,
        day_dc_rack_p50_secs,
        day_dc_rack_p99_secs,
        day_dc_planner_replays: dc_stats.planner_replays,
        day_dc_cached_host_intervals: dc_stats.cached_host_intervals,
        day_dc_fetch_skipped: dc_stats.fetch_skipped,
        day_dc_rebalance_grants: dc_report.rebalance_grants,
    }
}

/// Compares a fresh run against a committed baseline; a >2x throughput
/// drop on either workload fails the check.
fn check(report: &PerfReport, baseline_path: &str, out: &Reporter) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("perf: cannot read baseline {baseline_path}: {err}");
            return false;
        }
    };
    let mut ok = true;
    for (name, current, key) in [
        ("day", report.day_sim_secs_per_sec, "day_sim_secs_per_sec"),
        ("day(paper)", report.day_paper_sim_secs_per_sec, "day_paper_sim_secs_per_sec"),
        (
            "day(paper,event)",
            report.day_paper_event_sim_secs_per_sec,
            "day_paper_event_sim_secs_per_sec",
        ),
        ("sweep(par)", report.sweep_par_sims_per_sec, "sweep_par_sims_per_sec"),
    ] {
        let Some(base) = json_f64(&text, key) else {
            eprintln!("perf: baseline {baseline_path} is missing {key}");
            ok = false;
            continue;
        };
        let ratio = base / current.max(1e-12);
        if ratio > 2.0 {
            eprintln!(
                "perf: REGRESSION on {name}: {current:.2} vs baseline {base:.2} ({ratio:.2}x slower)"
            );
            ok = false;
        } else {
            outln!(out, "check {name}: {current:.2} vs baseline {base:.2} — ok");
        }
    }

    // The paper-day phase breakdowns (both engines) must account for
    // the bracketed wall: named phases plus the `other` residual re-sum
    // to the total (±5%, with an absolute floor for very fast machines
    // where the 4-decimal rounding dominates).
    let current_json = report.to_json();
    for (label, text) in [("baseline", text.as_str()), ("current", current_json.as_str())] {
        for (engine, prefix) in [("", "day_paper"), (",event", "day_paper_event")] {
            let total = json_f64(text, &format!("{prefix}_wall_secs")).unwrap_or(0.0);
            let sum: f64 = [
                "trace_secs",
                "construct_secs",
                "fault_secs",
                "activation_secs",
                "planner_secs",
                "fetch_secs",
                "accounting_secs",
                "other_secs",
            ]
            .iter()
            .map(|k| json_f64(text, &format!("{prefix}_{k}")).unwrap_or(f64::NAN))
            .sum();
            if !sum.is_finite() {
                // Older baselines lack the residual or event keys; the
                // throughput checks above still apply.
                outln!(out, "check phases({label}{engine}): missing keys — skipped");
                continue;
            }
            let tolerance = (total * 0.05).max(0.002);
            if (sum - total).abs() > tolerance {
                eprintln!(
                    "perf: phase accounting broken in {label}{engine}: phases+other {sum:.4}s \
                     vs {prefix}_wall_secs {total:.4}s"
                );
                ok = false;
            } else {
                outln!(out, "check phases({label}{engine}): {sum:.4}s ≈ {total:.4}s — ok");
            }
        }
    }

    // Absolute gate on the skip-ahead engine: the event-driven §5.1 day
    // must stay within its wall budget (the design target is 5 ms; the
    // budget leaves noise headroom — see EVENT_DAY_BUDGET_SECS).
    if report.day_paper_event_wall_secs > EVENT_DAY_BUDGET_SECS {
        eprintln!(
            "perf: event-engine paper day over budget: {:.4}s > {EVENT_DAY_BUDGET_SECS:.4}s",
            report.day_paper_event_wall_secs
        );
        ok = false;
    } else {
        outln!(
            out,
            "check day(paper,event) budget: {:.4}s ≤ {EVENT_DAY_BUDGET_SECS:.4}s — ok",
            report.day_paper_event_wall_secs
        );
    }

    // Datacenter-day gates. The absolute wall budget scales with the
    // rack count, so it applies at any `OASIS_DC_RACKS`; the throughput
    // comparison only makes sense against a baseline of the same rack
    // count (CI's 12-rack smoke leg skips it against the committed
    // 5,000-rack baseline).
    let dc_budget = dc_budget_secs(report.day_dc_racks);
    if report.day_dc_wall_secs > dc_budget {
        eprintln!(
            "perf: datacenter day over budget: {:.4}s > {dc_budget:.4}s ({} racks)",
            report.day_dc_wall_secs, report.day_dc_racks
        );
        ok = false;
    } else {
        outln!(
            out,
            "check day(dc) budget: {:.4}s ≤ {dc_budget:.4}s ({} racks) — ok",
            report.day_dc_wall_secs,
            report.day_dc_racks
        );
    }
    match json_f64(&text, "day_dc_racks") {
        Some(base_racks) if base_racks == f64::from(report.day_dc_racks) => {
            let base = json_f64(&text, "day_dc_sim_secs_per_sec").unwrap_or(0.0);
            let ratio = base / report.day_dc_sim_secs_per_sec.max(1e-12);
            if ratio > 2.0 {
                eprintln!(
                    "perf: REGRESSION on day(dc): {:.2} vs baseline {base:.2} ({ratio:.2}x slower)",
                    report.day_dc_sim_secs_per_sec
                );
                ok = false;
            } else {
                outln!(
                    out,
                    "check day(dc): {:.2} vs baseline {base:.2} — ok",
                    report.day_dc_sim_secs_per_sec
                );
            }
        }
        Some(_) => outln!(out, "check day(dc): baseline rack count differs — skipped"),
        None => outln!(out, "check day(dc): baseline has no day_dc keys — skipped"),
    }
    // Rack-parallel speedup is only measurable with real cores behind
    // the pool: gate it when the run had ≥8 workers, so single-core CI
    // boxes and reduced-jobs runs don't fail on scheduling noise.
    if report.day_dc_jobs >= 8 {
        if report.day_dc_speedup < 4.0 {
            eprintln!(
                "perf: datacenter rack parallelism under 4x on {} workers: {:.2}x",
                report.day_dc_jobs, report.day_dc_speedup
            );
            ok = false;
        } else {
            outln!(
                out,
                "check day(dc) speedup: {:.2}x on {} workers — ok",
                report.day_dc_speedup,
                report.day_dc_jobs
            );
        }
    } else {
        outln!(
            out,
            "check day(dc) speedup: {:.2}x on {} workers (<8, not gated)",
            report.day_dc_speedup,
            report.day_dc_jobs
        );
    }
    // The structural-skipping payoff DESIGN.md §17 predicted must
    // actually materialize at datacenter scale: the skip counters are
    // deterministic, so zero means the sparse-rack regime regressed.
    for (name, value) in [
        ("planner replays", report.day_dc_planner_replays),
        ("cached host-intervals", report.day_dc_cached_host_intervals),
        ("fetch skips", report.day_dc_fetch_skipped),
    ] {
        if value == 0 {
            eprintln!("perf: datacenter day recorded zero {name} — structural skipping is dead");
            ok = false;
        } else {
            outln!(out, "check day(dc) {name}: {value} — ok");
        }
    }
    ok
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let baseline = match argv.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: perf [--check BASELINE.json]");
            std::process::exit(2);
        }
    };

    let out = Reporter::new("perf");
    let report = run_perf(&out);

    let out_path = std::env::var("OASIS_PERF_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string());
    if let Err(err) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("perf: cannot write {out_path}: {err}");
        std::process::exit(1);
    }
    outln!(out, "wrote {out_path}");

    if let Some(path) = baseline {
        if !check(&report, &path, &out) {
            std::process::exit(1);
        }
        outln!(out, "no >2x regression vs {path}");
    }
}
