//! Table 3: alternative memory-server implementations.
//!
//! Sweeps the memory-server power budget from the 42.2 W prototype down
//! to 1 W. Paper: weekday savings climb 28% → 41%, weekend 43% → 68%.

use oasis_bench::{outln, pct, runs, Reporter};
use oasis_cluster::experiments::table3;

fn main() {
    let out = Reporter::new("table3");
    let runs = runs();
    out.banner("Table 3", "alternative memory-server power budgets");
    outln!(out, "({runs} runs per cell)");
    outln!(out, "{:<22} {:>10} {:>10}", "memory server", "weekday", "weekend");
    for (watts, weekday, weekend) in table3(runs) {
        let label = if (watts - 42.2).abs() < 1e-9 {
            "prototype (42.2 W)".to_string()
        } else {
            format!("{watts:.0} W")
        };
        outln!(out, "{label:<22} {:>10} {:>10}", pct(weekday), pct(weekend));
    }
    outln!(out, "paper: 28%/43% at 42.2 W rising to 41%/68% at 1 W.");
}
