//! Table 3: alternative memory-server implementations.
//!
//! Sweeps the memory-server power budget from the 42.2 W prototype down
//! to 1 W. Paper: weekday savings climb 28% → 41%, weekend 43% → 68%.

use oasis_bench::{banner, pct, runs};
use oasis_cluster::experiments::table3;

fn main() {
    let runs = runs();
    banner("Table 3", "alternative memory-server power budgets");
    println!("({runs} runs per cell)");
    println!("{:<22} {:>10} {:>10}", "memory server", "weekday", "weekend");
    for (watts, weekday, weekend) in table3(runs) {
        let label = if (watts - 42.2).abs() < 1e-9 {
            "prototype (42.2 W)".to_string()
        } else {
            format!("{watts:.0} W")
        };
        println!("{label:<22} {:>10} {:>10}", pct(weekday), pct(weekend));
    }
    println!("paper: 28%/43% at 42.2 W rising to 41%/68% at 1 W.");
}
