//! A full simulated week: five weekdays + two weekend days.
//!
//! Extends the paper's per-day evaluation to the natural deployment
//! horizon and reports the blended weekly savings.

use oasis_bench::{outln, pct, Reporter};
use oasis_cluster::experiments::run_week;
use oasis_cluster::ClusterConfig;
use oasis_core::PolicyKind;

fn main() {
    let out = Reporter::new("week");
    out.banner("Week", "seven consecutive simulated days per policy");
    outln!(
        out,
        "{:<16} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "policy",
        "weekdays",
        "weekend",
        "week",
        "baseline",
        "managed"
    );
    for policy in [
        PolicyKind::OnlyPartial,
        PolicyKind::Default,
        PolicyKind::FullToPartial,
        PolicyKind::NewHome,
    ] {
        let cfg =
            ClusterConfig::builder().policy(policy).seed(1).build().expect("valid configuration");
        let week = run_week(&cfg);
        let wd: f64 = week.days[..5].iter().map(|d| d.energy_savings).sum::<f64>() / 5.0;
        let we: f64 = week.days[5..].iter().map(|d| d.energy_savings).sum::<f64>() / 2.0;
        outln!(
            out,
            "{:<16} {:>9} {:>9} {:>9} {:>8.1}kWh {:>8.1}kWh",
            policy.to_string(),
            pct(wd),
            pct(we),
            pct(week.savings),
            week.baseline_kwh,
            week.total_kwh,
        );
    }
}
