//! Shared helpers for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates its rows/series; this library holds the
//! formatting helpers and the run-count convention they share.

#![warn(missing_docs)]

pub mod chart;
pub mod report;
pub mod timing;

pub use report::Reporter;

use std::env;

/// Number of repetitions for averaged experiments.
///
/// Defaults to the paper's five runs; override with `OASIS_RUNS=n` for
/// quick iterations.
pub fn runs() -> u64 {
    env::var("OASIS_RUNS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(5)
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("== {id}: {title}");
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds with one decimal.
pub fn secs(s: f64) -> String {
    format!("{s:.1}s")
}

/// Formats a `mean ± std` percentage pair.
pub fn pct_pm(mean: f64, std: f64) -> String {
    format!("{:>5.1}% ±{:>4.1}", mean * 100.0, std * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.283), "28.3%");
        assert_eq!(secs(15.72), "15.7s");
        assert_eq!(pct_pm(0.28, 0.012), " 28.0% ± 1.2");
    }

    #[test]
    fn runs_default() {
        // Cannot assert the env override here without races; the default
        // path must be at least 1.
        assert!(runs() >= 1);
    }
}
