//! Minimal wall-clock micro-benchmark harness.
//!
//! An offline stand-in for criterion: each `[[bench]]` target with
//! `harness = false` drives this module directly, so `cargo bench`
//! works with no registry access. The harness auto-calibrates the
//! iteration count to a fixed measurement window and reports mean
//! wall-clock cost per iteration.

use std::time::{Duration, Instant};

/// Measurement window each benchmark is calibrated to fill.
const TARGET: Duration = Duration::from_millis(200);

/// Iteration-count ceiling (guards against sub-nanosecond bodies).
const MAX_ITERS: u64 = 1 << 28;

/// Measures `f`, returning (nanoseconds per iteration, iterations).
fn measure(f: &mut impl FnMut()) -> (f64, u64) {
    // Warm-up: one untimed call to populate caches and lazy state.
    f();
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET || iters >= MAX_ITERS {
            return (elapsed.as_nanos() as f64 / iters as f64, iters);
        }
        let scale = TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        iters = ((iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64).min(MAX_ITERS);
    }
}

/// Times one invocation of `f`, returning its result and the elapsed
/// wall-clock seconds.
///
/// This is the macro-benchmark entry point: oasis-lint confines
/// `std::time` to this module, so `perf` and friends must take their
/// wall readings here rather than touching [`Instant`] directly.
pub fn wall<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Monotonic seconds since this function was first called.
///
/// This is the clock handed to phase-bracketing APIs (e.g.
/// `ClusterSim::run_day_timed`): the simulator itself never reads wall
/// time, it only brackets phases with whatever monotonic closure the
/// benchmark supplies from here.
pub fn monotonic_secs() -> f64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Runs one benchmark and prints its mean cost per iteration.
pub fn bench(name: &str, mut f: impl FnMut()) {
    let (ns, iters) = measure(&mut f);
    println!("{name:<44} {:>14} ns/iter  ({iters} iters)", format_ns(ns));
    crate::report::global().sample(name, ns as u64, iters);
}

/// Runs one benchmark that processes `bytes` per iteration and prints
/// both latency and throughput.
pub fn bench_bytes(name: &str, bytes: u64, mut f: impl FnMut()) {
    let (ns, iters) = measure(&mut f);
    let mib_s = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
    println!("{name:<44} {:>14} ns/iter  {mib_s:>10.1} MiB/s  ({iters} iters)", format_ns(ns));
    crate::report::global().sample(name, ns as u64, iters);
}

/// Runs one benchmark that processes `elements` per iteration and
/// prints both latency and element rate.
pub fn bench_elements(name: &str, elements: u64, mut f: impl FnMut()) {
    let (ns, iters) = measure(&mut f);
    let per_sec = elements as f64 / (ns / 1e9);
    println!(
        "{name:<44} {:>14} ns/iter  {:>12.3e} elem/s  ({iters} iters)",
        format_ns(ns),
        per_sec
    );
    crate::report::global().sample(name, ns as u64, iters);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{ns:.1}")
    }
}
