//! The shared experiment reporter.
//!
//! Every binary in `src/bin/` routes its output through a [`Reporter`]
//! instead of bare `println!`: lines still reach stdout unchanged, but
//! each one is mirrored as a structured [`Event::Note`] (and timing
//! results as [`Event::BenchSample`]) into a telemetry sink. Set
//! `OASIS_BENCH_TRACE=/path/to/file.jsonl` to capture the stream; the
//! file is appended to so `all_experiments` accumulates one trace.

use oasis_telemetry::{Event, JsonlSink, Level, Telemetry};
use std::path::Path;
use std::sync::OnceLock;

/// Prints experiment output and mirrors it into a telemetry sink.
pub struct Reporter {
    experiment: String,
    telemetry: Telemetry,
}

impl Reporter {
    /// Creates a reporter for the named experiment.
    ///
    /// When `OASIS_BENCH_TRACE` is set, events are appended to that
    /// JSONL file; otherwise telemetry is disabled and only stdout is
    /// written.
    pub fn new(experiment: &str) -> Reporter {
        let telemetry = match std::env::var_os("OASIS_BENCH_TRACE") {
            Some(path) => {
                let tel = Telemetry::new(Level::Info);
                match JsonlSink::append(Path::new(&path)) {
                    Ok(sink) => tel.attach(Box::new(sink)),
                    Err(err) => {
                        eprintln!("warning: cannot open OASIS_BENCH_TRACE {path:?}: {err}")
                    }
                }
                tel
            }
            None => Telemetry::disabled(),
        };
        Reporter::with_telemetry(experiment, telemetry)
    }

    /// Creates a reporter feeding an explicit telemetry bus (tests).
    pub fn with_telemetry(experiment: &str, telemetry: Telemetry) -> Reporter {
        Reporter { experiment: experiment.to_string(), telemetry }
    }

    /// Prints the standard experiment banner.
    pub fn banner(&self, id: &str, title: &str) {
        self.line(&format!("== {id}: {title}"));
    }

    /// Prints one line to stdout and mirrors it as a note event.
    pub fn line(&self, text: &str) {
        println!("{text}");
        if self.telemetry.is_enabled() && !text.is_empty() {
            self.telemetry.emit(Event::Note { text: format!("[{}] {text}", self.experiment) });
        }
    }

    /// Prints a pre-rendered multi-line block (e.g. a terminal chart)
    /// verbatim and mirrors each non-empty line as a note event.
    pub fn block(&self, text: &str) {
        print!("{text}");
        if self.telemetry.is_enabled() {
            for line in text.lines().filter(|l| !l.is_empty()) {
                self.telemetry.emit(Event::Note { text: format!("[{}] {line}", self.experiment) });
            }
        }
    }

    /// Records one timing measurement as a structured event.
    pub fn sample(&self, name: &str, ns_per_iter: u64, iters: u64) {
        self.telemetry.emit(Event::BenchSample {
            name: format!("{}/{name}", self.experiment),
            ns_per_iter,
            iters,
        });
    }

    /// The underlying telemetry bus.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.telemetry.flush();
    }
}

/// The process-wide reporter used by the micro-benchmark harness.
pub fn global() -> &'static Reporter {
    static GLOBAL: OnceLock<Reporter> = OnceLock::new();
    GLOBAL.get_or_init(|| Reporter::new("bench"))
}

/// Prints a formatted line through a [`Reporter`] (drop-in for
/// `println!`): `outln!(r)` for a blank line, `outln!(r, "fmt", args..)`
/// otherwise.
#[macro_export]
macro_rules! outln {
    ($r:expr) => {
        $r.line("")
    };
    ($r:expr, $($arg:tt)*) => {
        $r.line(&format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_telemetry::RingSink;

    #[test]
    fn lines_and_samples_reach_the_sink() {
        let tel = Telemetry::new(Level::Info);
        let ring = RingSink::new(16);
        tel.attach(Box::new(ring.clone()));
        let r = Reporter::with_telemetry("table1", tel);
        r.banner("table1", "energy per policy");
        outln!(r, "row {}", 1);
        outln!(r);
        r.sample("plan", 1_234, 100);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3); // blank line is not mirrored
        assert_eq!(
            snap[0].event,
            Event::Note { text: "[table1] == table1: energy per policy".into() }
        );
        assert_eq!(
            snap[2].event,
            Event::BenchSample { name: "table1/plan".into(), ns_per_iter: 1_234, iters: 100 }
        );
    }
}
