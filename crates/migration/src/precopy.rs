//! Iterative pre-copy live migration (§2).
//!
//! "Pre-copy live migration iteratively copies pages from source to
//! destination while the VM runs at the source. The first iteration copies
//! all pages … In subsequent iterations only pages dirtied by the VM's
//! execution during the previous iteration are copied. Once the set of
//! dirty pages is small or the limit of iterations exceeded, the VM is
//! suspended and all pages and execution context transferred."
//!
//! The model is the classic fixed-point: each round transfers the dirty
//! set of the previous round at the link rate while the VM keeps dirtying
//! at `dirty_rate`. It converges when the dirty rate is below the link
//! rate and stops at the configured threshold or round limit.

use oasis_mem::{ByteSize, PAGE_SIZE};
use oasis_net::LinkSpec;
use oasis_sim::SimDuration;

/// Tuning knobs of the pre-copy algorithm.
#[derive(Clone, Copy, Debug)]
pub struct PrecopyConfig {
    /// Stop-and-copy once the dirty set is at most this large.
    pub stop_threshold: ByteSize,
    /// Maximum copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Fixed control overhead for connection setup and handshakes.
    pub setup_overhead: SimDuration,
}

impl Default for PrecopyConfig {
    fn default() -> Self {
        PrecopyConfig {
            stop_threshold: ByteSize::mib(32),
            max_rounds: 30,
            setup_overhead: SimDuration::from_millis(800),
        }
    }
}

/// Result of one modeled pre-copy migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecopyOutcome {
    /// Total bytes sent over the network (all rounds + stop-and-copy).
    pub bytes_sent: ByteSize,
    /// Wall-clock migration time.
    pub duration: SimDuration,
    /// VM downtime during the final stop-and-copy.
    pub downtime: SimDuration,
    /// Copy rounds performed (excluding the stop-and-copy).
    pub rounds: u32,
    /// `true` if the round limit forced the stop (non-convergence).
    pub forced_stop: bool,
}

/// Models a pre-copy migration.
///
/// * `memory` — the VM's resident memory to move (its full allocation for
///   the evaluation's VMs);
/// * `dirty_rate` — sustained dirtying rate of the running VM, in bytes
///   per second;
/// * `link` — the migration path.
///
/// # Examples
///
/// ```
/// use oasis_migration::precopy::{migrate, PrecopyConfig};
/// use oasis_mem::ByteSize;
/// use oasis_net::LinkSpec;
///
/// // An idle 4 GiB VM over 10 GigE converges in seconds.
/// let out = migrate(
///     ByteSize::gib(4),
///     1.0e6,
///     LinkSpec::ten_gige(),
///     &PrecopyConfig::default(),
/// );
/// assert!(out.duration.as_secs_f64() < 6.0);
/// assert!(!out.forced_stop);
/// ```
pub fn migrate(
    memory: ByteSize,
    dirty_rate: f64,
    link: LinkSpec,
    config: &PrecopyConfig,
) -> PrecopyOutcome {
    let rate = link.bandwidth;
    let mut to_send = memory.as_bytes() as f64;
    let mut total = 0.0;
    let mut time = config.setup_overhead.as_secs_f64();
    let mut rounds = 0;
    let mut forced_stop = false;

    loop {
        if rounds >= config.max_rounds {
            forced_stop = true;
            break;
        }
        // Send the current dirty set while the VM keeps running.
        let round_time = to_send / rate;
        total += to_send;
        time += round_time;
        rounds += 1;
        // Pages dirtied during the round (capped at the VM's memory).
        let dirtied = (dirty_rate * round_time).min(memory.as_bytes() as f64);
        if dirtied <= config.stop_threshold.as_bytes() as f64 {
            to_send = dirtied;
            break;
        }
        // Non-convergence: the dirty set stopped shrinking.
        if dirtied >= to_send && rounds > 1 {
            to_send = dirtied;
            forced_stop = true;
            break;
        }
        to_send = dirtied;
    }

    // Stop-and-copy: VM suspended, residual dirty set + context moved.
    let downtime = to_send / rate + 0.05;
    total += to_send;
    time += downtime;

    PrecopyOutcome {
        bytes_sent: ByteSize::bytes(total.round() as u64),
        duration: SimDuration::from_secs_f64(time),
        downtime: SimDuration::from_secs_f64(downtime),
        rounds,
        forced_stop,
    }
}

/// Closed-form round count for the pre-copy recurrence, in real
/// arithmetic.
///
/// With `q = dirty_rate / rate < 1` the dirty set follows the geometric
/// chain `d_k = M·qᵏ`, so convergence (`d_k ≤ T`) lands at
/// `k = ⌈ln(T/M) / ln(q)⌉`. The iterative model computes the chain in
/// f64, whose rounding can cross the threshold one round to either side
/// of this value; [`migrate_batched`] therefore uses the estimate as a
/// model check only and pins the exact count against the replayed chain.
///
/// Returns `(rounds, forced_stop)` under `config`'s threshold and round
/// limit.
pub fn analytic_round_estimate(
    memory: ByteSize,
    dirty_rate: f64,
    link: LinkSpec,
    config: &PrecopyConfig,
) -> (u32, bool) {
    let m = memory.as_bytes() as f64;
    let t = config.stop_threshold.as_bytes() as f64;
    let q = dirty_rate / link.bandwidth;
    if config.max_rounds == 0 {
        return (0, true);
    }
    if q * m <= t {
        // d₁ already under the threshold (covers dirty_rate = 0).
        return (1, false);
    }
    if q >= 1.0 {
        // The dirty set never shrinks: the non-convergence check fires as
        // soon as it can (round 2), or the round limit if lower.
        return (config.max_rounds.min(2), true);
    }
    let k = ((t / m).ln() / q.ln()).ceil().max(1.0) as u32;
    if k <= config.max_rounds {
        (k, false)
    } else {
        (config.max_rounds, true)
    }
}

/// Batched (analytic) equivalent of [`migrate`]: plans the round count
/// from the dirty-set recurrence, then replays exactly that many
/// accumulation steps — bit-identical to the iterative loop.
///
/// The plan scan walks the dirty-set chain `d_{k+1} = dirty_rate·(d_k /
/// rate)` applying the iterative model's exact stop conditions (it must:
/// [`analytic_round_estimate`]'s closed form is only good to ±1 round at
/// f64 threshold boundaries). The scan does no accumulation; the replay
/// then performs the same f64 additions in the same order as [`migrate`]
/// — f64 addition is not associative, so bit-identity requires the
/// operand sequence, not just the set of terms.
pub fn migrate_batched(
    memory: ByteSize,
    dirty_rate: f64,
    link: LinkSpec,
    config: &PrecopyConfig,
) -> PrecopyOutcome {
    let rate = link.bandwidth;
    let m = memory.as_bytes() as f64;
    let t = config.stop_threshold.as_bytes() as f64;

    // Plan: how many rounds run, and whether the stop was forced.
    let (rounds, forced_stop) = if config.max_rounds == 0 {
        (0, true)
    } else {
        let d1 = (dirty_rate * (m / rate)).min(m);
        if d1 <= t {
            (1, false)
        } else {
            let mut k = 1u32;
            let mut d = d1;
            loop {
                if k >= config.max_rounds {
                    break (k, true);
                }
                let next = (dirty_rate * (d / rate)).min(m);
                k += 1;
                if next <= t {
                    break (k, false);
                }
                if next >= d {
                    break (k, true);
                }
                d = next;
            }
        }
    };

    // Replay: the planned rounds' sums, in the iterative operand order.
    let mut to_send = m;
    let mut total = 0.0;
    let mut time = config.setup_overhead.as_secs_f64();
    for _ in 0..rounds {
        let round_time = to_send / rate;
        total += to_send;
        time += round_time;
        to_send = (dirty_rate * round_time).min(m);
    }
    let downtime = to_send / rate + 0.05;
    total += to_send;
    time += downtime;

    PrecopyOutcome {
        bytes_sent: ByteSize::bytes(total.round() as u64),
        duration: SimDuration::from_secs_f64(time),
        downtime: SimDuration::from_secs_f64(downtime),
        rounds,
        forced_stop,
    }
}

/// Dispatches between [`migrate`] and [`migrate_batched`] on the model
/// fidelity — the two agree bit-for-bit, which the differential suite
/// locks.
pub fn migrate_at(
    fidelity: oasis_sim::ModelFidelity,
    memory: ByteSize,
    dirty_rate: f64,
    link: LinkSpec,
    config: &PrecopyConfig,
) -> PrecopyOutcome {
    match fidelity {
        oasis_sim::ModelFidelity::PerPage => migrate(memory, dirty_rate, link, config),
        oasis_sim::ModelFidelity::Batched => migrate_batched(memory, dirty_rate, link, config),
    }
}

/// Convenience: dirty rate in bytes/s from pages/s.
pub fn pages_per_sec(pages: f64) -> f64 {
    pages * PAGE_SIZE as f64
}

/// Like [`migrate`], but records span timing and outcome metrics on the
/// given telemetry bus (`migration_bytes_total`, `migration_duration_us`
/// and `migration_downtime_us`, all labeled `kind="precopy"`).
pub fn migrate_traced(
    telemetry: &oasis_telemetry::Telemetry,
    memory: ByteSize,
    dirty_rate: f64,
    link: LinkSpec,
    config: &PrecopyConfig,
) -> PrecopyOutcome {
    let span = telemetry.span("precopy_migrate");
    let out = migrate(memory, dirty_rate, link, config);
    span.end();
    let m = telemetry.metrics();
    m.counter("migration_bytes_total", &[("kind", "precopy")]).add(out.bytes_sent.as_bytes());
    m.histogram("migration_duration_us", &[("kind", "precopy")]).record(out.duration.as_micros());
    m.histogram("migration_downtime_us", &[("kind", "precopy")]).record(out.downtime.as_micros());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB4: ByteSize = ByteSize::gib(4);

    #[test]
    fn figure5_full_migration_over_gige_takes_about_41s() {
        // §4.4.2: fully migrating the primed desktop VM took 41 s on GigE.
        // The VM keeps dirtying ~15 MiB/s while migrating.
        let out =
            migrate(GIB4, 15.0 * 1024.0 * 1024.0, LinkSpec::gige(), &PrecopyConfig::default());
        let secs = out.duration.as_secs_f64();
        assert!((38.0..44.0).contains(&secs), "duration {secs}");
        assert!(out.bytes_sent > GIB4, "iterations resend dirty pages");
        assert!(!out.forced_stop);
        assert!(out.rounds >= 2);
    }

    #[test]
    fn ten_gige_is_much_faster() {
        let out =
            migrate(GIB4, 15.0 * 1024.0 * 1024.0, LinkSpec::ten_gige(), &PrecopyConfig::default());
        assert!(out.duration.as_secs_f64() < 6.0);
    }

    #[test]
    fn idle_vm_converges_in_one_round() {
        let out = migrate(GIB4, 0.0, LinkSpec::gige(), &PrecopyConfig::default());
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bytes_sent, GIB4);
        assert!(out.downtime.as_secs_f64() < 0.1);
    }

    #[test]
    fn hot_vm_forces_stop() {
        // Dirtying faster than the link: never converges.
        let out =
            migrate(GIB4, 200.0 * 1024.0 * 1024.0, LinkSpec::gige(), &PrecopyConfig::default());
        assert!(out.forced_stop);
        assert!(out.downtime.as_secs_f64() > 1.0, "big stop-and-copy");
    }

    #[test]
    fn round_limit_respected() {
        let config = PrecopyConfig { max_rounds: 3, ..PrecopyConfig::default() };
        let out = migrate(GIB4, 60.0 * 1024.0 * 1024.0, LinkSpec::gige(), &config);
        assert!(out.rounds <= 3);
    }

    #[test]
    fn downtime_below_total_duration() {
        let out =
            migrate(GIB4, 10.0 * 1024.0 * 1024.0, LinkSpec::gige(), &PrecopyConfig::default());
        assert!(out.downtime < out.duration);
    }

    #[test]
    fn pages_per_sec_conversion() {
        assert_eq!(pages_per_sec(1.0), 4_096.0);
    }

    #[test]
    fn batched_matches_iterative_on_canonical_cases() {
        let cfg = PrecopyConfig::default();
        let mib = 1024.0 * 1024.0;
        for (mem, dirty_rate) in [
            (GIB4, 0.0),                     // Idle: one round.
            (GIB4, 15.0 * mib),              // Figure 5's primed desktop.
            (GIB4, 60.0 * mib),              // Slow convergence.
            (GIB4, 200.0 * mib),             // Hotter than GigE: forced.
            (ByteSize::mib(16), 15.0 * mib), // Under the stop threshold.
        ] {
            for link in [LinkSpec::gige(), LinkSpec::ten_gige()] {
                assert_eq!(
                    migrate(mem, dirty_rate, link, &cfg),
                    migrate_batched(mem, dirty_rate, link, &cfg),
                    "mem {mem:?} dirty {dirty_rate} link {link:?}"
                );
            }
        }
    }

    #[test]
    fn batched_matches_iterative_randomized() {
        // The satellite property: for randomized writable-working-set
        // sizes, dirty rates, thresholds and round limits, the analytic
        // model reproduces the iterative loop bit-for-bit (PrecopyOutcome
        // equality covers every field, durations at microsecond grain and
        // bytes exactly).
        let mut rng = oasis_sim::SimRng::new(0x93E_C097);
        for case in 0..500 {
            let memory = ByteSize::bytes(rng.below(8 << 30) + 1);
            let link = if rng.chance(0.5) { LinkSpec::gige() } else { LinkSpec::ten_gige() };
            let dirty_rate = rng.range_f64(0.0, 2.5 * link.bandwidth);
            let config = PrecopyConfig {
                stop_threshold: ByteSize::bytes(rng.below(256 << 20) + 1),
                max_rounds: [0, 1, 2, 3, 30][rng.index(5)],
                setup_overhead: SimDuration::from_millis(rng.below(2_000)),
            };
            let iterative = migrate(memory, dirty_rate, link, &config);
            let batched = migrate_batched(memory, dirty_rate, link, &config);
            assert_eq!(iterative, batched, "case {case}: mem {memory:?} dirty {dirty_rate}");
        }
    }

    #[test]
    fn migrate_at_dispatches_on_fidelity() {
        use oasis_sim::ModelFidelity;
        let cfg = PrecopyConfig::default();
        let rate = 15.0 * 1024.0 * 1024.0;
        let a = migrate_at(ModelFidelity::PerPage, GIB4, rate, LinkSpec::gige(), &cfg);
        let b = migrate_at(ModelFidelity::Batched, GIB4, rate, LinkSpec::gige(), &cfg);
        assert_eq!(a, b);
        assert_eq!(a, migrate(GIB4, rate, LinkSpec::gige(), &cfg));
    }

    #[test]
    fn analytic_estimate_within_one_round_of_exact() {
        // Well away from the q → 1 regime the closed form pins the round
        // count to ±1 of the f64 chain.
        let cfg = PrecopyConfig::default();
        let link = LinkSpec::gige();
        let mut rng = oasis_sim::SimRng::new(7);
        for _ in 0..200 {
            let memory = ByteSize::mib(rng.below(8_128) + 64);
            let dirty_rate = rng.range_f64(0.0, 0.5) * link.bandwidth;
            let exact = migrate(memory, dirty_rate, link, &cfg);
            let (rounds, forced) = analytic_round_estimate(memory, dirty_rate, link, &cfg);
            assert!(
                rounds.abs_diff(exact.rounds) <= 1,
                "estimate {rounds} vs exact {} for mem {memory:?} dirty {dirty_rate}",
                exact.rounds
            );
            assert!(!forced, "q <= 0.5 always converges within the default limit");
            assert!(!exact.forced_stop);
        }
    }
}
