//! Post-copy live migration (§2), modeled for comparison.
//!
//! "Post-copy live migration starts by suspending the VM at the source and
//! transferring its execution context to the destination host, where the
//! VM resumes execution. Memory is actively pushed from the source while
//! the VM executes on the destination. When the VM accesses pages that
//! have not yet arrived … pages are faulted in from the source."
//!
//! Unlike partial migration, post-copy pushes the *entire* memory image,
//! so the destination must reserve the full allocation — the property that
//! limits consolidation density (§2).

use oasis_mem::{ByteSize, PAGE_SIZE};
use oasis_net::LinkSpec;
use oasis_sim::SimDuration;

/// Result of one modeled post-copy migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PostcopyOutcome {
    /// Total bytes sent (context + full memory push + fault duplicates).
    pub bytes_sent: ByteSize,
    /// Time until every page has arrived at the destination.
    pub duration: SimDuration,
    /// VM downtime (context transfer only).
    pub downtime: SimDuration,
    /// Remote faults serviced while the push was in flight.
    pub remote_faults: u64,
}

/// Models a post-copy migration.
///
/// * `memory` — VM memory to push;
/// * `access_rate` — rate at which the running VM touches not-yet-arrived
///   pages (pages per second), generating demand-fetches that race the
///   background push;
/// * `link` — the migration path.
pub fn migrate(memory: ByteSize, access_rate: f64, link: LinkSpec) -> PostcopyOutcome {
    // Execution context: vCPU state, device state; small and fixed.
    let context = ByteSize::mib(8);
    let downtime = link.transfer_time(context);

    // The push saturates the link; every page arrives after memory/rate.
    let push_time = memory.as_bytes() as f64 / link.bandwidth;

    // Faults hit pages that have not arrived yet. With a linear push, the
    // probability a touched page is still missing decays linearly, so the
    // expected fault count is access_rate × push_time / 2.
    let remote_faults = (access_rate * push_time / 2.0).round() as u64;
    let fault_bytes = ByteSize::bytes(remote_faults * PAGE_SIZE);

    PostcopyOutcome {
        bytes_sent: context + memory + fault_bytes,
        duration: downtime + SimDuration::from_secs_f64(push_time),
        downtime,
        remote_faults,
    }
}

/// Like [`migrate`], but records span timing and outcome metrics on the
/// given telemetry bus (labeled `kind="postcopy"`), including the count
/// of remote demand faults.
pub fn migrate_traced(
    telemetry: &oasis_telemetry::Telemetry,
    memory: ByteSize,
    access_rate: f64,
    link: LinkSpec,
) -> PostcopyOutcome {
    let span = telemetry.span("postcopy_migrate");
    let out = migrate(memory, access_rate, link);
    span.end();
    let m = telemetry.metrics();
    m.counter("migration_bytes_total", &[("kind", "postcopy")]).add(out.bytes_sent.as_bytes());
    m.counter("postcopy_remote_faults_total", &[]).add(out.remote_faults);
    m.histogram("migration_duration_us", &[("kind", "postcopy")]).record(out.duration.as_micros());
    m.histogram("migration_downtime_us", &[("kind", "postcopy")]).record(out.downtime.as_micros());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_is_tiny() {
        let out = migrate(ByteSize::gib(4), 100.0, LinkSpec::gige());
        assert!(out.downtime.as_secs_f64() < 0.2);
        assert!(out.duration.as_secs_f64() > 30.0);
    }

    #[test]
    fn sends_at_least_full_memory() {
        let out = migrate(ByteSize::gib(4), 0.0, LinkSpec::ten_gige());
        assert!(out.bytes_sent >= ByteSize::gib(4));
        assert_eq!(out.remote_faults, 0);
    }

    #[test]
    fn faster_access_means_more_remote_faults() {
        let slow = migrate(ByteSize::gib(4), 10.0, LinkSpec::gige());
        let fast = migrate(ByteSize::gib(4), 1_000.0, LinkSpec::gige());
        assert!(fast.remote_faults > slow.remote_faults);
        assert!(fast.bytes_sent > slow.bytes_sent);
    }

    #[test]
    fn sends_less_total_than_precopy_for_hot_vms() {
        // Post-copy's selling point: no iterative resending.
        let hot_rate_bytes = 60.0 * 1024.0 * 1024.0;
        let pre = crate::precopy::migrate(
            ByteSize::gib(4),
            hot_rate_bytes,
            LinkSpec::gige(),
            &crate::precopy::PrecopyConfig::default(),
        );
        let post = migrate(ByteSize::gib(4), hot_rate_bytes / PAGE_SIZE as f64, LinkSpec::gige());
        assert!(post.bytes_sent < pre.bytes_sent);
    }
}
