//! The §4.4 micro-benchmark laboratory.
//!
//! Two servers and a memory server, wired exactly like the prototype
//! testbed: a *custom host* (home, S3-capable, with the Atom + SAS memory
//! server) and an always-powered *consolidation host*, connected over
//! Gigabit Ethernet. A single 4 GiB desktop VM is primed with Table 2's
//! Workload 1, idles, partial-migrates, runs idle on the consolidation
//! host with pages faulting in from the memory server, reintegrates, runs
//! Workload 2 and partial-migrates again — the exact flow behind
//! Figures 5–6 and the §4.4.3 traffic numbers.
//!
//! ## Calibration constants
//!
//! The lab needs a handful of rates the paper implies but does not state
//! directly; each is documented where defined and validated against the
//! published end-to-end numbers by this module's tests:
//!
//! * `OS_BASE_PAGES` — pages a freshly booted GNOME desktop plus page
//!   cache touch before the workload starts.
//! * `PRIME_WRITE_FRACTION` — fraction of workload-touched pages that are
//!   written (heap/buffers) rather than only read (code/cache).
//! * consolidated-idle model — unique-touch curve and fetch/dirty split
//!   while the partial VM runs on the consolidation host.

use oasis_host::agent::HostAgent;
use oasis_host::guest::GuestMemoryImage;
use oasis_host::hypervisor::GuestAccess;
use oasis_host::memtap::Memtap;
use oasis_mem::compress::{compress, PageMix};
use oasis_mem::{ByteSize, PageNum, PAGE_SIZE};
use oasis_net::{LinkSpec, TrafficAccountant, TrafficClass};
use oasis_power::{HostEnergyProfile, MemoryServerProfile};
use oasis_sim::{ModelFidelity, SimDuration, SimRng, SimTime};
use oasis_vm::apps::{Application, DesktopWorkload};
use oasis_vm::workload::WorkloadClass;
use oasis_vm::{Vm, VmId, VmState};

use crate::partial::{PartialMigration, PartialOutcome, DESCRIPTOR_BYTES};
use crate::precopy::{self, PrecopyConfig, PrecopyOutcome};
use crate::reintegration::{Reintegration, ReintegrationOutcome};

/// Pages the booted OS + page cache touch before any workload (≈1.45 GiB).
const OS_BASE_PAGES: u64 = 380_000;

/// Fraction of workload-touched pages that are written.
const PRIME_WRITE_FRACTION: f64 = 0.35;

/// Sustained dirtying rate of the active primed desktop, bytes/s (drives
/// the pre-copy iterations that stretch full migration to ~41 s on GigE).
const ACTIVE_DIRTY_RATE: f64 = 15.0 * 1024.0 * 1024.0;

/// Background page dirtying while idle, pages per minute (e-mail fetches,
/// IM keep-alives, §4.4.1).
const IDLE_DIRTY_PAGES_PER_MIN: f64 = 1_300.0;

/// Consolidated-idle unique-touch curve: saturating size.
const CONS_IDLE_WSS_MIB: f64 = 240.0;
/// Consolidated-idle unique-touch curve: time constant.
const CONS_IDLE_TAU_SECS: f64 = 600.0;
/// Consolidated-idle unique-touch curve: linear growth (MiB per minute).
const CONS_IDLE_GROWTH_MIB_PER_MIN: f64 = 1.2;
/// Fraction of consolidated first-touches that read existing state and so
/// must fetch from the memory server; the rest are fresh allocations whose
/// fetch the overwrite-obviation logic skips (§4.4.3).
const CONS_FETCH_FRACTION: f64 = 0.44;
/// Fraction of fetched pages subsequently written.
const CONS_FETCHED_WRITE_FRACTION: f64 = 0.5;
/// Background re-dirtying rate on the consolidation host, pages/minute.
/// Higher than at home: the freshly created partial VM's daemons churn
/// buffers they just re-established.
const CONS_REDIRTY_PAGES_PER_MIN: f64 = 2_600.0;

/// Where the lab VM currently runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmLocation {
    /// Full VM at its home (the custom host).
    Home,
    /// Partial VM on the consolidation host.
    Consolidated,
}

/// Report of one partial migration in the lab.
#[derive(Clone, Copy, Debug)]
pub struct PartialReport {
    /// Whether differential upload applied.
    pub differential: bool,
    /// Pages written to the memory server.
    pub uploaded_pages: u64,
    /// The phase/latency breakdown.
    pub outcome: PartialOutcome,
}

/// Report of a consolidated idle period.
#[derive(Clone, Copy, Debug)]
pub struct ConsolidatedIdleReport {
    /// Remote faults serviced by the memory server.
    pub faults: u64,
    /// Compressed bytes fetched over the network.
    pub fetched: ByteSize,
    /// Pages dirty on the consolidation host at the end.
    pub dirty_pages: u64,
    /// Requests that timed out and were retried (fault injection).
    pub retries: u64,
    /// Extra latency spent on retries.
    pub retry_time: SimDuration,
}

/// Optimization toggles for ablation studies (§4.3's upload
/// optimizations and §4.4.3's overwrite obviation).
#[derive(Clone, Copy, Debug)]
pub struct LabOptions {
    /// Per-page compression before uploads (§4.3). Off means raw pages
    /// hit the SAS drive.
    pub compression: bool,
    /// Differential upload: only dirty-since-last-upload pages rewritten
    /// (§4.3). Off means every upload rewrites the full touched set.
    pub differential_upload: bool,
    /// Skip transmitting pages that will be completely overwritten
    /// (§4.4.3). Off means all dirty pages cross the wire at
    /// reintegration.
    pub overwrite_obviation: bool,
    /// Fault injection: probability that a memory-server page request
    /// times out and memtap must retry (network loss, daemon hiccup).
    pub serve_error_rate: f64,
    /// Run all memtap↔memory-server traffic over the §4.3 secure channel
    /// (certificate handshake + AEAD records).
    pub secure_channel: bool,
    /// Page-level model fidelity: the per-page hot loops or their batched
    /// equivalents. The two are bit-identical (locked by the differential
    /// equivalence suite); `Batched` is the fast path.
    pub fidelity: ModelFidelity,
}

impl Default for LabOptions {
    fn default() -> Self {
        LabOptions {
            compression: true,
            differential_upload: true,
            overwrite_obviation: true,
            serve_error_rate: 0.0,
            secure_channel: false,
            fidelity: ModelFidelity::from_env(),
        }
    }
}

/// Memtap's retry timeout when a page request is lost.
const SERVE_RETRY_TIMEOUT: SimDuration = SimDuration::from_micros(50_000);

/// The two-host micro-benchmark environment.
pub struct MicroLab {
    /// The custom (home) host with its memory server.
    pub home: HostAgent,
    /// The HP consolidation host (always powered, §4.4.1).
    pub consolidation: HostAgent,
    /// Per-class traffic accounting.
    pub traffic: TrafficAccountant,
    vm_id: VmId,
    image: GuestMemoryImage,
    location: VmLocation,
    memtap: Memtap,
    rng: SimRng,
    now: SimTime,
    /// Bump pointer handing out fresh page ranges.
    next_fresh_page: u64,
    /// Compressed size of one untouched (zero) page.
    zero_page_cost: ByteSize,
    /// Pages dirtied at home since the last memory-server upload.
    home_dirty_since_upload: Vec<PageNum>,
    /// Whether a first (full) upload has happened.
    uploaded_once: bool,
    /// Optimization toggles.
    options: LabOptions,
}

impl MicroLab {
    /// Builds the testbed of §4.4.1 around a 4 GiB desktop VM.
    pub fn new(seed: u64) -> Self {
        Self::with_options(seed, LabOptions::default())
    }

    /// Builds the testbed with explicit optimization toggles.
    pub fn with_options(seed: u64, options: LabOptions) -> Self {
        let host_profile = HostEnergyProfile::table1();
        let ms_profile = MemoryServerProfile::prototype();
        let mut home = HostAgent::new_home(0, ByteSize::gib(128), &host_profile, ms_profile);
        let mut consolidation = HostAgent::new_consolidation(1, ByteSize::gib(512), &host_profile);
        // The HP host lacks S3 support and always stays powered (§4.4.1).
        let _ = consolidation.acpi.request_wake(SimTime::ZERO);
        if let Some(ends) = consolidation.acpi.transition_ends() {
            consolidation.acpi.on_transition_complete(ends);
        }

        let vm_id = VmId(1);
        let vm = Vm::new(vm_id, WorkloadClass::Desktop, ByteSize::gib(4), 1);
        let image = GuestMemoryImage::desktop(seed);
        home.hypervisor.create_full(vm, image.clone()).expect("fresh hypervisor accepts the VM");

        let memtap = if options.secure_channel {
            Memtap::new_secured(vm_id, LinkSpec::gige(), ms_profile.page_service_time)
        } else {
            Memtap::new(vm_id, LinkSpec::gige(), ms_profile.page_service_time)
        };
        let zero_page_cost = ByteSize::bytes(compress(&vec![0u8; PAGE_SIZE as usize]).len() as u64);

        MicroLab {
            home,
            consolidation,
            traffic: TrafficAccountant::new(),
            vm_id,
            image,
            location: VmLocation::Home,
            memtap,
            rng: SimRng::new(seed ^ 0x1AB_1AB),
            now: SimTime::ZERO,
            next_fresh_page: 0,
            zero_page_cost,
            home_dirty_since_upload: Vec::new(),
            uploaded_once: false,
            options,
        }
    }

    /// Lab clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Where the VM runs.
    pub fn location(&self) -> VmLocation {
        self.location
    }

    fn take_fresh_range(&mut self, n: u64) -> std::ops::Range<u64> {
        let start = self.next_fresh_page;
        let end = (start + n).min(self.image.num_pages());
        self.next_fresh_page = end;
        start..end
    }

    /// Touches a fresh sequential range at home with per-page write
    /// draws.
    ///
    /// Both fidelities consume the same RNG sequence (one `chance` per
    /// page, in page order). `PerPage` walks the pages one access at a
    /// time; `Batched` pre-draws the write flags and applies them in a
    /// single hypervisor run. The range comes from the fresh-page bump
    /// pointer on a fully resident table, so the serial loop never
    /// faults and the run consumes every page — identical state either
    /// way.
    fn touch_sequential(&mut self, range: std::ops::Range<u64>) {
        if range.is_empty() {
            return;
        }
        match self.options.fidelity {
            ModelFidelity::PerPage => {
                for p in range {
                    let write = self.rng.chance(PRIME_WRITE_FRACTION);
                    self.home
                        .hypervisor
                        .guest_access(self.vm_id, PageNum(p), write)
                        .expect("resident access");
                }
            }
            ModelFidelity::Batched => {
                let writes: Vec<bool> =
                    range.clone().map(|_| self.rng.chance(PRIME_WRITE_FRACTION)).collect();
                let hits = self
                    .home
                    .hypervisor
                    .guest_access_run(self.vm_id, PageNum(range.start), &writes)
                    .expect("resident access");
                debug_assert_eq!(hits, writes.len() as u64, "fresh lab ranges are resident");
            }
        }
    }

    /// Boots the OS: touches the base page set at home.
    pub fn prime_os(&mut self) {
        assert_eq!(self.location, VmLocation::Home, "prime at home");
        let range = self.take_fresh_range(OS_BASE_PAGES);
        self.touch_sequential(range);
        self.now += SimDuration::from_mins(3);
    }

    /// Runs a Table 2 workload at home (the VM must be resident there).
    pub fn run_workload(&mut self, workload: &DesktopWorkload) {
        assert_eq!(self.location, VmLocation::Home, "workloads run at home");
        self.home.set_vm_state(self.vm_id, VmState::Active).expect("vm hosted");
        for (app, count) in workload.apps.clone() {
            for _ in 0..count {
                let range = self.take_fresh_range(app.startup_pages);
                self.touch_sequential(range);
            }
        }
        self.now += SimDuration::from_mins(10);
    }

    /// Lets the VM sit idle at home, dirtying background pages.
    pub fn idle_wait(&mut self, duration: SimDuration) {
        assert_eq!(self.location, VmLocation::Home);
        self.home.set_vm_state(self.vm_id, VmState::Idle).expect("vm hosted");
        let pages = (IDLE_DIRTY_PAGES_PER_MIN * duration.as_secs_f64() / 60.0) as u64;
        // Background dirtying rewrites already-touched pages; every
        // target is below the fresh-page pointer on a resident table, so
        // both fidelities see hits only and draw the same RNG sequence.
        let limit = self.next_fresh_page.max(1);
        match self.options.fidelity {
            ModelFidelity::PerPage => {
                for _ in 0..pages {
                    let p = self.rng.below(limit);
                    self.home
                        .hypervisor
                        .guest_access(self.vm_id, PageNum(p), true)
                        .expect("resident access");
                }
            }
            ModelFidelity::Batched => {
                let targets: Vec<PageNum> =
                    (0..pages).map(|_| PageNum(self.rng.below(limit))).collect();
                let hits = self
                    .home
                    .hypervisor
                    .guest_access_writes(self.vm_id, &targets)
                    .expect("resident access");
                debug_assert_eq!(hits, pages, "idle dirtying targets resident pages");
            }
        }
        self.now += duration;
    }

    /// Collects home-side dirty pages into the differential-upload set.
    fn drain_home_dirty(&mut self) {
        let hosted = self.home.hypervisor.vm_mut(self.vm_id).expect("vm at home");
        let dirty = hosted.dirty.take_epoch();
        self.home_dirty_since_upload.extend(dirty);
        self.home_dirty_since_upload.sort_unstable();
        self.home_dirty_since_upload.dedup();
    }

    /// Partial-migrates the VM to the consolidation host (§4.2).
    pub fn partial_migrate(&mut self) -> PartialReport {
        assert_eq!(self.location, VmLocation::Home, "only home VMs partial-migrate here");
        self.drain_home_dirty();

        // Choose the upload set: everything touched for the first upload,
        // only dirty-since-upload afterwards (differential, §4.3).
        let differential = self.uploaded_once && self.options.differential_upload;
        let (upload_pages, extra_zero_cost) = if differential {
            (std::mem::take(&mut self.home_dirty_since_upload), ByteSize::ZERO)
        } else {
            let hosted = self.home.hypervisor.vm(self.vm_id).expect("vm at home");
            let touched = hosted.wss.pages();
            let untouched = self.image.num_pages() - touched.len() as u64;
            self.home_dirty_since_upload.clear();
            let zero_cost = if self.options.compression {
                self.zero_page_cost
            } else {
                ByteSize::bytes(PAGE_SIZE)
            };
            (touched, zero_cost * untouched)
        };

        let batch: Vec<(PageNum, ByteSize)> = upload_pages
            .iter()
            .map(|&p| {
                let size = if self.options.compression {
                    self.image.compressed_size(p)
                } else {
                    ByteSize::bytes(PAGE_SIZE)
                };
                (p, size)
            })
            .collect();
        let ms = self.home.memserver.as_mut().expect("home has a memory server");
        ms.mount_at_host().expect("drive free");
        let receipt = ms.upload(self.vm_id, &batch, differential).expect("upload");
        ms.handoff_to_server().expect("handoff");
        self.uploaded_once = true;

        let upload_compressed = receipt.compressed + extra_zero_cost;
        let mut outcome =
            PartialMigration::with_upload(upload_compressed).run(ms.profile(), LinkSpec::gige());
        if self.options.secure_channel {
            // Session establishment before the memtap can fetch (§4.3).
            let handshake =
                oasis_net::secure::SessionBroker::handshake_latency(LinkSpec::gige().latency * 2);
            outcome.descriptor_time += handshake;
            outcome.total += handshake;
        }

        // Move the descriptor and create the partial VM at the destination.
        let hosted = self.home.hypervisor.vm(self.vm_id).expect("vm at home");
        let mut vm = hosted.vm.clone();
        vm.state = VmState::Idle;
        vm.make_partial(ByteSize::ZERO);
        self.consolidation
            .hypervisor
            .create_partial(vm, self.image.clone())
            .expect("consolidation host accepts the partial VM");

        self.traffic.record(TrafficClass::MemServerUpload, upload_compressed);
        self.traffic.record(TrafficClass::PartialDescriptor, DESCRIPTOR_BYTES);
        self.location = VmLocation::Consolidated;
        self.now += outcome.total;

        PartialReport { differential, uploaded_pages: receipt.pages, outcome }
    }

    /// Runs the consolidated partial VM idle for `duration`, faulting
    /// pages in from the memory server on demand.
    pub fn consolidated_idle(&mut self, duration: SimDuration) -> ConsolidatedIdleReport {
        assert_eq!(self.location, VmLocation::Consolidated);
        let total_secs = duration.as_secs_f64();

        // Unique pages touched over the window (saturating + linear).
        let unique_mib = CONS_IDLE_WSS_MIB * (1.0 - (-total_secs / CONS_IDLE_TAU_SECS).exp())
            + CONS_IDLE_GROWTH_MIB_PER_MIN * total_secs / 60.0;
        let unique_pages = ByteSize::from_mib_f64(unique_mib).pages(PAGE_SIZE);

        let mut fetched = ByteSize::ZERO;
        let mut faults = 0u64;
        let mut retries = 0u64;
        let mut retry_time = SimDuration::ZERO;
        // This demand-fetch loop is deliberately shared between
        // fidelities: every install changes which pages are present,
        // which decides whether the *next* draw hits or faults — the
        // iteration is inherently sequential and cannot be batched
        // without changing the RNG-visible outcome (DESIGN.md §14).
        for _ in 0..unique_pages {
            // First touches revisit the uploaded state (fetch) or write
            // fresh allocations (no fetch, §4.4.3 obviation).
            let revisit = self.rng.chance(CONS_FETCH_FRACTION);
            if revisit {
                // Read an uploaded page: pick one from the primed range.
                let p = PageNum(self.rng.below(self.next_fresh_page.max(1)));
                match self
                    .consolidation
                    .hypervisor
                    .guest_access(self.vm_id, p, false)
                    .expect("in range")
                {
                    GuestAccess::FaultPending(page) => {
                        // Fault injection: lost requests retried after a
                        // timeout (at most a handful of attempts).
                        let mut attempts = 0;
                        while self.options.serve_error_rate > 0.0
                            && attempts < 5
                            && self.rng.chance(self.options.serve_error_rate)
                        {
                            attempts += 1;
                            retries += 1;
                            retry_time += SERVE_RETRY_TIMEOUT;
                        }
                        let ms = self.home.memserver.as_mut().expect("memserver");
                        let size = match ms.serve_page(self.vm_id, page) {
                            Ok(s) => s,
                            // A page idle-dirtied after upload but never
                            // uploaded: treat as fresh allocation.
                            Err(_) => self.zero_page_cost,
                        };
                        self.memtap.service_fault(size);
                        fetched += size;
                        faults += 1;
                        let write = self.rng.chance(CONS_FETCHED_WRITE_FRACTION);
                        self.consolidation
                            .hypervisor
                            .install_fetched(self.vm_id, page, write)
                            .expect("install");
                    }
                    GuestAccess::Hit => {}
                }
            } else {
                // Fresh allocation: install a zero page locally and dirty it.
                let p = self.take_fresh_range(1);
                if let Some(p) = p.clone().next() {
                    self.consolidation
                        .hypervisor
                        .install_fetched(self.vm_id, PageNum(p), true)
                        .expect("install fresh");
                }
            }
        }

        // Background re-dirtying of pages already present on this host.
        let redirty = (CONS_REDIRTY_PAGES_PER_MIN * total_secs / 60.0) as u64;
        let present: Vec<PageNum> = self
            .consolidation
            .hypervisor
            .vm(self.vm_id)
            .expect("vm here")
            .table
            .present_pages()
            .collect();
        if !present.is_empty() {
            // Re-dirtying only touches pages already present, so both
            // fidelities see hits only and draw the same index sequence.
            match self.options.fidelity {
                ModelFidelity::PerPage => {
                    for _ in 0..redirty {
                        let p = present[self.rng.index(present.len())];
                        self.consolidation
                            .hypervisor
                            .guest_access(self.vm_id, p, true)
                            .expect("present page");
                    }
                }
                ModelFidelity::Batched => {
                    let targets: Vec<PageNum> =
                        (0..redirty).map(|_| present[self.rng.index(present.len())]).collect();
                    let hits = self
                        .consolidation
                        .hypervisor
                        .guest_access_writes(self.vm_id, &targets)
                        .expect("present page");
                    debug_assert_eq!(hits, redirty, "redirty targets present pages");
                }
            }
        }

        self.traffic.record(TrafficClass::DemandFetch, fetched);
        self.now += duration + retry_time;
        let dirty_pages =
            self.consolidation.hypervisor.vm(self.vm_id).expect("vm here").dirty.dirty_count();
        ConsolidatedIdleReport { faults, fetched, dirty_pages, retries, retry_time }
    }

    /// Reintegrates the partial VM back into its home (§4.2).
    pub fn reintegrate(&mut self) -> ReintegrationOutcome {
        assert_eq!(self.location, VmLocation::Consolidated);
        let dirty = {
            let hosted = self.consolidation.hypervisor.vm_mut(self.vm_id).expect("vm here");
            hosted.dirty.take_epoch()
        };
        let outcome = Reintegration {
            dirty_pages: dirty.len() as u64,
            obviated_fraction: if self.options.overwrite_obviation {
                crate::reintegration::DEFAULT_OBVIATED_FRACTION
            } else {
                0.0
            },
        }
        .run(LinkSpec::gige());

        // Transferred dirty pages must go out in the next differential
        // upload; obviated pages carry no live data.
        let sent = dirty.len() as u64 - outcome.obviated_pages;
        self.home_dirty_since_upload.extend(dirty.into_iter().take(sent as usize));

        // The consolidation host releases the partial VM; the memory
        // server stops serving and hands the drive back (§4.3).
        self.consolidation.hypervisor.destroy(self.vm_id).expect("partial vm present");
        let ms = self.home.memserver.as_mut().expect("memserver");
        ms.handoff_to_host().expect("serving");

        self.traffic.record(TrafficClass::Reintegration, outcome.network_bytes);
        self.location = VmLocation::Home;
        self.now += outcome.total;
        outcome
    }

    /// Fully (pre-copy live) migrates the VM, for the Figure 5 baseline.
    pub fn full_migrate_baseline(&self) -> PrecopyOutcome {
        precopy::migrate_at(
            self.options.fidelity,
            ByteSize::gib(4),
            ACTIVE_DIRTY_RATE,
            LinkSpec::gige(),
            &PrecopyConfig::default(),
        )
    }

    /// Start-up latency of `app`, in the VM's current location (Figure 6).
    ///
    /// On a full VM the pages are warm; in a partial VM every cold page is
    /// a serial remote fetch.
    pub fn app_startup_latency(&mut self, app: &Application) -> SimDuration {
        match self.location {
            VmLocation::Home => app.full_vm_startup,
            VmLocation::Consolidated => {
                let mean = ByteSize::bytes(
                    (PAGE_SIZE as f64 * PageMix::desktop().aggregate_ratio()) as u64,
                );
                app.full_vm_startup + self.memtap.serial_fetch_latency(app.startup_pages, mean)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_vm::apps::catalog;

    /// Runs the full §4.4 flow once and returns the lab plus the reports.
    fn run_flow(
    ) -> (MicroLab, PartialReport, ConsolidatedIdleReport, ReintegrationOutcome, PartialReport)
    {
        let mut lab = MicroLab::new(1);
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        let first = lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        let reint = lab.reintegrate();
        lab.run_workload(&DesktopWorkload::workload2());
        lab.idle_wait(SimDuration::from_mins(5));
        let second = lab.partial_migrate();
        (lab, first, idle, reint, second)
    }

    #[test]
    fn figure5_partial_migration_latencies() {
        let (_, first, _, _, second) = run_flow();
        let t1 = first.outcome.total.as_secs_f64();
        let t2 = second.outcome.total.as_secs_f64();
        // Paper: 15.7 s first, 7.2 s second (±25 % tolerance for the
        // synthetic content mix).
        assert!((12.0..20.0).contains(&t1), "first partial {t1}");
        assert!((5.5..9.5).contains(&t2), "second partial {t2}");
        assert!(!first.differential);
        assert!(second.differential);
        assert!(t2 < t1, "differential upload must win");
    }

    #[test]
    fn figure5_upload_phase_shrinks_with_differential() {
        let (_, first, _, _, second) = run_flow();
        let u1 = first.outcome.upload_time.as_secs_f64();
        let u2 = second.outcome.upload_time.as_secs_f64();
        // Paper: 10.2 s → 2.2 s.
        assert!((7.5..13.0).contains(&u1), "first upload {u1}");
        assert!((1.0..3.5).contains(&u2), "second upload {u2}");
    }

    #[test]
    fn section443_network_traffic_volumes() {
        let (lab, _, idle, reint, _) = run_flow();
        // Descriptor ≈ 16 MiB per partial migration.
        let desc = lab.traffic.total(TrafficClass::PartialDescriptor);
        assert_eq!(desc, ByteSize::mib(32), "two descriptors");
        // On-demand fetches ≈ 56.9 MiB over the consolidated window.
        let fetched = idle.fetched.as_mib_f64();
        assert!((35.0..80.0).contains(&fetched), "fetched {fetched} MiB");
        // Reintegration ≈ 175.3 MiB of dirty state.
        let reint_mib = reint.network_bytes.as_mib_f64();
        assert!((120.0..230.0).contains(&reint_mib), "reintegrated {reint_mib} MiB");
    }

    #[test]
    fn figure5_reintegration_latency() {
        let (_, _, _, reint, _) = run_flow();
        let secs = reint.total.as_secs_f64();
        assert!((2.5..5.0).contains(&secs), "reintegration {secs}");
    }

    #[test]
    fn full_migration_baseline_is_41s() {
        let lab = MicroLab::new(2);
        let full = lab.full_migrate_baseline();
        let secs = full.duration.as_secs_f64();
        assert!((38.0..44.0).contains(&secs), "full migration {secs}");
    }

    #[test]
    fn figure6_app_startup_penalty() {
        let mut lab = MicroLab::new(3);
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        // Full VM: warm start.
        let full = lab.app_startup_latency(&catalog::LIBREOFFICE_DOC);
        lab.partial_migrate();
        let partial = lab.app_startup_latency(&catalog::LIBREOFFICE_DOC);
        let ratio = partial.as_secs_f64() / full.as_secs_f64();
        // Paper: up to 111× slower; LibreOffice ≈ 168 s.
        assert!((80.0..150.0).contains(&ratio), "penalty ratio {ratio}");
        let secs = partial.as_secs_f64();
        assert!((130.0..210.0).contains(&secs), "LibreOffice start {secs}");
    }

    #[test]
    fn secure_channel_end_to_end() {
        let mut lab =
            MicroLab::with_options(1, LabOptions { secure_channel: true, ..LabOptions::default() });
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        let secured = lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        assert!(idle.faults > 1_000, "secured fetches flow normally");
        let reint = lab.reintegrate();
        assert!(reint.total.as_secs_f64() < 10.0);

        // Against a plaintext run: slightly slower, same behaviour.
        let mut plain = MicroLab::new(1);
        plain.prime_os();
        plain.run_workload(&DesktopWorkload::workload1());
        plain.idle_wait(SimDuration::from_mins(5));
        let base = plain.partial_migrate();
        assert!(secured.outcome.total > base.outcome.total);
        let overhead = secured.outcome.total.as_secs_f64() - base.outcome.total.as_secs_f64();
        assert!(overhead < 0.1, "handshake overhead {overhead}s");
    }

    #[test]
    fn fault_injection_degrades_gracefully() {
        let mut lab = MicroLab::with_options(
            1,
            LabOptions { serve_error_rate: 0.10, ..LabOptions::default() },
        );
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        // The flow completes: all fetches eventually succeed.
        assert!(idle.faults > 1_000);
        assert!(idle.retries > 0, "10% loss must show up as retries");
        // Roughly one retry per nine successful first attempts.
        let rate = idle.retries as f64 / (idle.faults + idle.retries) as f64;
        assert!((0.05..0.20).contains(&rate), "retry rate {rate}");
        // Reintegration still works after a lossy consolidation.
        let r = lab.reintegrate();
        assert!(r.total.as_secs_f64() < 10.0);
    }

    /// Runs the full flow at the given fidelity and serializes every
    /// observable outcome: phase reports, traffic ledger, memtap and
    /// memory-server stats, final page-table/working-set state and the
    /// lab clock. Byte-identical strings ⇒ bit-identical runs.
    fn flow_snapshot(fidelity: ModelFidelity, serve_error_rate: f64) -> String {
        let mut lab = MicroLab::with_options(
            1,
            LabOptions { fidelity, serve_error_rate, ..LabOptions::default() },
        );
        lab.prime_os();
        lab.run_workload(&DesktopWorkload::workload1());
        lab.idle_wait(SimDuration::from_mins(5));
        let first = lab.partial_migrate();
        let idle = lab.consolidated_idle(SimDuration::from_mins(20));
        let reint = lab.reintegrate();
        lab.run_workload(&DesktopWorkload::workload2());
        lab.idle_wait(SimDuration::from_mins(5));
        let second = lab.partial_migrate();
        let full = lab.full_migrate_baseline();
        let home = lab.home.hypervisor.vm(lab.vm_id).expect("vm at home");
        format!(
            "{first:?}\n{idle:?}\n{reint:?}\n{second:?}\n{full:?}\n{:?}\n{:?}\n{:?}\nwss={} present={} dirty={} now={:?}",
            lab.traffic,
            lab.memtap.stats(),
            lab.home.memserver.as_ref().expect("memserver").stats(),
            home.wss.unique_pages(),
            home.table.present_count(),
            home.dirty.dirty_count(),
            lab.now(),
        )
    }

    #[test]
    fn batched_fidelity_is_bit_identical_end_to_end() {
        for rate in [0.0, 0.10] {
            assert_eq!(
                flow_snapshot(ModelFidelity::PerPage, rate),
                flow_snapshot(ModelFidelity::Batched, rate),
                "fidelities diverged at serve_error_rate {rate}"
            );
        }
    }

    #[test]
    fn memory_server_serves_while_flow_runs() {
        let (lab, _, idle, _, _) = run_flow();
        let ms = lab.home.memserver.as_ref().unwrap();
        assert_eq!(ms.stats().requests, idle.faults);
        assert!(idle.faults > 1_000, "faults {}", idle.faults);
    }

    #[test]
    fn traffic_classes_disjoint() {
        let (lab, ..) = run_flow();
        // SAS uploads dwarf network traffic and stay off the network.
        let sas = lab.traffic.total(TrafficClass::MemServerUpload);
        let net = lab.traffic.network_total();
        assert!(sas > net);
        assert!(lab.traffic.grand_total() == sas + net);
    }
}
