//! Cancel-and-retry recovery for stalled migrations.
//!
//! A migration that stalls mid-flight (rack-network fault, destination
//! resume hang) is cancelled — the source keeps running the VM, so a
//! cancel is always safe — and re-attempted under a [`RetryPolicy`].
//! [`with_retries`] is the driver loop: it owns the attempt counter and
//! backoff clock while the caller supplies the actual attempt as a
//! closure, which keeps the loop reusable for wake retries and stall
//! recovery alike.

use oasis_faults::RetryPolicy;
use oasis_sim::{SimDuration, SimRng};

/// What a retry sequence did, and how long it spent doing it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttemptOutcome {
    /// Attempts made (at least 1 — the initial try counts).
    pub attempts: u32,
    /// Total backoff time waited between attempts.
    pub waited: SimDuration,
    /// True when some attempt succeeded; false when the budget ran out.
    pub completed: bool,
}

/// Runs `attempt` until it succeeds or `policy` is exhausted.
///
/// `attempt(n, waited_so_far)` is called with a 1-based attempt number
/// and the cumulative backoff already spent; it returns `true` on
/// success. Between failures the loop waits `policy.delay(n, rng)` —
/// with zero jitter this draws nothing from `rng`, so a policy like
/// [`RetryPolicy::wol`] cannot perturb the caller's random stream.
///
/// The initial try is free: a policy with `max_attempts == 0` still
/// calls `attempt` once and simply never retries.
pub fn with_retries(
    policy: &RetryPolicy,
    rng: &mut SimRng,
    mut attempt: impl FnMut(u32, SimDuration) -> bool,
) -> AttemptOutcome {
    let mut waited = SimDuration::ZERO;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempt(attempts, waited) {
            return AttemptOutcome { attempts, waited, completed: true };
        }
        if attempts > policy.max_attempts {
            return AttemptOutcome { attempts, waited, completed: false };
        }
        waited += policy.delay(attempts, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_waits_nothing() {
        let mut rng = SimRng::new(1);
        let out = with_retries(&RetryPolicy::recovery(), &mut rng, |_, _| true);
        assert_eq!(out, AttemptOutcome { attempts: 1, waited: SimDuration::ZERO, completed: true });
    }

    #[test]
    fn succeeds_on_a_later_attempt_after_backing_off() {
        let policy = RetryPolicy::constant(SimDuration::from_secs(2), 5);
        let mut rng = SimRng::new(2);
        let out = with_retries(&policy, &mut rng, |n, _| n == 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.waited, SimDuration::from_secs(4)); // Two 2s backoffs.
        assert!(out.completed);
    }

    #[test]
    fn exhaustion_reports_every_attempt_and_the_full_wait() {
        let policy = RetryPolicy::recovery();
        let mut rng = SimRng::new(3);
        let mut seen = Vec::new();
        let out = with_retries(&policy, &mut rng, |n, waited| {
            seen.push((n, waited));
            false
        });
        // Initial try + max_attempts retries, all failed.
        assert_eq!(out.attempts, policy.max_attempts + 1);
        assert!(!out.completed);
        assert_eq!(seen.len() as u32, policy.max_attempts + 1);
        // The waited argument is cumulative and monotone.
        for pair in seen.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!(out.waited <= policy.max_total_delay());
    }

    #[test]
    fn zero_attempt_policy_tries_exactly_once() {
        let policy = RetryPolicy::constant(SimDuration::from_secs(1), 0);
        let mut rng = SimRng::new(4);
        let mut calls = 0;
        let out = with_retries(&policy, &mut rng, |_, _| {
            calls += 1;
            false
        });
        assert_eq!(calls, 1);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.waited, SimDuration::ZERO);
        assert!(!out.completed);
    }

    #[test]
    fn jitter_free_policies_leave_the_rng_untouched() {
        let policy = RetryPolicy::wol();
        let mut rng = SimRng::new(5);
        let mut untouched = SimRng::new(5);
        let _ = with_retries(&policy, &mut rng, |_, _| false);
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }
}
