//! VM reintegration (§4.2, §4.4.3).
//!
//! "When migrating a partial VM to its owner, the destination reintegrates
//! the dirty state with the full VM memory and returns the VM into
//! execution rapidly." Only pages dirtied on the consolidation host cross
//! the network, shrunk further by the overwrite-obviation optimization:
//! pages that will be completely overwritten (new allocations, recycled
//! file buffers) are never transmitted.

use oasis_mem::{ByteSize, PAGE_SIZE};
use oasis_net::LinkSpec;
use oasis_sim::SimDuration;

/// Fixed control overhead: suspend at the consolidation host, dirty-map
/// exchange, vCPU handoff and resume at the owner.
pub const REINTEGRATION_OVERHEAD: SimDuration = SimDuration::from_micros(2_100_000);

/// Fraction of dirty pages whose transmission the overwrite-obviation
/// optimization skips (new allocations and recycled buffers, §4.4.3).
pub const DEFAULT_OBVIATED_FRACTION: f64 = 0.25;

/// Inputs of one reintegration.
#[derive(Clone, Copy, Debug)]
pub struct Reintegration {
    /// Pages dirtied while the VM ran on the consolidation host.
    pub dirty_pages: u64,
    /// Fraction of dirty pages obviated (not transmitted).
    pub obviated_fraction: f64,
}

/// Cost breakdown of one reintegration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReintegrationOutcome {
    /// Dirty bytes pushed over the network.
    pub network_bytes: ByteSize,
    /// Pages skipped by overwrite obviation.
    pub obviated_pages: u64,
    /// End-to-end latency until the VM runs at its owner.
    pub total: SimDuration,
}

impl Reintegration {
    /// A reintegration with the default obviation rate.
    pub fn with_dirty_pages(dirty_pages: u64) -> Self {
        Reintegration { dirty_pages, obviated_fraction: DEFAULT_OBVIATED_FRACTION }
    }

    /// Computes the cost over the given network path.
    pub fn run(&self, net: LinkSpec) -> ReintegrationOutcome {
        let frac = self.obviated_fraction.clamp(0.0, 1.0);
        let obviated = (self.dirty_pages as f64 * frac).round() as u64;
        let sent_pages = self.dirty_pages - obviated;
        let network_bytes = ByteSize::bytes(sent_pages * PAGE_SIZE);
        let total = REINTEGRATION_OVERHEAD + net.transfer_time(network_bytes);
        ReintegrationOutcome { network_bytes, obviated_pages: obviated, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_reintegration_latency() {
        // §4.4.3: 175.3 MiB of dirty memory transferred; §4.4.2: 3.7 s
        // average reintegration latency. 175.3 MiB sent = dirty minus the
        // obviated quarter → dirty ≈ 233.7 MiB ≈ 59 800 pages.
        let out = Reintegration::with_dirty_pages(59_800).run(LinkSpec::gige());
        let mib = out.network_bytes.as_mib_f64();
        assert!((mib - 175.3).abs() < 2.0, "sent {mib} MiB");
        let secs = out.total.as_secs_f64();
        assert!((secs - 3.7).abs() < 0.3, "latency {secs}");
    }

    #[test]
    fn zero_dirty_is_overhead_only() {
        let out = Reintegration::with_dirty_pages(0).run(LinkSpec::gige());
        assert_eq!(out.network_bytes, ByteSize::ZERO);
        assert_eq!(
            out.total.as_secs_f64(),
            REINTEGRATION_OVERHEAD.as_secs_f64() + LinkSpec::gige().latency.as_secs_f64()
        );
    }

    #[test]
    fn obviation_reduces_traffic() {
        let with =
            Reintegration { dirty_pages: 10_000, obviated_fraction: 0.25 }.run(LinkSpec::gige());
        let without =
            Reintegration { dirty_pages: 10_000, obviated_fraction: 0.0 }.run(LinkSpec::gige());
        assert!(with.network_bytes < without.network_bytes);
        assert_eq!(with.obviated_pages, 2_500);
        assert_eq!(without.obviated_pages, 0);
        assert!(with.total < without.total);
    }

    #[test]
    fn obviated_fraction_is_clamped() {
        let out = Reintegration { dirty_pages: 100, obviated_fraction: 7.0 }.run(LinkSpec::gige());
        assert_eq!(out.network_bytes, ByteSize::ZERO);
        assert_eq!(out.obviated_pages, 100);
    }
}
