//! Migration plans: the manager→agent command vocabulary.
//!
//! §4.1: "the manager … sends a list of tuples to the agent consisting of
//! `<vmid, migration type, destination>`, where `migration type` is either
//! partial or full migration and `destination` is the host identified to
//! receive the VM."

use core::fmt;

use oasis_vm::{HostId, VmId};

/// How a VM moves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MigrationType {
    /// Pre-copy live migration of the whole VM.
    Full,
    /// Partial migration: descriptor now, pages on demand.
    Partial,
}

impl fmt::Display for MigrationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationType::Full => f.write_str("full"),
            MigrationType::Partial => f.write_str("partial"),
        }
    }
}

/// One `<vmid, migration type, destination>` tuple.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MigrationOrder {
    /// VM to move.
    pub vm: VmId,
    /// How to move it.
    pub kind: MigrationType,
    /// Receiving host.
    pub destination: HostId,
}

/// A batch of orders produced by one planning round, grouped by the host
/// that must execute them (the VM's current host).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// `(source host, orders for its agent)` in execution sequence.
    pub by_source: Vec<(HostId, Vec<MigrationOrder>)>,
}

impl MigrationPlan {
    /// An empty plan (no better placement found this interval).
    pub fn empty() -> Self {
        Self::default()
    }

    /// `true` if the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.by_source.iter().all(|(_, orders)| orders.is_empty())
    }

    /// Total number of orders.
    pub fn len(&self) -> usize {
        self.by_source.iter().map(|(_, o)| o.len()).sum()
    }

    /// Adds an order originating at `source`.
    pub fn push(&mut self, source: HostId, order: MigrationOrder) {
        if let Some((_, orders)) = self.by_source.iter_mut().find(|(h, _)| *h == source) {
            orders.push(order);
        } else {
            self.by_source.push((source, vec![order]));
        }
    }

    /// Iterates over all orders with their sources.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, MigrationOrder)> + '_ {
        self.by_source.iter().flat_map(|(h, orders)| orders.iter().map(move |&o| (*h, o)))
    }

    /// Orders of a specific kind.
    pub fn count_kind(&self, kind: MigrationType) -> usize {
        self.iter().filter(|(_, o)| o.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grouping() {
        let mut plan = MigrationPlan::empty();
        assert!(plan.is_empty());
        let dest = HostId(30);
        plan.push(
            HostId(1),
            MigrationOrder { vm: VmId(1), kind: MigrationType::Partial, destination: dest },
        );
        plan.push(
            HostId(1),
            MigrationOrder { vm: VmId(2), kind: MigrationType::Full, destination: dest },
        );
        plan.push(
            HostId(2),
            MigrationOrder { vm: VmId(3), kind: MigrationType::Partial, destination: dest },
        );
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.by_source.len(), 2);
        assert_eq!(plan.count_kind(MigrationType::Partial), 2);
        assert_eq!(plan.count_kind(MigrationType::Full), 1);
        let all: Vec<_> = plan.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, HostId(1));
    }

    #[test]
    fn display_kinds() {
        assert_eq!(MigrationType::Full.to_string(), "full");
        assert_eq!(MigrationType::Partial.to_string(), "partial");
    }
}
