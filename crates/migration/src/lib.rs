//! VM migration mechanisms.
//!
//! Oasis combines two migration techniques (§2–3): **full** (pre-copy
//! live) migration for active VMs and **partial** migration for idle VMs,
//! plus **reintegration** of partial VMs back into their full images. For
//! background comparison the crate also models **post-copy** live
//! migration.
//!
//! * [`plan`] — the `<vmid, migration type, destination>` command tuples
//!   the cluster manager sends to host agents (§4.1).
//! * [`precopy`] — iterative pre-copy live migration (§2), used for full
//!   migrations because it degrades active workloads the least (§3.1).
//! * [`postcopy`] — post-copy live migration (§2), modeled for
//!   comparison benchmarks.
//! * [`partial`] — partial VM migration: suspend, compressed/differential
//!   memory upload to the memory server, descriptor push (§4.2–4.3).
//! * [`reintegration`] — dirty-state push back to the full image,
//!   including the overwrite-obviation optimization (§4.4.3).
//! * [`recovery`] — cancel-and-retry driver for stalled migrations,
//!   pacing re-attempts with a shared backoff policy.
//! * [`lab`] — a functional two-host laboratory replicating the §4.4
//!   micro-benchmark setup end to end.

#![warn(missing_docs)]

pub mod lab;
pub mod partial;
pub mod plan;
pub mod postcopy;
pub mod precopy;
pub mod recovery;
pub mod reintegration;

pub use plan::{MigrationOrder, MigrationPlan, MigrationType};
pub use precopy::{PrecopyConfig, PrecopyOutcome};
pub use recovery::{with_retries, AttemptOutcome};
