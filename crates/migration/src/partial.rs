//! Partial VM migration (§4.2–4.3).
//!
//! Partial migration has two sequential phases:
//!
//! 1. **Memory upload** — the agent suspends the VM and writes its memory
//!    pages, per-page compressed, to the memory server over the SAS path.
//!    With differential upload only pages dirtied since the previous
//!    upload are written (10.2 s → 2.2 s in Figure 5).
//! 2. **Descriptor push** — page tables, configuration and execution
//!    context go to the consolidation host, which creates the partial VM
//!    with all entries absent and schedules its vCPUs (~5.2 s of control
//!    overhead dominates the 16 MiB descriptor transfer).

use oasis_mem::ByteSize;
use oasis_net::LinkSpec;
use oasis_power::MemoryServerProfile;
use oasis_sim::SimDuration;

/// Fixed control overhead of suspend + partial-VM creation + scheduling.
///
/// §4.4.2 measures ~5.2 s for the descriptor phase on the prototype, of
/// which the 16 MiB wire transfer is only ~0.14 s.
pub const DESCRIPTOR_OVERHEAD: SimDuration = SimDuration::from_micros(5_060_000);

/// Mean VM descriptor size (§4.4.3: 16.0 ± 0.5 MiB).
pub const DESCRIPTOR_BYTES: ByteSize = ByteSize::mib(16);

/// Inputs of one partial migration.
#[derive(Clone, Copy, Debug)]
pub struct PartialMigration {
    /// Compressed bytes that must be written to the memory server
    /// (the touched working set for a first upload; the dirty delta for a
    /// differential upload).
    pub upload_compressed: ByteSize,
    /// Descriptor size pushed to the consolidation host.
    pub descriptor: ByteSize,
}

/// Cost breakdown of one partial migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialOutcome {
    /// Time writing the image to the memory server (SAS path).
    pub upload_time: SimDuration,
    /// Time for the descriptor push and partial-VM creation.
    pub descriptor_time: SimDuration,
    /// End-to-end latency (phases are sequential).
    pub total: SimDuration,
    /// Bytes that crossed the datacenter network (descriptor only —
    /// uploads stay on the SAS path, §4.3).
    pub network_bytes: ByteSize,
    /// Bytes written to the SAS drive.
    pub sas_bytes: ByteSize,
}

impl PartialMigration {
    /// A migration with the standard descriptor size.
    pub fn with_upload(upload_compressed: ByteSize) -> Self {
        PartialMigration { upload_compressed, descriptor: DESCRIPTOR_BYTES }
    }

    /// Computes the cost over the given paths.
    pub fn run(&self, ms: &MemoryServerProfile, net: LinkSpec) -> PartialOutcome {
        let upload_time = SimDuration::from_secs_f64(
            self.upload_compressed.as_bytes() as f64 / ms.upload_bytes_per_sec,
        );
        let descriptor_time = DESCRIPTOR_OVERHEAD + net.transfer_time(self.descriptor);
        PartialOutcome {
            upload_time,
            descriptor_time,
            total: upload_time + descriptor_time,
            network_bytes: self.descriptor,
            sas_bytes: self.upload_compressed,
        }
    }

    /// Like [`PartialMigration::run`], but records span timing and
    /// outcome metrics on the given telemetry bus (labeled
    /// `kind="partial"`), splitting network from SAS bytes.
    pub fn run_traced(
        &self,
        telemetry: &oasis_telemetry::Telemetry,
        ms: &MemoryServerProfile,
        net: LinkSpec,
    ) -> PartialOutcome {
        let span = telemetry.span("partial_migrate");
        let out = self.run(ms, net);
        span.end();
        let m = telemetry.metrics();
        m.counter("migration_bytes_total", &[("kind", "partial")])
            .add(out.network_bytes.as_bytes());
        m.counter("memserver_upload_bytes_total", &[]).add(out.sas_bytes.as_bytes());
        m.histogram("migration_duration_us", &[("kind", "partial")]).record(out.total.as_micros());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms() -> MemoryServerProfile {
        MemoryServerProfile::prototype()
    }

    #[test]
    fn figure5_first_partial_migration() {
        // First upload: ~1.28 GiB compressed → 10.2 s on SAS; total 15.7 s.
        let m = PartialMigration::with_upload(ByteSize::from_mib_f64(1_305.6));
        let out = m.run(&ms(), LinkSpec::gige());
        assert!((out.upload_time.as_secs_f64() - 10.2).abs() < 0.1);
        let total = out.total.as_secs_f64();
        assert!((total - 15.7).abs() < 0.5, "total {total}");
    }

    #[test]
    fn figure5_second_partial_migration_differential() {
        // Differential upload: ~282 MiB dirty-compressed → 2.2 s; total 7.2 s.
        let m = PartialMigration::with_upload(ByteSize::from_mib_f64(281.6));
        let out = m.run(&ms(), LinkSpec::gige());
        assert!((out.upload_time.as_secs_f64() - 2.2).abs() < 0.1);
        let total = out.total.as_secs_f64();
        assert!((total - 7.2).abs() < 0.5, "total {total}");
    }

    #[test]
    fn descriptor_phase_is_about_5_2s() {
        let m = PartialMigration::with_upload(ByteSize::ZERO);
        let out = m.run(&ms(), LinkSpec::gige());
        let t = out.descriptor_time.as_secs_f64();
        assert!((t - 5.2).abs() < 0.1, "descriptor phase {t}");
        assert_eq!(out.total, out.descriptor_time);
    }

    #[test]
    fn network_and_sas_accounting_are_disjoint() {
        let m = PartialMigration::with_upload(ByteSize::gib(1));
        let out = m.run(&ms(), LinkSpec::gige());
        assert_eq!(out.network_bytes, DESCRIPTOR_BYTES);
        assert_eq!(out.sas_bytes, ByteSize::gib(1));
    }

    #[test]
    fn partial_beats_full_migration_latency() {
        // §4.4.2's headline: 15.7 s / 7.2 s partial vs 41 s full.
        let partial = PartialMigration::with_upload(ByteSize::from_mib_f64(1_305.6))
            .run(&ms(), LinkSpec::gige());
        let full = crate::precopy::migrate(
            ByteSize::gib(4),
            15.0 * 1024.0 * 1024.0,
            LinkSpec::gige(),
            &crate::precopy::PrecopyConfig::default(),
        );
        assert!(partial.total < full.duration / 2);
    }
}
