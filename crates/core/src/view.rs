//! Cluster snapshots for planning.
//!
//! The manager plans over an immutable view assembled from the periodic
//! host-agent reports (§4.1). Keeping the planner pure — snapshot in,
//! plan out — makes every policy unit-testable without a simulator.

use oasis_mem::ByteSize;
use oasis_vm::{HostId, VmId, VmState};

/// Role of a host (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum HostRole {
    /// Compute host: VMs are created and run at full performance here.
    Compute,
    /// Consolidation host: receives consolidated VMs.
    Consolidation,
}

/// One host in the snapshot.
#[derive(Clone, Debug)]
pub struct HostView {
    /// Host identifier.
    pub id: HostId,
    /// Role in the cluster.
    pub role: HostRole,
    /// `true` when powered (or already waking); `false` in S3.
    pub powered: bool,
    /// `false` while the host is under a vacate cooldown (it was just
    /// woken to take VMs back and should not be re-emptied immediately).
    /// Only meaningful for compute hosts.
    pub vacatable: bool,
    /// Effective memory capacity (physical × over-commit factor).
    pub capacity: ByteSize,
}

/// One VM in the snapshot.
#[derive(Clone, Debug)]
pub struct VmView {
    /// VM identifier.
    pub id: VmId,
    /// The VM's home (owner) host.
    pub home: HostId,
    /// Where the VM currently runs.
    pub location: HostId,
    /// Activity state.
    pub state: VmState,
    /// Full memory allocation.
    pub allocation: ByteSize,
    /// Memory currently demanded at `location`.
    pub demand: ByteSize,
    /// Expected demand if consolidated as a partial VM (its idle working
    /// set — measured if known, sampled otherwise).
    pub partial_demand: ByteSize,
    /// `true` if currently running as a partial VM.
    pub partial: bool,
}

/// An immutable cluster snapshot.
#[derive(Clone, Debug, Default)]
pub struct ClusterView {
    /// All hosts.
    pub hosts: Vec<HostView>,
    /// All VMs.
    pub vms: Vec<VmView>,
    /// Per-host resident demand, positionally parallel to `hosts`.
    ///
    /// Optional fast path: when its length matches `hosts`, [`demand_on`]
    /// answers from this aggregate instead of scanning the VM vector.
    /// The simulator maintains it at the same mutation funnels as the
    /// host/VM views (see [`rebuild_host_demand`] for the from-scratch
    /// definition it must match); leaving it empty — the default for
    /// hand-built views — keeps the original scan.
    ///
    /// [`demand_on`]: ClusterView::demand_on
    /// [`rebuild_host_demand`]: ClusterView::rebuild_host_demand
    pub host_demand: Vec<ByteSize>,
}

impl ClusterView {
    /// Position of `id` in `hosts`: O(1) for the `hosts[id]` layout the
    /// simulator builds, falling back to a scan for arbitrary views. Ids
    /// are unique in a well-formed view, so both paths name the same host.
    fn pos(&self, id: HostId) -> Option<usize> {
        let p = id.0 as usize;
        if self.hosts.get(p).is_some_and(|h| h.id == id) {
            return Some(p);
        }
        self.hosts.iter().position(|h| h.id == id)
    }

    /// The host with the given id.
    pub fn host(&self, id: HostId) -> Option<&HostView> {
        self.pos(id).map(|p| &self.hosts[p])
    }

    /// Recomputes `host_demand` from the VM vector.
    ///
    /// The sums accumulate in VM-vector order with integer adds, so the
    /// aggregate is bit-equal to what the `demand_on` scan returns.
    pub fn rebuild_host_demand(&mut self) {
        let mut demand = vec![ByteSize::ZERO; self.hosts.len()];
        for i in 0..self.vms.len() {
            let vm = &self.vms[i];
            if let Some(p) = self.pos(vm.location) {
                demand[p] += vm.demand;
            }
        }
        self.host_demand = demand;
    }

    /// The VM with the given id (O(1) for the `vms[id]` layout the
    /// simulator builds, falling back to a scan for arbitrary views).
    pub fn vm(&self, id: VmId) -> Option<&VmView> {
        if let Some(v) = self.vms.get(id.0 as usize) {
            if v.id == id {
                return Some(v);
            }
        }
        self.vms.iter().find(|v| v.id == id)
    }

    /// VMs currently located on `host`.
    pub fn vms_on(&self, host: HostId) -> impl Iterator<Item = &VmView> + '_ {
        self.vms.iter().filter(move |v| v.location == host)
    }

    /// VMs whose home is `host`, wherever they run.
    pub fn vms_homed_at(&self, host: HostId) -> impl Iterator<Item = &VmView> + '_ {
        self.vms.iter().filter(move |v| v.home == host)
    }

    /// Total memory demanded on `host` right now.
    pub fn demand_on(&self, host: HostId) -> ByteSize {
        if self.host_demand.len() == self.hosts.len() {
            if let Some(p) = self.pos(host) {
                return self.host_demand[p];
            }
        }
        self.vms_on(host).map(|v| v.demand).sum()
    }

    /// Free capacity on `host` right now.
    pub fn free_on(&self, host: HostId) -> ByteSize {
        match self.host(host) {
            Some(h) => h.capacity.saturating_sub(self.demand_on(host)),
            None => ByteSize::ZERO,
        }
    }

    /// Compute hosts, in id order.
    pub fn compute_hosts(&self) -> impl Iterator<Item = &HostView> + '_ {
        self.hosts.iter().filter(|h| h.role == HostRole::Compute)
    }

    /// Consolidation hosts, in id order.
    pub fn consolidation_hosts(&self) -> impl Iterator<Item = &HostView> + '_ {
        self.hosts.iter().filter(|h| h.role == HostRole::Consolidation)
    }

    /// Number of powered hosts.
    pub fn powered_hosts(&self) -> usize {
        self.hosts.iter().filter(|h| h.powered).count()
    }

    /// Total resident demand on hosts of `role`, in id order.
    pub fn role_demand(&self, role: HostRole) -> ByteSize {
        self.hosts.iter().filter(|h| h.role == role).map(|h| self.demand_on(h.id)).sum()
    }

    /// Number of powered hosts of `role`.
    pub fn powered_count(&self, role: HostRole) -> usize {
        self.hosts.iter().filter(|h| h.role == role && h.powered).count()
    }
}

/// Externally maintained residency aggregates the planner can borrow
/// instead of rebuilding its per-host index from the VM vector every
/// round.
///
/// An implementation must agree exactly with a from-scratch pass over
/// the view's VM vector: `residents(p)` holds the indices of VMs whose
/// `location` is the host at position `p`, ascending (VM-vector order),
/// and `demand(p)` their demand sum. Integer demand sums are
/// order-independent, so an incrementally maintained total is bit-equal
/// to the scan the planner would otherwise run. The simulator's
/// residency index (locked by its `verify_indices` recount tests) is
/// the canonical implementation.
pub trait ResidencyIndex {
    /// Indices into the view's VM vector of the residents of the host at
    /// position `pos`, ascending.
    fn residents(&self, pos: usize) -> &[usize];
    /// Total resident demand on the host at position `pos`.
    fn demand(&self, pos: usize) -> ByteSize;
    /// Ascending VM-vector indices of every full (non-partial) idle VM
    /// currently located on a consolidation host, when tracked. The
    /// exchange pass walks this list instead of the whole VM vector —
    /// the list must therefore be a superset of the VMs the full scan
    /// would select (the pass re-checks each candidate), in the same
    /// ascending order. `None` keeps the full scan.
    fn full_idle_consolidated(&self) -> Option<&[usize]> {
        None
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Builds a small snapshot: `homes` compute hosts of `vms_per_host`
    /// idle VMs each (4 GiB allocation, 165 MiB working sets), plus
    /// `cons` sleeping consolidation hosts.
    pub fn small_cluster(homes: u32, cons: u32, vms_per_host: u32) -> ClusterView {
        let capacity = ByteSize::gib(192);
        let mut hosts = Vec::new();
        let mut vms = Vec::new();
        for h in 0..homes {
            hosts.push(HostView {
                id: HostId(h),
                role: HostRole::Compute,
                powered: true,
                vacatable: true,
                capacity,
            });
            for i in 0..vms_per_host {
                vms.push(VmView {
                    id: VmId(h * 1_000 + i),
                    home: HostId(h),
                    location: HostId(h),
                    state: VmState::Idle,
                    allocation: ByteSize::gib(4),
                    demand: ByteSize::gib(4),
                    partial_demand: ByteSize::mib(165),
                    partial: false,
                });
            }
        }
        for c in 0..cons {
            hosts.push(HostView {
                id: HostId(homes + c),
                role: HostRole::Consolidation,
                powered: false,
                vacatable: true,
                capacity,
            });
        }
        ClusterView { hosts, vms, host_demand: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::small_cluster;
    use super::*;

    #[test]
    fn lookups() {
        let view = small_cluster(2, 1, 3);
        assert_eq!(view.hosts.len(), 3);
        assert_eq!(view.vms.len(), 6);
        assert!(view.host(HostId(0)).is_some());
        assert!(view.host(HostId(9)).is_none());
        assert!(view.vm(VmId(1_001)).is_some());
        assert!(view.vm(VmId(5)).is_none());
    }

    #[test]
    fn demand_and_free() {
        let view = small_cluster(1, 1, 3);
        assert_eq!(view.demand_on(HostId(0)), ByteSize::gib(12));
        assert_eq!(view.free_on(HostId(0)), ByteSize::gib(180));
        assert_eq!(view.demand_on(HostId(1)), ByteSize::ZERO);
        assert_eq!(view.free_on(HostId(7)), ByteSize::ZERO, "unknown host");
    }

    #[test]
    fn host_demand_aggregate_matches_scan() {
        let mut view = small_cluster(2, 1, 3);
        view.vms[0].location = HostId(2); // One VM consolidated.
        view.vms[1].demand = ByteSize::mib(165);
        let scanned: Vec<ByteSize> = view.hosts.iter().map(|h| view.demand_on(h.id)).collect();
        view.rebuild_host_demand();
        assert_eq!(view.host_demand.len(), view.hosts.len());
        for (h, want) in view.hosts.iter().zip(&scanned) {
            assert_eq!(view.demand_on(h.id), *want, "aggregate diverges on {:?}", h.id);
        }
        assert_eq!(view.demand_on(HostId(9)), ByteSize::ZERO, "unknown host");
    }

    #[test]
    fn role_filters_and_power() {
        let view = small_cluster(2, 2, 1);
        assert_eq!(view.compute_hosts().count(), 2);
        assert_eq!(view.consolidation_hosts().count(), 2);
        assert_eq!(view.powered_hosts(), 2, "consolidation hosts sleep by default");
    }

    #[test]
    fn role_demand_and_powered_count() {
        let mut view = small_cluster(2, 1, 2);
        view.vms[0].location = HostId(2); // One VM consolidated.
        view.hosts[2].powered = true;
        assert_eq!(view.role_demand(HostRole::Compute), ByteSize::gib(12));
        assert_eq!(view.role_demand(HostRole::Consolidation), ByteSize::gib(4));
        assert_eq!(view.powered_count(HostRole::Compute), 2);
        assert_eq!(view.powered_count(HostRole::Consolidation), 1);
    }

    #[test]
    fn homed_at_tracks_home_not_location() {
        let mut view = small_cluster(2, 1, 2);
        // Move one VM's location away from home.
        view.vms[0].location = HostId(2);
        assert_eq!(view.vms_homed_at(HostId(0)).count(), 2);
        assert_eq!(view.vms_on(HostId(0)).count(), 1);
        assert_eq!(view.vms_on(HostId(2)).count(), 1);
    }
}
