//! The greedy vacate planner (§3.1 "where to migrate").
//!
//! "First, we sort the compute hosts by their total VM memory demand …
//! in ascending order and form a queue of hosts to vacate. We find a plan
//! that vacates the maximum number of compute hosts from the queue. The
//! destination for each migrating VM is selected at random from the
//! consolidation hosts list," subject to memory capacity.
//!
//! Consolidation hosts sleep by default; the planner prefers already
//! powered destinations and wakes a sleeping one only when the powered
//! set is full. A final net-energy check ("the cluster manager
//! consolidates VMs only when it determines that doing so can save
//! energy", §3.1) discards vacate plans whose savings would not cover the
//! consolidation hosts they power on.

use oasis_mem::ByteSize;
use oasis_migration::{MigrationOrder, MigrationType};
use oasis_sim::SimRng;
use oasis_vm::{HostId, VmId, VmState};

use crate::policy::{ActivationDecision, PlannedAction, PolicyKind};
use crate::view::{ClusterView, HostRole, ResidencyIndex, VmView};

/// How the planner picks a destination among viable consolidation hosts.
///
/// §3.1 uses random selection and explicitly leaves "more sophisticated
/// placement algorithms that optimize specific goals, such as reducing
/// memory fragmentation" out of scope; the alternatives here let the
/// `ablation_placement` bench quantify what that choice costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// The paper's policy: uniformly random among hosts with capacity.
    #[default]
    Random,
    /// Tightest fit: the viable host with the least free capacity.
    BestFit,
    /// Loosest fit: the viable host with the most free capacity.
    WorstFit,
    /// Lowest host id first (deterministic packing).
    FirstFit,
}

/// Energy parameters of the net-saving check.
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Watts saved by putting one home host to sleep (idle power minus
    /// sleeping host + memory server: 102.2 − 55.1 with the prototype).
    pub home_sleep_saving_watts: f64,
    /// Watts cost of powering one consolidation host (its idle draw).
    pub consolidation_power_watts: f64,
    /// Capacity the planner leaves unplanned on each consolidation host
    /// so partial VMs that activate can promote in place instead of
    /// waking their home (§3.2's Default path is expensive; headroom
    /// keeps it rare).
    pub promotion_headroom: ByteSize,
    /// Destination-selection strategy (the paper uses [`PlacementStrategy::Random`]).
    pub strategy: PlacementStrategy,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            home_sleep_saving_watts: 102.2 - (12.9 + 42.2),
            consolidation_power_watts: 102.2,
            promotion_headroom: ByteSize::gib(8),
            strategy: PlacementStrategy::default(),
        }
    }
}

/// One-pass per-host aggregates over a snapshot.
///
/// The planner used to answer every `demand_on`/`vms_on`/`host` query
/// with a fresh scan of the VM vector — `O(hosts × VMs)` per round, and
/// worse inside sort comparators. This index is built once per round in
/// a single pass; the per-host demand sums accumulate in the same VM
/// order the scans used (integer adds, so the totals are bit-equal) and
/// the resident lists preserve VM-vector order exactly.
enum HostIndex<'a> {
    /// Borrowed from a caller-maintained [`ResidencyIndex`]; nothing is
    /// rebuilt or allocated per round.
    External(&'a dyn ResidencyIndex),
    /// Built from a pass over the VM vector — the path for arbitrary
    /// hand-assembled views.
    Built {
        /// Total resident demand per host position.
        demand: Vec<ByteSize>,
        /// Indices into `view.vms` of residents, per host position, in
        /// VM-vector order.
        residents: Vec<Vec<usize>>,
    },
}

/// Position of `id` in `view.hosts`: O(1) for the `hosts[id]` layout the
/// simulator builds, falling back to a scan for arbitrary views. Ids are
/// unique in a well-formed view, so both paths name the same host.
fn host_pos(view: &ClusterView, id: HostId) -> Option<usize> {
    let p = id.0 as usize;
    if view.hosts.get(p).is_some_and(|h| h.id == id) {
        return Some(p);
    }
    view.hosts.iter().position(|h| h.id == id)
}

impl<'a> HostIndex<'a> {
    fn new(view: &ClusterView, external: Option<&'a dyn ResidencyIndex>) -> Self {
        if let Some(ext) = external {
            return HostIndex::External(ext);
        }
        let mut demand = vec![ByteSize::ZERO; view.hosts.len()];
        let mut residents = vec![Vec::new(); view.hosts.len()];
        for (vi, vm) in view.vms.iter().enumerate() {
            if let Some(p) = host_pos(view, vm.location) {
                demand[p] += vm.demand;
                residents[p].push(vi);
            }
        }
        HostIndex::Built { demand, residents }
    }

    fn demand_on(&self, view: &ClusterView, host: HostId) -> ByteSize {
        match host_pos(view, host) {
            Some(p) => match self {
                HostIndex::External(ext) => ext.demand(p),
                HostIndex::Built { demand, .. } => demand[p],
            },
            None => ByteSize::ZERO,
        }
    }

    fn has_residents(&self, view: &ClusterView, host: HostId) -> bool {
        !self.resident_indices(view, host).is_empty()
    }

    /// Indices into `view.vms` of `host`'s residents, in VM-vector order.
    fn resident_indices(&self, view: &ClusterView, host: HostId) -> &[usize] {
        match host_pos(view, host) {
            Some(p) => match self {
                HostIndex::External(ext) => ext.residents(p),
                HostIndex::Built { residents, .. } => &residents[p],
            },
            None => &[],
        }
    }

    fn role_of(&self, view: &ClusterView, host: HostId) -> Option<HostRole> {
        host_pos(view, host).map(|p| view.hosts[p].role)
    }
}

/// One consolidation host's planned capacity state.
#[derive(Clone, Copy, Debug)]
struct LedgerEntry {
    id: HostId,
    /// Free bytes after planned placements.
    free: ByteSize,
    /// Powered state (including planned wakes).
    powered: bool,
}

/// Tracks planned capacity changes during one planning round.
///
/// Stored as a vector sorted by ascending [`HostId`] — the same order a
/// `BTreeMap<HostId, _>` would iterate in — so candidate lists, and
/// therefore every `rng.choose` index, are unchanged from the map-based
/// implementation this replaced. The planner touches the ledger once or
/// twice per VM, and a handful of hosts fit in a cache line where the
/// map chased pointers.
struct CapacityLedger {
    entries: Vec<LedgerEntry>,
    /// Hosts this plan wakes.
    woken: Vec<HostId>,
}

impl CapacityLedger {
    fn new(view: &ClusterView, index: &HostIndex, headroom: ByteSize) -> Self {
        let mut entries: Vec<LedgerEntry> = view
            .consolidation_hosts()
            .map(|h| {
                let unreserved = h.capacity.saturating_sub(index.demand_on(view, h.id));
                LedgerEntry {
                    id: h.id,
                    free: unreserved.saturating_sub(headroom),
                    powered: h.powered,
                }
            })
            .collect();
        entries.sort_by_key(|e| e.id);
        CapacityLedger { entries, woken: Vec::new() }
    }

    fn entry_pos(&self, host: HostId) -> usize {
        self.entries.binary_search_by_key(&host, |e| e.id).expect("known consolidation host")
    }

    fn free_of(&self, host: HostId) -> ByteSize {
        self.entries[self.entry_pos(host)].free
    }

    /// Powered consolidation hosts that can fit `need`, in ascending id
    /// order, collected into the caller's scratch buffer.
    fn powered_candidates_into(&self, need: ByteSize, out: &mut Vec<HostId>) {
        out.clear();
        out.extend(self.entries.iter().filter(|e| e.powered && e.free >= need).map(|e| e.id));
    }

    /// Picks among `candidates` according to the strategy.
    fn choose(
        &self,
        candidates: &[HostId],
        strategy: PlacementStrategy,
        rng: &mut SimRng,
    ) -> Option<HostId> {
        match strategy {
            PlacementStrategy::Random => rng.choose(candidates).copied(),
            PlacementStrategy::FirstFit => candidates.iter().min().copied(),
            PlacementStrategy::BestFit => {
                candidates.iter().min_by_key(|&&id| (self.free_of(id), id)).copied()
            }
            PlacementStrategy::WorstFit => {
                candidates.iter().max_by_key(|&&id| (self.free_of(id), id)).copied()
            }
        }
    }

    /// Wakes the sleeping host with the most free space that fits `need`.
    ///
    /// Ties break toward the highest id, matching `max_by_key` over the
    /// old map's ascending iteration (the last maximal element wins).
    fn wake_for(&mut self, need: ByteSize) -> Option<HostId> {
        let best = self
            .entries
            .iter()
            .filter(|e| !e.powered && e.free >= need)
            .max_by_key(|e| e.free)
            .map(|e| e.id)?;
        let pos = self.entry_pos(best);
        self.entries[pos].powered = true;
        self.woken.push(best);
        Some(best)
    }

    fn reserve(&mut self, host: HostId, need: ByteSize) {
        let pos = self.entry_pos(host);
        let free = &mut self.entries[pos].free;
        *free = free.saturating_sub(need);
    }

    fn release(&mut self, host: HostId, amount: ByteSize) {
        let pos = self.entry_pos(host);
        self.entries[pos].free += amount;
    }
}

/// Aggregate inputs and outcomes of one planning round, recorded for
/// the decision audit trail.
///
/// Collected with pure counting — no extra RNG draws, no reordering —
/// so a run with stats enabled plans byte-identically to one without.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Candidate-set size the chooser examined for each *returned*
    /// action, aligned index-for-index with the action vector.
    pub action_candidates: Vec<u32>,
    /// FulltoPartial exchanges planned.
    pub exchanges: u32,
    /// Home hosts the vacate pass emptied.
    pub vacated: u32,
    /// Consolidation hosts the plan wakes.
    pub woken: u32,
    /// Net-energy verdict for the vacate pass.
    pub approved: bool,
    /// Consolidation hosts the drain pass emptied.
    pub drained: u32,
    /// Total candidate-set sizes examined, including placements later
    /// discarded with their host's failed vacate/drain attempt.
    pub candidates_examined: u32,
    /// Aggregate resident VM demand across the view, whole MiB.
    pub demand_mib: u64,
    /// Hosts the vacate pass scanned (one `vacate_host_scan` profile
    /// scope each) — cached so an event-engine replay of an unchanged
    /// round can re-emit the exact same scope sequence.
    pub vacate_scans: u32,
    /// Hosts the drain pass scanned (`drain_host_scan` scopes).
    pub drain_scans: u32,
}

/// Like [`plan_consolidation`], wrapped in a `placement_search` span and
/// profiler scope so the planner's wall-clock cost shows up in both the
/// flat span registry and the call tree, and returning the round's
/// [`PlanStats`] for the audit trail. The `planned_actions_total`
/// counter is the manager's job (it caches the handle across rounds).
pub fn plan_consolidation_traced(
    telemetry: &oasis_telemetry::Telemetry,
    view: &ClusterView,
    policy: PolicyKind,
    config: &PlannerConfig,
    rng: &mut SimRng,
    index: Option<&dyn ResidencyIndex>,
) -> (Vec<PlannedAction>, PlanStats) {
    let span = telemetry.span("placement_search");
    let (actions, stats) = plan_consolidation_inner(telemetry, view, policy, config, rng, index);
    span.end();
    (actions, stats)
}

/// Plans one consolidation interval; returns the actions to execute.
pub fn plan_consolidation(
    view: &ClusterView,
    policy: PolicyKind,
    config: &PlannerConfig,
    rng: &mut SimRng,
) -> Vec<PlannedAction> {
    plan_consolidation_inner(
        &oasis_telemetry::Telemetry::disabled(),
        view,
        policy,
        config,
        rng,
        None,
    )
    .0
}

fn plan_consolidation_inner(
    telemetry: &oasis_telemetry::Telemetry,
    view: &ClusterView,
    policy: PolicyKind,
    config: &PlannerConfig,
    rng: &mut SimRng,
    external: Option<&dyn ResidencyIndex>,
) -> (Vec<PlannedAction>, PlanStats) {
    // With a maintained `host_demand` aggregate the cluster-wide demand
    // is the sum of the per-host integer sums — bit-equal to the VM
    // scan (integer adds commute) at O(hosts) instead of O(VMs).
    let total_demand = if view.host_demand.len() == view.hosts.len() {
        view.host_demand.iter().copied().sum::<ByteSize>()
    } else {
        view.vms.iter().map(|v| v.demand).sum::<ByteSize>()
    };
    let mut stats = PlanStats { demand_mib: total_demand.as_mib(), ..PlanStats::default() };
    if policy == PolicyKind::AlwaysOn {
        return (Vec::new(), stats);
    }

    let scope = telemetry.profile("plan_consolidation");
    let index = HostIndex::new(view, external);
    let mut ledger = CapacityLedger::new(view, &index, config.promotion_headroom);
    let mut actions = Vec::new();
    // Candidate scratch, reused across every per-VM query in the round.
    let mut candidates: Vec<HostId> = Vec::new();

    // Exchange pass (§3.2 FulltoPartial): a full VM gone idle on a
    // consolidation host is swapped for a partial replica of itself,
    // freeing `allocation − working set` on the spot.
    if policy.exchanges_full_for_partial() {
        let pass = telemetry.profile("exchange_pass");
        // A maintained candidate list (ascending, a superset of what the
        // full sweep would select — each entry is re-checked below)
        // replaces the every-round O(VMs) scan with a walk of only the
        // VMs that can match; the selected set, and everything derived
        // from it, is identical either way.
        let mut sweep = |vm: &VmView| {
            let on_consolidation =
                index.role_of(view, vm.location) == Some(HostRole::Consolidation);
            let has_remote_home = vm.home != vm.location;
            if on_consolidation && !vm.partial && vm.state == VmState::Idle && has_remote_home {
                actions.push(PlannedAction::Exchange {
                    vm: vm.id,
                    home: vm.home,
                    consolidation: vm.location,
                });
                stats.action_candidates.push(1);
                stats.exchanges += 1;
                stats.candidates_examined += 1;
                ledger.release(vm.location, vm.allocation.saturating_sub(vm.partial_demand));
                ledger.reserve(vm.location, ByteSize::ZERO);
            }
        };
        match external.and_then(|e| e.full_idle_consolidated()) {
            Some(list) => {
                for &vi in list {
                    sweep(&view.vms[vi]);
                }
            }
            None => {
                for vm in &view.vms {
                    sweep(vm);
                }
            }
        }
        pass.end();
    }

    // Vacate pass: queue of powered compute hosts by ascending demand.
    let pass = telemetry.profile("vacate_pass");
    let mut queue: Vec<HostId> = view
        .compute_hosts()
        .filter(|h| h.powered && h.vacatable && index.has_residents(view, h.id))
        .map(|h| h.id)
        .collect();
    queue.sort_by_key(|&h| (index.demand_on(view, h), h));

    let mut vacated = 0usize;
    let mut vacate_actions = Vec::new();
    let mut vacate_candidates = Vec::new();
    // Tentative placements for the host being scanned, hoisted so one
    // buffer serves every scan of the round.
    let mut tentative: Vec<(PlannedAction, HostId, ByteSize, u32)> = Vec::new();
    for host in queue {
        let _host_scan = telemetry.profile("vacate_host_scan");
        stats.vacate_scans += 1;
        let vms = index.resident_indices(view, host);
        if policy == PolicyKind::OnlyPartial && vms.iter().any(|&vi| view.vms[vi].state.is_active())
        {
            continue; // Cannot vacate a host with active VMs.
        }
        tentative.clear();
        let mut ok = true;
        for &vi in vms {
            let vm = &view.vms[vi];
            let (kind, need) = match (policy, vm.state) {
                (PolicyKind::FullOnly, _) | (_, VmState::Active) => {
                    (MigrationType::Full, vm.allocation)
                }
                (_, VmState::Idle) => (MigrationType::Partial, vm.partial_demand),
            };
            ledger.powered_candidates_into(need, &mut candidates);
            let mut examined = candidates.len() as u32;
            stats.candidates_examined += examined;
            let destination = match ledger.choose(&candidates, config.strategy, rng) {
                Some(d) => d,
                // Waking an additional consolidation host is justified by
                // idle working sets, not by active VMs: a consolidated
                // active VM will shortly bounce (exchange or return), so
                // the cluster only provisions powered consolidation
                // capacity "to host all idle (and a few active) VMs"
                // (§5.3) — actives ride along in whatever powered
                // capacity exists.
                None if kind == MigrationType::Partial || !policy.uses_partial() => {
                    match ledger.wake_for(need) {
                        Some(d) => {
                            examined += 1;
                            stats.candidates_examined += 1;
                            d
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            };
            ledger.reserve(destination, need);
            tentative.push((
                PlannedAction::Migrate {
                    source: host,
                    order: MigrationOrder { vm: vm.id, kind, destination },
                },
                destination,
                need,
                examined,
            ));
        }
        if ok {
            vacated += 1;
            for (a, _, _, examined) in tentative.drain(..) {
                vacate_actions.push(a);
                vacate_candidates.push(examined);
            }
        } else {
            for (_, dest, need, _) in tentative.drain(..) {
                ledger.release(dest, need);
            }
        }
    }
    pass.end();

    // Net-energy check: do the vacated homes pay for the newly woken
    // consolidation hosts?
    let saving = vacated as f64 * config.home_sleep_saving_watts;
    let cost = ledger.woken.len() as f64 * config.consolidation_power_watts;
    let vacates_approved = saving > cost;
    stats.approved = vacates_approved;
    stats.woken = ledger.woken.len() as u32;
    stats.vacated = vacated as u32;
    if vacates_approved {
        actions.extend(vacate_actions);
        stats.action_candidates.extend(vacate_candidates);
    }

    // Drain pass: consolidation hosts left underused (e.g. after the
    // daytime peak) are emptied into their powered peers so they can
    // sleep — this is what packs all 900 VMs into three hosts at night
    // (§5.2). Draining never wakes a host, so it is a pure win for the
    // powered-host count.
    let pass = telemetry.profile("drain_pass");
    let mut drain_queue: Vec<HostId> = view
        .consolidation_hosts()
        .filter(|h| h.powered && index.has_residents(view, h.id))
        .map(|h| h.id)
        .collect();
    drain_queue.sort_by_key(|&h| (index.demand_on(view, h), h));
    let mut drained: Vec<HostId> = Vec::new();
    for host in drain_queue {
        let _host_scan = telemetry.profile("drain_host_scan");
        stats.drain_scans += 1;
        let vms = index.resident_indices(view, host);
        tentative.clear();
        let mut ok = true;
        for &vi in vms {
            let vm = &view.vms[vi];
            let (kind, need) = if vm.partial {
                (MigrationType::Partial, vm.demand)
            } else {
                (MigrationType::Full, vm.allocation)
            };
            // When the vacate plan was suppressed, its tentatively woken
            // hosts are not actually powering on: exclude them.
            ledger.powered_candidates_into(need, &mut candidates);
            candidates.retain(|&d| {
                d != host
                    && !drained.contains(&d)
                    && (vacates_approved || !ledger.woken.contains(&d))
            });
            stats.candidates_examined += candidates.len() as u32;
            match ledger.choose(&candidates, config.strategy, rng) {
                Some(destination) => {
                    ledger.reserve(destination, need);
                    tentative.push((
                        PlannedAction::Migrate {
                            source: host,
                            order: MigrationOrder { vm: vm.id, kind, destination },
                        },
                        destination,
                        need,
                        candidates.len() as u32,
                    ));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            drained.push(host);
            for (a, _, _, examined) in tentative.drain(..) {
                actions.push(a);
                stats.action_candidates.push(examined);
            }
        } else {
            for (_, dest, need, _) in tentative.drain(..) {
                ledger.release(dest, need);
            }
        }
    }
    stats.drained = drained.len() as u32;
    pass.end();
    scope.end();
    debug_assert_eq!(stats.action_candidates.len(), actions.len());
    (actions, stats)
}

/// Handles a partial VM that became active (§3.2 state-change policies).
pub fn on_partial_activated(
    view: &ClusterView,
    vm_id: VmId,
    policy: PolicyKind,
    rng: &mut SimRng,
) -> Option<ActivationDecision> {
    on_partial_activated_with_stats(view, vm_id, policy, rng).0
}

/// [`on_partial_activated`] plus the number of placement candidates the
/// policy examined, for the decision audit trail.
pub fn on_partial_activated_with_stats(
    view: &ClusterView,
    vm_id: VmId,
    policy: PolicyKind,
    rng: &mut SimRng,
) -> (Option<ActivationDecision>, u32) {
    let Some(vm) = view.vm(vm_id) else {
        return (None, 0);
    };
    if !vm.partial {
        return (None, 0);
    }
    let need = vm.allocation.saturating_sub(vm.demand);
    if view.free_on(vm.location) >= need && policy != PolicyKind::OnlyPartial {
        // Default (and refinements): promote in place; the consolidation
        // host becomes the VM's new home.
        return (Some(ActivationDecision::PromoteInPlace { vm: vm_id }), 1);
    }
    if policy.relocates_on_saturation() {
        // NewHome: any other powered host with room for the full VM.
        let candidates: Vec<HostId> = view
            .hosts
            .iter()
            .filter(|h| h.powered && h.id != vm.location)
            .filter(|h| view.free_on(h.id) >= vm.allocation)
            .map(|h| h.id)
            .collect();
        if let Some(&destination) = rng.choose(&candidates) {
            return (
                Some(ActivationDecision::MoveTo { vm: vm_id, destination }),
                candidates.len() as u32,
            );
        }
    }
    // Default strategy: wake the home, return all of its VMs.
    let vms: Vec<VmId> = view.vms_homed_at(vm.home).map(|v| v.id).collect();
    (Some(ActivationDecision::ReturnHome { home: vm.home, vms }), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::testutil::small_cluster;
    use oasis_vm::VmState;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    /// Planner config without promotion headroom, for tests that size
    /// capacities exactly.
    fn exact_config() -> PlannerConfig {
        PlannerConfig { promotion_headroom: ByteSize::ZERO, ..PlannerConfig::default() }
    }

    #[test]
    fn always_on_plans_nothing() {
        let view = small_cluster(4, 2, 10);
        let plan =
            plan_consolidation(&view, PolicyKind::AlwaysOn, &PlannerConfig::default(), &mut rng());
        assert!(plan.is_empty());
    }

    #[test]
    fn all_idle_cluster_vacates_every_home() {
        let view = small_cluster(6, 2, 10);
        let plan =
            plan_consolidation(&view, PolicyKind::Default, &PlannerConfig::default(), &mut rng());
        let migrations = plan.iter().filter(|a| matches!(a, PlannedAction::Migrate { .. })).count();
        assert_eq!(migrations, 60, "all 60 idle VMs consolidate");
        // All partial: 60 × 165 MiB ≈ 9.7 GiB fits one consolidation host.
        for a in &plan {
            if let PlannedAction::Migrate { order, .. } = a {
                assert_eq!(order.kind, MigrationType::Partial);
            }
        }
    }

    #[test]
    fn active_vms_migrate_full_under_default() {
        let mut view = small_cluster(2, 2, 4);
        view.hosts[2].powered = true; // A consolidation host is already up.
        view.vms[0].state = VmState::Active;
        let plan =
            plan_consolidation(&view, PolicyKind::Default, &PlannerConfig::default(), &mut rng());
        let fulls = plan
            .iter()
            .filter(|a| {
                matches!(a, PlannedAction::Migrate { order, .. } if order.kind == MigrationType::Full)
            })
            .count();
        assert_eq!(fulls, 1);
        assert_eq!(plan.len(), 8);
    }

    #[test]
    fn only_partial_skips_hosts_with_active_vms() {
        let mut view = small_cluster(2, 2, 4);
        view.hosts[2].powered = true; // A consolidation host is already up.
        view.vms[0].state = VmState::Active; // Host 0 has an active VM.
        let plan = plan_consolidation(
            &view,
            PolicyKind::OnlyPartial,
            &PlannerConfig::default(),
            &mut rng(),
        );
        // Only host 1's four VMs move.
        assert_eq!(plan.len(), 4);
        for a in &plan {
            match a {
                PlannedAction::Migrate { source, order } => {
                    assert_eq!(*source, HostId(1));
                    assert_eq!(order.kind, MigrationType::Partial);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn full_only_uses_full_migrations_and_hits_capacity() {
        // 4 homes × 10 VMs × 4 GiB = 160 GiB of full VMs; one 192 GiB
        // consolidation host fits 48.
        let view = small_cluster(4, 1, 10);
        let plan = plan_consolidation(&view, PolicyKind::FullOnly, &exact_config(), &mut rng());
        for a in &plan {
            if let PlannedAction::Migrate { order, .. } = a {
                assert_eq!(order.kind, MigrationType::Full);
            }
        }
        // Whole-host vacates only: 4 hosts of 40 GiB each → all 4 fit
        // (160 ≤ 192), so 40 migrations.
        assert_eq!(plan.len(), 40);
    }

    #[test]
    fn full_only_cannot_vacate_beyond_capacity() {
        // 6 homes × 10 VMs = 240 GiB of full VMs > 192 GiB capacity:
        // only 4 hosts (160 GiB) can be vacated.
        let view = small_cluster(6, 1, 10);
        let plan = plan_consolidation(&view, PolicyKind::FullOnly, &exact_config(), &mut rng());
        assert_eq!(plan.len(), 40, "4 of 6 hosts vacated");
    }

    #[test]
    fn net_energy_check_blocks_wasteful_plans() {
        // One home host of idle VMs: vacating saves 47.1 W but waking a
        // consolidation host costs 102.2 W → plan suppressed.
        let view = small_cluster(1, 2, 10);
        let plan =
            plan_consolidation(&view, PolicyKind::Default, &PlannerConfig::default(), &mut rng());
        assert!(plan.is_empty(), "single-host vacate must not wake a host");
    }

    #[test]
    fn powered_consolidation_host_is_free_to_use() {
        // Same single home host, but a consolidation host already powered:
        // no wake needed, so the plan proceeds.
        let mut view = small_cluster(1, 2, 10);
        view.hosts[1].powered = true;
        let plan =
            plan_consolidation(&view, PolicyKind::Default, &PlannerConfig::default(), &mut rng());
        assert_eq!(plan.len(), 10);
    }

    #[test]
    fn exchange_pass_swaps_idle_full_vms() {
        let mut view = small_cluster(2, 1, 2);
        // VM 0 sits as a *full idle* VM on the consolidation host (id 2).
        view.hosts[2].powered = true;
        view.vms[0].location = HostId(2);
        view.vms[0].partial = false;
        view.vms[0].state = VmState::Idle;
        let plan = plan_consolidation(
            &view,
            PolicyKind::FullToPartial,
            &PlannerConfig::default(),
            &mut rng(),
        );
        assert!(plan.iter().any(|a| matches!(
            a,
            PlannedAction::Exchange { vm, home, consolidation }
                if *vm == view.vms[0].id && *home == HostId(0) && *consolidation == HostId(2)
        )));
        // Default policy never exchanges.
        let plan =
            plan_consolidation(&view, PolicyKind::Default, &PlannerConfig::default(), &mut rng());
        assert!(!plan.iter().any(|a| matches!(a, PlannedAction::Exchange { .. })));
    }

    #[test]
    fn exchange_skips_vms_homed_on_the_consolidation_host() {
        let mut view = small_cluster(1, 1, 1);
        view.hosts[1].powered = true;
        // The VM was promoted in place earlier: home == location == cons.
        view.vms[0].home = HostId(1);
        view.vms[0].location = HostId(1);
        view.vms[0].state = VmState::Idle;
        let plan = plan_consolidation(
            &view,
            PolicyKind::FullToPartial,
            &PlannerConfig::default(),
            &mut rng(),
        );
        assert!(!plan.iter().any(|a| matches!(a, PlannedAction::Exchange { .. })));
    }

    #[test]
    fn activation_promotes_in_place_with_capacity() {
        let mut view = small_cluster(1, 1, 1);
        view.hosts[1].powered = true;
        view.vms[0].location = HostId(1);
        view.vms[0].partial = true;
        view.vms[0].state = VmState::Active;
        view.vms[0].demand = ByteSize::mib(165);
        let d = on_partial_activated(&view, view.vms[0].id, PolicyKind::Default, &mut rng());
        assert_eq!(d, Some(ActivationDecision::PromoteInPlace { vm: view.vms[0].id }));
    }

    #[test]
    fn activation_returns_home_when_saturated() {
        let mut view = small_cluster(1, 1, 2);
        view.hosts[1].powered = true;
        // Shrink the consolidation host so the promotion cannot fit.
        view.hosts[1].capacity = ByteSize::gib(1);
        for vm in &mut view.vms {
            vm.location = HostId(1);
            vm.partial = true;
            vm.demand = ByteSize::mib(165);
        }
        view.vms[0].state = VmState::Active;
        let d = on_partial_activated(&view, view.vms[0].id, PolicyKind::Default, &mut rng());
        match d {
            Some(ActivationDecision::ReturnHome { home, vms }) => {
                assert_eq!(home, HostId(0));
                assert_eq!(vms.len(), 2, "all VMs homed there return");
            }
            other => panic!("expected ReturnHome, got {other:?}"),
        }
    }

    #[test]
    fn newhome_relocates_when_saturated() {
        let mut view = small_cluster(2, 1, 2);
        view.hosts[2].powered = true;
        view.hosts[2].capacity = ByteSize::gib(1);
        for vm in &mut view.vms {
            vm.location = HostId(2);
            vm.partial = true;
            vm.demand = ByteSize::mib(165);
        }
        view.vms[0].state = VmState::Active;
        // Home hosts 0 and 1 are powered with 192 GiB free.
        let d = on_partial_activated(&view, view.vms[0].id, PolicyKind::NewHome, &mut rng());
        match d {
            Some(ActivationDecision::MoveTo { destination, .. }) => {
                assert!(destination == HostId(0) || destination == HostId(1));
            }
            other => panic!("expected MoveTo, got {other:?}"),
        }
    }

    #[test]
    fn only_partial_never_promotes() {
        let mut view = small_cluster(1, 1, 1);
        view.hosts[1].powered = true;
        view.vms[0].location = HostId(1);
        view.vms[0].partial = true;
        view.vms[0].demand = ByteSize::mib(165);
        let d = on_partial_activated(&view, view.vms[0].id, PolicyKind::OnlyPartial, &mut rng());
        assert!(matches!(d, Some(ActivationDecision::ReturnHome { .. })));
    }

    #[test]
    fn activation_of_full_vm_is_none() {
        let view = small_cluster(1, 1, 1);
        let d = on_partial_activated(&view, view.vms[0].id, PolicyKind::Default, &mut rng());
        assert_eq!(d, None);
        assert_eq!(
            on_partial_activated(&view, oasis_vm::VmId(9_999), PolicyKind::Default, &mut rng()),
            None
        );
    }

    #[test]
    fn placement_strategies_pick_as_specified() {
        // Three powered consolidation hosts with distinct free space.
        let mut view = small_cluster(1, 3, 1);
        for c in 1..=3 {
            view.hosts[c].powered = true;
        }
        view.hosts[1].capacity = ByteSize::gib(50);
        view.hosts[2].capacity = ByteSize::gib(150);
        view.hosts[3].capacity = ByteSize::gib(100);
        let need = ByteSize::gib(4);
        let index = HostIndex::new(&view, None);
        let ledger = CapacityLedger::new(&view, &index, ByteSize::ZERO);
        let mut candidates = Vec::new();
        ledger.powered_candidates_into(need, &mut candidates);
        assert_eq!(candidates.len(), 3);
        let mut rng = SimRng::new(1);
        assert_eq!(
            ledger.choose(&candidates, PlacementStrategy::BestFit, &mut rng),
            Some(HostId(1)),
            "least free space"
        );
        assert_eq!(
            ledger.choose(&candidates, PlacementStrategy::WorstFit, &mut rng),
            Some(HostId(2)),
            "most free space"
        );
        assert_eq!(
            ledger.choose(&candidates, PlacementStrategy::FirstFit, &mut rng),
            Some(HostId(1)),
            "lowest id"
        );
        let picked =
            ledger.choose(&candidates, PlacementStrategy::Random, &mut rng).expect("non-empty");
        assert!(candidates.contains(&picked));
        assert_eq!(ledger.choose(&[], PlacementStrategy::Random, &mut rng), None);
    }

    #[test]
    fn bestfit_packs_tighter_than_worstfit() {
        // Two powered consolidation hosts; vacate one home of idle VMs:
        // BestFit lands everything on a single host, WorstFit alternates.
        let mut view = small_cluster(1, 2, 10);
        view.hosts[1].powered = true;
        view.hosts[2].powered = true;
        for strategy in [PlacementStrategy::BestFit, PlacementStrategy::WorstFit] {
            let cfg = PlannerConfig { strategy, ..exact_config() };
            let plan = plan_consolidation(&view, PolicyKind::Default, &cfg, &mut rng());
            let dests: std::collections::BTreeSet<HostId> = plan
                .iter()
                .filter_map(|a| match a {
                    PlannedAction::Migrate { order, .. } => Some(order.destination),
                    _ => None,
                })
                .collect();
            match strategy {
                PlacementStrategy::BestFit => {
                    assert_eq!(dests.len(), 1, "BestFit concentrates")
                }
                _ => assert_eq!(dests.len(), 2, "WorstFit spreads"),
            }
        }
    }

    #[test]
    fn vacate_prefers_low_demand_hosts() {
        // Capacity for only one host's worth of full VMs: the lighter
        // host must win the queue.
        let mut view = small_cluster(2, 1, 2);
        for vm in &mut view.vms {
            vm.state = VmState::Active; // Force full migrations.
        }
        // Host 1 has only one VM (remove one).
        view.vms.retain(|v| v.id != oasis_vm::VmId(1_001));
        view.hosts[2].capacity = ByteSize::gib(6); // Fits one 4 GiB VM.
        view.hosts[2].powered = true;
        let plan = plan_consolidation(&view, PolicyKind::Default, &exact_config(), &mut rng());
        assert_eq!(plan.len(), 1);
        match &plan[0] {
            PlannedAction::Migrate { source, .. } => assert_eq!(*source, HostId(1)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
