//! Idleness detection (§3.1).
//!
//! "To determine a VM's idleness, we can monitor its resource usage. For
//! example, one metric for memory usage is VM page dirtying rate which can
//! be monitored from the hypervisor." The detector classifies a VM as idle
//! once its dirtying rate stays under a threshold for a full observation
//! window, and flips it back to active immediately when the rate rises —
//! asymmetric hysteresis, so a briefly quiet VM is not consolidated while
//! a genuinely waking VM gets resources at once.

use std::collections::BTreeMap;

use oasis_mem::dirty::DirtyRateMonitor;
use oasis_sim::{SimDuration, SimTime};
use oasis_vm::{VmId, VmState};

/// Configuration of the idleness detector.
#[derive(Clone, Copy, Debug)]
pub struct IdlenessConfig {
    /// A VM dirtying fewer pages per second than this is a candidate for
    /// idle classification. Idle desktops dirty ~20–50 pages/s from
    /// background daemons; interactive use is orders of magnitude higher.
    pub threshold_pages_per_sec: f64,
    /// The rate must stay low for this long before the VM counts as idle.
    pub window: SimDuration,
    /// Number of rate buckets inside the window.
    pub buckets: usize,
}

impl Default for IdlenessConfig {
    fn default() -> Self {
        IdlenessConfig {
            threshold_pages_per_sec: 120.0,
            window: SimDuration::from_mins(5),
            buckets: 5,
        }
    }
}

/// Per-cluster idleness detector.
#[derive(Clone, Debug)]
pub struct IdlenessDetector {
    config: IdlenessConfig,
    monitors: BTreeMap<VmId, VmMonitor>,
}

#[derive(Clone, Debug)]
struct VmMonitor {
    rate: DirtyRateMonitor,
    /// Last time the rate exceeded the threshold.
    last_busy: SimTime,
}

impl IdlenessDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: IdlenessConfig) -> Self {
        IdlenessDetector { config, monitors: BTreeMap::new() }
    }

    fn monitor(&mut self, vm: VmId, now: SimTime) -> &mut VmMonitor {
        let cfg = &self.config;
        self.monitors.entry(vm).or_insert_with(|| VmMonitor {
            rate: DirtyRateMonitor::new(
                SimDuration::from_micros(cfg.window.as_micros() / cfg.buckets as u64),
                cfg.buckets,
            ),
            // A new VM starts busy: it must prove idleness for a window.
            last_busy: now,
        })
    }

    /// Feeds an observation: `pages` dirtied by `vm` around `now`.
    pub fn observe(&mut self, vm: VmId, now: SimTime, pages: u64) {
        let threshold = self.config.threshold_pages_per_sec;
        let m = self.monitor(vm, now);
        m.rate.record(now, pages);
        if m.rate.rate_per_sec(now) >= threshold {
            m.last_busy = now;
        }
    }

    /// Classifies `vm` at `now`.
    pub fn classify(&mut self, vm: VmId, now: SimTime) -> VmState {
        let window = self.config.window;
        let threshold = self.config.threshold_pages_per_sec;
        let m = self.monitor(vm, now);
        if m.rate.rate_per_sec(now) >= threshold {
            m.last_busy = now;
            return VmState::Active;
        }
        if now.saturating_since(m.last_busy) >= window {
            VmState::Idle
        } else {
            VmState::Active
        }
    }

    /// Drops per-VM state (VM destroyed).
    pub fn forget(&mut self, vm: VmId) {
        self.monitors.remove(&vm);
    }

    /// Number of tracked VMs.
    pub fn tracked(&self) -> usize {
        self.monitors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> IdlenessDetector {
        IdlenessDetector::new(IdlenessConfig::default())
    }

    #[test]
    fn busy_vm_is_active() {
        let mut d = detector();
        let vm = VmId(1);
        for s in 0..60 {
            d.observe(vm, SimTime::from_secs(s), 500); // 500 pages/s.
        }
        assert_eq!(d.classify(vm, SimTime::from_secs(60)), VmState::Active);
    }

    #[test]
    fn quiet_vm_becomes_idle_after_window() {
        let mut d = detector();
        let vm = VmId(1);
        // Busy first.
        d.observe(vm, SimTime::from_secs(0), 100_000);
        assert_eq!(d.classify(vm, SimTime::from_secs(1)), VmState::Active);
        // Then quiet background dirtying: 20 pages every second.
        for s in 1..700 {
            d.observe(vm, SimTime::from_secs(s), 20);
        }
        // Still inside the 5-minute window after the burst: active.
        assert_eq!(d.classify(vm, SimTime::from_secs(200)), VmState::Active);
        // The burst ages out of the rate window at t=300; a full idle
        // window after that, the VM classifies idle.
        assert_eq!(d.classify(vm, SimTime::from_secs(699)), VmState::Idle);
    }

    #[test]
    fn activity_flips_back_immediately() {
        let mut d = detector();
        let vm = VmId(1);
        for s in 0..400 {
            d.observe(vm, SimTime::from_secs(s), 10);
        }
        assert_eq!(d.classify(vm, SimTime::from_secs(400)), VmState::Idle);
        // A burst: user came back.
        d.observe(vm, SimTime::from_secs(401), 200_000);
        assert_eq!(d.classify(vm, SimTime::from_secs(402)), VmState::Active);
    }

    #[test]
    fn new_vm_starts_active() {
        let mut d = detector();
        // First sighting creates the monitor in the busy state.
        assert_eq!(d.classify(VmId(9), SimTime::from_secs(100)), VmState::Active);
        // Inside the window it stays active even with no writes.
        assert_eq!(d.classify(VmId(9), SimTime::from_secs(300)), VmState::Active);
        // With zero observations for a full window it settles to idle.
        assert_eq!(d.classify(VmId(9), SimTime::from_secs(600)), VmState::Idle);
    }

    #[test]
    fn forget_drops_state() {
        let mut d = detector();
        d.observe(VmId(1), SimTime::from_secs(0), 1);
        assert_eq!(d.tracked(), 1);
        d.forget(VmId(1));
        assert_eq!(d.tracked(), 0);
    }
}
