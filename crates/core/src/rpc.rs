//! The cluster manager's client-facing RPC interface (§4.1).
//!
//! "It provides an RPC interface that clients use to create and manage
//! VMs. Clients create VMs by issuing a request which includes the path
//! of a VM configuration file in the network storage."
//!
//! The wire format is line-oriented text — one request per line, one
//! response per line — so it can cross any byte stream. Dispatch runs
//! against a [`ClusterBackend`], the narrow interface the simulator (or
//! a real deployment shim) implements.

use core::fmt;
use core::str::FromStr;

use oasis_vm::{HostId, VmConfig, VmId, VmState};

use crate::manager::ClusterManager;
use crate::view::ClusterView;

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Create a VM from a configuration file on the network storage.
    CreateVm {
        /// Path of the configuration file.
        config_path: String,
    },
    /// Shut a VM down and release its resources.
    DestroyVm {
        /// Target VM.
        vm: VmId,
    },
    /// Query placement and state of a VM.
    QueryVm {
        /// Target VM.
        vm: VmId,
    },
    /// Cluster-level summary.
    ClusterStats,
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::CreateVm { config_path } => write!(f, "CREATE {config_path}"),
            Request::DestroyVm { vm } => write!(f, "DESTROY {}", vm.0),
            Request::QueryVm { vm } => write!(f, "QUERY {}", vm.0),
            Request::ClusterStats => write!(f, "STATS"),
        }
    }
}

impl FromStr for Request {
    type Err = RpcError;

    fn from_str(line: &str) -> Result<Self, RpcError> {
        let line = line.trim();
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        match verb {
            "CREATE" if !rest.is_empty() => Ok(Request::CreateVm { config_path: rest.to_string() }),
            "DESTROY" => rest
                .parse()
                .map(|id| Request::DestroyVm { vm: VmId(id) })
                .map_err(|_| RpcError::Malformed(line.to_string())),
            "QUERY" => rest
                .parse()
                .map(|id| Request::QueryVm { vm: VmId(id) })
                .map_err(|_| RpcError::Malformed(line.to_string())),
            "STATS" if rest.is_empty() => Ok(Request::ClusterStats),
            _ => Err(RpcError::Malformed(line.to_string())),
        }
    }
}

/// A manager response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// VM created and placed.
    Created {
        /// New VM id.
        vm: VmId,
        /// Hosting compute host.
        host: HostId,
    },
    /// VM destroyed.
    Destroyed {
        /// The destroyed VM.
        vm: VmId,
    },
    /// VM placement info.
    VmInfo {
        /// The VM.
        vm: VmId,
        /// Where it runs.
        host: HostId,
        /// Activity state.
        state: VmState,
        /// Whether it currently runs as a partial VM.
        partial: bool,
    },
    /// Cluster summary.
    Stats {
        /// Powered hosts.
        powered_hosts: usize,
        /// Total hosts.
        total_hosts: usize,
        /// Total VMs.
        vms: usize,
    },
    /// Request failed.
    Error(RpcError),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Created { vm, host } => write!(f, "OK CREATED vm={} host={}", vm.0, host.0),
            Response::Destroyed { vm } => write!(f, "OK DESTROYED vm={}", vm.0),
            Response::VmInfo { vm, host, state, partial } => write!(
                f,
                "OK VM vm={} host={} state={} partial={}",
                vm.0,
                host.0,
                if state.is_active() { "active" } else { "idle" },
                partial
            ),
            Response::Stats { powered_hosts, total_hosts, vms } => {
                write!(f, "OK STATS powered={powered_hosts}/{total_hosts} vms={vms}")
            }
            Response::Error(e) => write!(f, "ERR {e}"),
        }
    }
}

/// RPC failure codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// The request line did not parse.
    Malformed(String),
    /// The referenced configuration file is missing or unreadable.
    ConfigNotFound(String),
    /// The configuration file failed to parse.
    BadConfig(String),
    /// No host can accommodate the VM.
    NoCapacity,
    /// The VM does not exist.
    UnknownVm(VmId),
    /// A VM with the config's id already exists.
    DuplicateVm(VmId),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Malformed(line) => write!(f, "malformed request: {line}"),
            RpcError::ConfigNotFound(path) => write!(f, "config not found: {path}"),
            RpcError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            RpcError::NoCapacity => write!(f, "no host with sufficient resources"),
            RpcError::UnknownVm(vm) => write!(f, "unknown vm {}", vm.0),
            RpcError::DuplicateVm(vm) => write!(f, "vm {} already exists", vm.0),
        }
    }
}

impl std::error::Error for RpcError {}

/// The narrow interface the manager drives to serve requests.
pub trait ClusterBackend {
    /// Current cluster snapshot.
    fn view(&self) -> ClusterView;

    /// Reads a VM configuration file from the network storage.
    fn read_config(&self, path: &str) -> Option<String>;

    /// Creates the VM on the chosen host (the agent's `create` call).
    fn create_vm(&mut self, config: &VmConfig, host: HostId) -> Result<(), RpcError>;

    /// Destroys the VM wherever it runs.
    fn destroy_vm(&mut self, vm: VmId) -> Result<(), RpcError>;
}

/// Serves client requests against a manager and a backend (§4.1).
pub fn dispatch<B: ClusterBackend>(
    manager: &mut ClusterManager,
    backend: &mut B,
    request: &Request,
) -> Response {
    match request {
        Request::CreateVm { config_path } => {
            let Some(text) = backend.read_config(config_path) else {
                return Response::Error(RpcError::ConfigNotFound(config_path.clone()));
            };
            let config = match VmConfig::parse(&text) {
                Ok(c) => c,
                Err(e) => return Response::Error(RpcError::BadConfig(e.to_string())),
            };
            let view = backend.view();
            if view.vm(config.vmid).is_some() {
                return Response::Error(RpcError::DuplicateVm(config.vmid));
            }
            let Some(host) = manager.place_new_vm(&view, config.memory) else {
                return Response::Error(RpcError::NoCapacity);
            };
            match backend.create_vm(&config, host) {
                Ok(()) => Response::Created { vm: config.vmid, host },
                Err(e) => Response::Error(e),
            }
        }
        Request::DestroyVm { vm } => match backend.destroy_vm(*vm) {
            Ok(()) => Response::Destroyed { vm: *vm },
            Err(e) => Response::Error(e),
        },
        Request::QueryVm { vm } => {
            let view = backend.view();
            match view.vm(*vm) {
                Some(info) => Response::VmInfo {
                    vm: *vm,
                    host: info.location,
                    state: info.state,
                    partial: info.partial,
                },
                None => Response::Error(RpcError::UnknownVm(*vm)),
            }
        }
        Request::ClusterStats => {
            let view = backend.view();
            Response::Stats {
                powered_hosts: view.powered_hosts(),
                total_hosts: view.hosts.len(),
                vms: view.vms.len(),
            }
        }
    }
}

/// Serves one raw request line, producing one raw response line.
pub fn serve_line<B: ClusterBackend>(
    manager: &mut ClusterManager,
    backend: &mut B,
    line: &str,
) -> String {
    match line.parse::<Request>() {
        Ok(request) => dispatch(manager, backend, &request).to_string(),
        Err(e) => Response::Error(e).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crate::view::{HostRole, HostView, VmView};
    use oasis_mem::ByteSize;
    use std::collections::BTreeMap;

    /// A toy backend: two compute hosts, one consolidation host, and a
    /// network store holding config files.
    struct MockBackend {
        vms: Vec<VmView>,
        store: BTreeMap<String, String>,
        capacity: ByteSize,
    }

    impl MockBackend {
        fn new() -> Self {
            let mut store = BTreeMap::new();
            store.insert("/store/vm0007.cfg".to_string(), VmConfig::desktop(7).to_text());
            store.insert("/store/garbage.cfg".to_string(), "not a config".to_string());
            MockBackend { vms: Vec::new(), store, capacity: ByteSize::gib(192) }
        }
    }

    impl ClusterBackend for MockBackend {
        fn view(&self) -> ClusterView {
            let mk = |id, role, powered| HostView {
                id: HostId(id),
                role,
                powered,
                vacatable: true,
                capacity: self.capacity,
            };
            ClusterView {
                hosts: vec![
                    mk(0, HostRole::Compute, true),
                    mk(1, HostRole::Compute, true),
                    mk(2, HostRole::Consolidation, false),
                ],
                vms: self.vms.clone(),
                host_demand: Vec::new(),
            }
        }

        fn read_config(&self, path: &str) -> Option<String> {
            self.store.get(path).cloned()
        }

        fn create_vm(&mut self, config: &VmConfig, host: HostId) -> Result<(), RpcError> {
            self.vms.push(VmView {
                id: config.vmid,
                home: host,
                location: host,
                state: VmState::Active,
                allocation: config.memory,
                demand: config.memory,
                partial_demand: ByteSize::mib(165),
                partial: false,
            });
            Ok(())
        }

        fn destroy_vm(&mut self, vm: VmId) -> Result<(), RpcError> {
            let before = self.vms.len();
            self.vms.retain(|v| v.id != vm);
            if self.vms.len() == before {
                Err(RpcError::UnknownVm(vm))
            } else {
                Ok(())
            }
        }
    }

    fn manager() -> ClusterManager {
        ClusterManager::new(ManagerConfig::default(), 1)
    }

    #[test]
    fn request_wire_round_trips() {
        for req in [
            Request::CreateVm { config_path: "/store/vm0007.cfg".into() },
            Request::DestroyVm { vm: VmId(7) },
            Request::QueryVm { vm: VmId(7) },
            Request::ClusterStats,
        ] {
            let parsed: Request = req.to_string().parse().unwrap();
            assert_eq!(parsed, req);
        }
        assert!("FROB 1".parse::<Request>().is_err());
        assert!("DESTROY xyz".parse::<Request>().is_err());
        assert!("CREATE".parse::<Request>().is_err());
    }

    #[test]
    fn create_query_destroy_lifecycle() {
        let mut mgr = manager();
        let mut backend = MockBackend::new();
        let r = dispatch(
            &mut mgr,
            &mut backend,
            &Request::CreateVm { config_path: "/store/vm0007.cfg".into() },
        );
        let host = match r {
            Response::Created { vm, host } => {
                assert_eq!(vm, VmId(7));
                host
            }
            other => panic!("unexpected {other:?}"),
        };
        assert!(host == HostId(0) || host == HostId(1), "placed on a compute host");

        let info = dispatch(&mut mgr, &mut backend, &Request::QueryVm { vm: VmId(7) });
        assert_eq!(
            info,
            Response::VmInfo { vm: VmId(7), host, state: VmState::Active, partial: false }
        );

        let stats = dispatch(&mut mgr, &mut backend, &Request::ClusterStats);
        assert_eq!(stats, Response::Stats { powered_hosts: 2, total_hosts: 3, vms: 1 });

        let gone = dispatch(&mut mgr, &mut backend, &Request::DestroyVm { vm: VmId(7) });
        assert_eq!(gone, Response::Destroyed { vm: VmId(7) });
        assert_eq!(
            dispatch(&mut mgr, &mut backend, &Request::QueryVm { vm: VmId(7) }),
            Response::Error(RpcError::UnknownVm(VmId(7)))
        );
    }

    #[test]
    fn create_failure_modes() {
        let mut mgr = manager();
        let mut backend = MockBackend::new();
        assert_eq!(
            dispatch(
                &mut mgr,
                &mut backend,
                &Request::CreateVm { config_path: "/store/missing.cfg".into() }
            ),
            Response::Error(RpcError::ConfigNotFound("/store/missing.cfg".into()))
        );
        assert!(matches!(
            dispatch(
                &mut mgr,
                &mut backend,
                &Request::CreateVm { config_path: "/store/garbage.cfg".into() }
            ),
            Response::Error(RpcError::BadConfig(_))
        ));
        // Duplicate vmid.
        dispatch(
            &mut mgr,
            &mut backend,
            &Request::CreateVm { config_path: "/store/vm0007.cfg".into() },
        );
        assert_eq!(
            dispatch(
                &mut mgr,
                &mut backend,
                &Request::CreateVm { config_path: "/store/vm0007.cfg".into() }
            ),
            Response::Error(RpcError::DuplicateVm(VmId(7)))
        );
        // No capacity: shrink hosts below the VM size.
        backend.capacity = ByteSize::gib(1);
        backend.store.insert("/store/vm0008.cfg".into(), VmConfig::desktop(8).to_text());
        assert_eq!(
            dispatch(
                &mut mgr,
                &mut backend,
                &Request::CreateVm { config_path: "/store/vm0008.cfg".into() }
            ),
            Response::Error(RpcError::NoCapacity)
        );
    }

    #[test]
    fn serve_line_speaks_text() {
        let mut mgr = manager();
        let mut backend = MockBackend::new();
        let reply = serve_line(&mut mgr, &mut backend, "CREATE /store/vm0007.cfg");
        assert!(reply.starts_with("OK CREATED vm=7 host="), "{reply}");
        let reply = serve_line(&mut mgr, &mut backend, "STATS");
        assert_eq!(reply, "OK STATS powered=2/3 vms=1");
        let reply = serve_line(&mut mgr, &mut backend, "BOGUS");
        assert!(reply.starts_with("ERR malformed"), "{reply}");
    }
}
