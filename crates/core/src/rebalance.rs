//! Inter-rack capacity rebalancing for the datacenter tier.
//!
//! A datacenter run shards the cluster per rack: each rack's manager
//! plans alone over its own view (Ashraf et al.'s rack-local mapping).
//! At every cross-rack epoch barrier the shard driver assembles one
//! [`RackLoad`] per rack — a read-only roll-up of the rack's merged
//! view — and, under the *global* planner policy, calls
//! [`plan_rebalance`] to shift consolidation headroom from cold racks
//! (timezone already asleep, consolidation hosts near-empty) to hot
//! ones (evening consolidation wave, hosts near capacity). The
//! *local* policy simply never calls in here; each rack keeps its
//! configured capacity — the decentralized baseline the scorecard
//! compares against.
//!
//! Determinism: the pass is pure integer arithmetic over a slice that
//! arrives in rack-id order, matches donors and borrowers by ascending
//! rack id, and never consults a clock or RNG — the same loads always
//! produce the same grants, independent of worker count or engine.

use oasis_mem::ByteSize;

/// One rack's consolidation-side load summary at an epoch barrier,
/// assembled from the rack's (otherwise private) cluster view.
#[derive(Clone, Copy, Debug)]
pub struct RackLoad {
    /// Rack index (position in the datacenter's rack vector).
    pub rack: u32,
    /// Consolidation hosts in the rack.
    pub cons_hosts: u32,
    /// Current per-host effective capacity of those hosts.
    pub cons_capacity: ByteSize,
    /// The rack's configured (baseline) per-host capacity — grants are
    /// bounded relative to this, so capacity can flow back as load
    /// reverses.
    pub base_capacity: ByteSize,
    /// Total VM demand resident on the rack's consolidation hosts.
    pub cons_demand: ByteSize,
}

impl RackLoad {
    /// Demand as a fraction of total consolidation capacity.
    pub fn utilization(&self) -> f64 {
        let cap = self.cons_capacity.as_bytes().saturating_mul(u64::from(self.cons_hosts));
        if cap == 0 {
            return 0.0;
        }
        self.cons_demand.as_bytes() as f64 / cap as f64
    }
}

/// A capacity transfer the epoch planner decided on: `donor` narrows
/// its consolidation hosts by one quantum each, `borrower` widens by
/// the same amount. Applying a grant costs modelled network traffic
/// (the memory-server pages backing the headroom move racks), which
/// the shard driver charges as `quantum × cons_hosts` bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityGrant {
    /// Rack giving up headroom.
    pub donor: u32,
    /// Rack receiving it.
    pub borrower: u32,
    /// Per-host capacity delta moved.
    pub quantum: ByteSize,
}

/// Utilization below which a rack may donate consolidation headroom.
pub const DONOR_UTILIZATION: f64 = 0.40;
/// Utilization above which a rack asks to borrow headroom.
pub const BORROWER_UTILIZATION: f64 = 0.75;
/// Transfer quantum as a divisor of the base capacity (base / 8).
pub const QUANTUM_DIV: u64 = 8;
/// A donor never narrows below base / 2.
pub const DONOR_FLOOR_DIV: u64 = 2;
/// A borrower never widens beyond 2 × base.
pub const BORROWER_CAP_MUL: u64 = 2;

/// Plans one epoch's capacity grants over the merged per-rack loads.
///
/// Donors are racks under [`DONOR_UTILIZATION`] that would stay under
/// it after giving up one quantum and sit above the donor floor;
/// borrowers are racks above [`BORROWER_UTILIZATION`] still under the
/// borrower cap. Matching is ascending by rack id on both sides, one
/// quantum per rack per epoch, and only between racks with the same
/// consolidation-host count and base capacity (a grant is a per-host
/// capacity swap, so equal shapes conserve total datacenter capacity
/// exactly). `loads` must arrive in rack order; the result is a pure
/// function of it.
pub fn plan_rebalance(loads: &[RackLoad]) -> Vec<CapacityGrant> {
    let mut donors: Vec<&RackLoad> = Vec::new();
    let mut borrowers: Vec<&RackLoad> = Vec::new();
    for load in loads {
        if load.cons_hosts == 0 || load.base_capacity.is_zero() {
            continue;
        }
        let quantum = ByteSize::bytes(load.base_capacity.as_bytes() / QUANTUM_DIV);
        if quantum.is_zero() {
            continue;
        }
        let floor = ByteSize::bytes(load.base_capacity.as_bytes() / DONOR_FLOOR_DIV);
        let cap = load.base_capacity * BORROWER_CAP_MUL;
        let util = load.utilization();
        if util < DONOR_UTILIZATION && load.cons_capacity.saturating_sub(quantum) >= floor {
            // Donating must not itself push the rack over the donor
            // line: re-check utilization against the narrowed capacity.
            let narrowed =
                RackLoad { cons_capacity: load.cons_capacity.saturating_sub(quantum), ..*load };
            if narrowed.utilization() < DONOR_UTILIZATION {
                donors.push(load);
            }
        } else if util > BORROWER_UTILIZATION && load.cons_capacity + quantum <= cap {
            borrowers.push(load);
        }
    }

    let mut grants = Vec::new();
    for b in &borrowers {
        // First unused donor with the same shape, ascending rack id.
        let Some(pos) = donors
            .iter()
            .position(|d| d.cons_hosts == b.cons_hosts && d.base_capacity == b.base_capacity)
        else {
            continue;
        };
        let d = donors.remove(pos);
        grants.push(CapacityGrant {
            donor: d.rack,
            borrower: b.rack,
            quantum: ByteSize::bytes(b.base_capacity.as_bytes() / QUANTUM_DIV),
        });
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(rack: u32, demand_gib: u64, capacity_gib: u64) -> RackLoad {
        RackLoad {
            rack,
            cons_hosts: 2,
            cons_capacity: ByteSize::gib(capacity_gib),
            base_capacity: ByteSize::gib(192),
            cons_demand: ByteSize::gib(demand_gib),
        }
    }

    #[test]
    fn idle_datacenter_plans_nothing() {
        let loads: Vec<RackLoad> = (0..4).map(|r| load(r, 0, 192)).collect();
        assert!(plan_rebalance(&loads).is_empty());
    }

    #[test]
    fn hot_rack_borrows_from_coldest_eligible_rack() {
        // Rack 2 runs hot (300/384 ≈ 0.78); racks 0 and 3 are cold.
        let loads = vec![load(0, 10, 192), load(1, 200, 192), load(2, 300, 192), load(3, 0, 192)];
        let grants = plan_rebalance(&loads);
        assert_eq!(
            grants,
            vec![CapacityGrant { donor: 0, borrower: 2, quantum: ByteSize::gib(24) }],
            "lowest-id cold rack donates one base/8 quantum"
        );
    }

    #[test]
    fn donor_floor_and_borrower_cap_bound_transfers() {
        // A donor already at base/2 cannot narrow further.
        let floored = vec![load(0, 0, 96), load(1, 320, 192)];
        assert!(plan_rebalance(&floored).is_empty(), "donor at floor stays put");
        // A borrower at 2× base cannot widen further.
        let capped = vec![load(0, 0, 192), load(1, 700, 384)];
        assert!(plan_rebalance(&capped).is_empty(), "borrower at cap stays put");
    }

    #[test]
    fn mismatched_shapes_never_trade() {
        let mut a = load(0, 0, 192);
        a.cons_hosts = 4; // Different shape: capacity would not conserve.
        let loads = vec![a, load(1, 300, 192)];
        assert!(plan_rebalance(&loads).is_empty());
    }

    #[test]
    fn plan_is_a_pure_function_of_the_loads() {
        let loads = vec![load(0, 5, 192), load(1, 310, 192), load(2, 12, 192), load(3, 305, 192)];
        let a = plan_rebalance(&loads);
        let b = plan_rebalance(&loads);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2, "two borrowers, two donors, matched in id order");
        assert_eq!((a[0].donor, a[0].borrower), (0, 1));
        assert_eq!((a[1].donor, a[1].borrower), (2, 3));
    }
}
