//! Consolidation policies (§3.2) and the planner's action vocabulary.

use core::fmt;
use core::str::FromStr;

use oasis_migration::MigrationOrder;
use oasis_vm::{HostId, VmId};

/// The policy family evaluated in §5.3, plus two baselines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PolicyKind {
    /// Baseline: never consolidate; every host stays powered.
    AlwaysOn,
    /// Baseline for prior work [5, 15, 22, 28]: consolidation through full
    /// VM migration only.
    FullOnly,
    /// Exclusive use of partial migration (Jettison applied to servers): a
    /// home host is vacated only when *all* of its VMs are idle.
    OnlyPartial,
    /// The basic hybrid (§3.2 policy 1): idle VMs move partially, active
    /// VMs move in full; capacity exhaustion wakes the home and returns
    /// all its VMs.
    Default,
    /// §3.2 policy 2: additionally, a full VM that turns idle on a
    /// consolidation host is exchanged for a partial VM (via a temporary
    /// wake of its home), freeing consolidation memory.
    FullToPartial,
    /// §3.2 policy 3: like FullToPartial, but a partial VM that activates
    /// into a saturated host first tries any other powered host.
    NewHome,
}

impl PolicyKind {
    /// All policies in report order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::AlwaysOn,
        PolicyKind::FullOnly,
        PolicyKind::OnlyPartial,
        PolicyKind::Default,
        PolicyKind::FullToPartial,
        PolicyKind::NewHome,
    ];

    /// The four policies Figure 8 compares.
    pub const FIGURE8: [PolicyKind; 4] = [
        PolicyKind::OnlyPartial,
        PolicyKind::Default,
        PolicyKind::FullToPartial,
        PolicyKind::NewHome,
    ];

    /// `true` if the policy uses partial migration at all.
    pub fn uses_partial(self) -> bool {
        !matches!(self, PolicyKind::AlwaysOn | PolicyKind::FullOnly)
    }

    /// `true` if the policy consolidates active VMs with full migration.
    pub fn consolidates_active(self) -> bool {
        !matches!(self, PolicyKind::AlwaysOn | PolicyKind::OnlyPartial)
    }

    /// `true` if idle full VMs on consolidation hosts are exchanged for
    /// partial VMs.
    pub fn exchanges_full_for_partial(self) -> bool {
        matches!(self, PolicyKind::FullToPartial | PolicyKind::NewHome)
    }

    /// `true` if saturated activations try other powered hosts first.
    pub fn relocates_on_saturation(self) -> bool {
        matches!(self, PolicyKind::NewHome)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::AlwaysOn => "AlwaysOn",
            PolicyKind::FullOnly => "FullOnly",
            PolicyKind::OnlyPartial => "OnlyPartial",
            PolicyKind::Default => "Default",
            PolicyKind::FullToPartial => "FulltoPartial",
            PolicyKind::NewHome => "NewHome",
        };
        f.write_str(s)
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "alwayson" | "always-on" => Ok(PolicyKind::AlwaysOn),
            "fullonly" | "full-only" => Ok(PolicyKind::FullOnly),
            "onlypartial" | "only-partial" => Ok(PolicyKind::OnlyPartial),
            "default" => Ok(PolicyKind::Default),
            "fulltopartial" | "full-to-partial" => Ok(PolicyKind::FullToPartial),
            "newhome" | "new-home" => Ok(PolicyKind::NewHome),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

/// One step of a consolidation plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedAction {
    /// Migrate a VM from its current host.
    Migrate {
        /// Host currently running the VM.
        source: HostId,
        /// The `<vmid, type, destination>` tuple (§4.1).
        order: MigrationOrder,
    },
    /// FulltoPartial exchange (§3.2): fully migrate the idle VM back to
    /// its (temporarily woken) home, then partial-migrate it back to the
    /// same consolidation host.
    Exchange {
        /// VM to exchange.
        vm: VmId,
        /// Its home host, woken temporarily.
        home: HostId,
        /// The consolidation host keeping the (now partial) VM.
        consolidation: HostId,
    },
}

/// Decision for a partial VM that became active (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActivationDecision {
    /// The consolidation host has room: fetch the rest of the footprint;
    /// this host becomes the VM's new home.
    PromoteInPlace {
        /// The activating VM.
        vm: VmId,
    },
    /// NewHome only: move the VM in full to another powered host.
    MoveTo {
        /// The activating VM.
        vm: VmId,
        /// The chosen powered host.
        destination: HostId,
    },
    /// Wake the VM's home host and return *all* of its VMs (§3.2: once a
    /// host is awake, leaving its partial VMs consolidated is wasteful).
    ReturnHome {
        /// The home host to wake.
        home: HostId,
        /// Every VM homed there, to migrate back.
        vms: Vec<VmId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        use PolicyKind::*;
        assert!(!AlwaysOn.uses_partial());
        assert!(!FullOnly.uses_partial());
        assert!(OnlyPartial.uses_partial());
        assert!(!OnlyPartial.consolidates_active());
        assert!(Default.consolidates_active());
        assert!(!Default.exchanges_full_for_partial());
        assert!(FullToPartial.exchanges_full_for_partial());
        assert!(NewHome.exchanges_full_for_partial());
        assert!(NewHome.relocates_on_saturation());
        assert!(!FullToPartial.relocates_on_saturation());
    }

    #[test]
    fn parse_round_trip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<PolicyKind>().is_err());
        assert_eq!("full-to-partial".parse::<PolicyKind>(), Ok(PolicyKind::FullToPartial));
    }

    #[test]
    fn figure8_subset() {
        assert_eq!(PolicyKind::FIGURE8.len(), 4);
        assert!(PolicyKind::FIGURE8.iter().all(|p| p.uses_partial()));
    }
}
