//! The cluster manager façade (§4.1).
//!
//! The manager owns VM creation, migration planning and host power-mode
//! decisions. It exposes the RPC-shaped operations the prototype's clients
//! and agents use: create a VM from a configuration file, plan an interval
//! of consolidations, and react to partial-VM activations.

use oasis_mem::ByteSize;
use oasis_sim::{SimDuration, SimRng, SimTime};
use oasis_telemetry::metrics::Counter;
use oasis_telemetry::Telemetry;
use oasis_vm::{HostId, VmId};

use oasis_telemetry::{DecisionClass, Event};

use crate::placement::{
    on_partial_activated_with_stats, plan_consolidation_traced, PlanStats, PlannerConfig,
};
use crate::policy::{ActivationDecision, PlannedAction, PolicyKind};
use crate::view::{ClusterView, HostRole, ResidencyIndex};

/// Manager configuration.
#[derive(Clone, Copy, Debug)]
pub struct ManagerConfig {
    /// Consolidation policy.
    pub policy: PolicyKind,
    /// Planning-interval length ("The size of an interval is a
    /// configurable parameter", §3.1).
    pub interval: SimDuration,
    /// Energy parameters for the net-saving check.
    pub planner: PlannerConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            policy: PolicyKind::FullToPartial,
            interval: SimDuration::from_mins(5),
            planner: PlannerConfig::default(),
        }
    }
}

/// Aggregate manager statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Planning rounds executed.
    pub rounds: u64,
    /// Actions emitted in total.
    pub actions: u64,
    /// Partial-VM activations handled.
    pub activations: u64,
}

/// The Oasis cluster manager.
#[derive(Clone, Debug)]
pub struct ClusterManager {
    config: ManagerConfig,
    rng: SimRng,
    stats: ManagerStats,
    telemetry: Telemetry,
    /// Decision ids of the most recent planning round, aligned index-for-
    /// index with the actions that round returned.
    last_plan_decision_ids: Vec<u64>,
    /// Decision id of the most recent activation handling.
    last_decision_id: u64,
    /// Stats of the most recent planning round, kept so the event engine
    /// can replay an unchanged round's telemetry (see
    /// [`Self::replay_empty_round`]).
    last_plan_stats: PlanStats,
    /// Cached `planned_actions_total{policy=…}` handle. The registry
    /// hands out `Arc`-backed instruments precisely so hot paths fetch
    /// once; re-fetching per round costs label allocation plus a locked
    /// map walk. Lazily filled so the counter still registers on the
    /// first round, exactly as the uncached fetch did.
    planned_actions: Option<Counter>,
    /// Cached `activations_total{outcome=…}` handles, indexed like the
    /// outcome match in [`Self::handle_activation`]. Lazy per outcome so
    /// the registered label sets stay identical to the uncached path.
    activation_counters: [Option<Counter>; 4],
}

impl ClusterManager {
    /// Creates a manager with the given configuration and seed.
    pub fn new(config: ManagerConfig, seed: u64) -> Self {
        ClusterManager {
            config,
            rng: SimRng::new(seed ^ 0x0A51_50A5),
            stats: ManagerStats::default(),
            telemetry: Telemetry::disabled(),
            last_plan_decision_ids: Vec::new(),
            last_decision_id: 0,
            last_plan_stats: PlanStats::default(),
            planned_actions: None,
            activation_counters: [None, None, None, None],
        }
    }

    /// Routes the manager's spans and counters through `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        // The cached handles point into the previous registry.
        self.planned_actions = None;
        self.activation_counters = [None, None, None, None];
    }

    /// The cached `planned_actions_total` handle, fetched on first use.
    fn planned_actions_counter(&mut self) -> &Counter {
        if self.planned_actions.is_none() {
            self.planned_actions =
                Some(self.telemetry.metrics().counter(
                    "planned_actions_total",
                    &[("policy", &self.config.policy.to_string())],
                ));
        }
        self.planned_actions.as_ref().expect("just filled")
    }

    /// The active policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// The planning interval.
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Next planning instant after `now`.
    pub fn next_planning_time(&self, now: SimTime) -> SimTime {
        let interval = self.config.interval.as_micros();
        let next = (now.as_micros() / interval + 1) * interval;
        SimTime::from_micros(next)
    }

    /// Runs one planning round over a snapshot (§3.1 "when to migrate").
    ///
    /// Every returned action gets a decision id (see
    /// [`Self::last_plan_decision_ids`]) and a `decision_made` audit
    /// record; the round itself is summarized in one `plan_audit` event
    /// carrying the planner's inputs.
    pub fn plan(&mut self, view: &ClusterView) -> Vec<PlannedAction> {
        self.plan_with(view, None)
    }

    /// [`Self::plan`] with an optional caller-maintained residency
    /// index; `Some` lets the placement search borrow the caller's
    /// aggregates instead of rebuilding its own from the VM vector. The
    /// index must satisfy the [`ResidencyIndex`] contract for `view`.
    pub fn plan_with(
        &mut self,
        view: &ClusterView,
        index: Option<&dyn ResidencyIndex>,
    ) -> Vec<PlannedAction> {
        let round = self.stats.rounds as u32;
        let span = self.telemetry.span("manager_plan");
        let (actions, plan_stats) = plan_consolidation_traced(
            &self.telemetry,
            view,
            self.config.policy,
            &self.config.planner,
            &mut self.rng,
            index,
        );
        self.planned_actions_counter().add(actions.len() as u64);
        span.end();
        self.stats.rounds += 1;
        self.stats.actions += actions.len() as u64;
        self.last_plan_decision_ids.clear();
        for (i, action) in actions.iter().enumerate() {
            let decision = self.telemetry.next_decision_id();
            self.last_plan_decision_ids.push(decision);
            let candidates = plan_stats.action_candidates.get(i).copied().unwrap_or(0);
            let (class, vm, target) = match action {
                PlannedAction::Migrate { order, .. } => {
                    (DecisionClass::Consolidate, order.vm.0, order.destination.0)
                }
                PlannedAction::Exchange { vm, consolidation, .. } => {
                    (DecisionClass::Exchange, vm.0, consolidation.0)
                }
            };
            self.telemetry.emit(Event::DecisionMade { decision, class, vm, target, candidates });
        }
        self.telemetry.emit(Event::PlanAudit {
            interval: round,
            policy: self.config.policy.to_string(),
            decision_base: self.last_plan_decision_ids.first().copied().unwrap_or(0),
            actions: actions.len() as u32,
            exchanges: plan_stats.exchanges,
            vacated: plan_stats.vacated,
            woken: plan_stats.woken,
            approved: plan_stats.approved,
            drained: plan_stats.drained,
            candidates: plan_stats.candidates_examined,
            demand_mib: plan_stats.demand_mib,
        });
        self.last_plan_stats = plan_stats;
        actions
    }

    /// Fingerprint of the manager's private RNG stream position.
    ///
    /// The event engine samples this around [`Self::plan`]: an unchanged
    /// fingerprint proves the round consumed no draws, which (together
    /// with an unchanged view) makes the round replayable.
    pub fn rng_fingerprint(&self) -> [u64; 4] {
        self.rng.state_fingerprint()
    }

    /// Stats of the most recent planning round.
    pub fn last_plan_stats(&self) -> &PlanStats {
        &self.last_plan_stats
    }

    /// Re-emits the telemetry of a planning round whose outcome is
    /// provably identical to the previous round, without re-planning.
    ///
    /// The caller must have established that (a) the previous round
    /// returned zero actions, (b) the view is unchanged since, and
    /// (c) the previous round consumed no RNG draws
    /// ([`Self::rng_fingerprint`]). Under those premises a fresh
    /// [`Self::plan`] call would deterministically reproduce the previous
    /// round bit-for-bit, so this emits the same span/profile/counter/
    /// audit sequence — with the new round number — at `O(scans)` cost
    /// instead of `O(VMs × hosts)`.
    pub fn replay_empty_round(&mut self) {
        debug_assert!(self.last_plan_decision_ids.is_empty(), "replay of a non-empty round");
        let round = self.stats.rounds as u32;
        let span = self.telemetry.span("manager_plan");
        let search = self.telemetry.span("placement_search");
        if self.config.policy != PolicyKind::AlwaysOn {
            let scope = self.telemetry.profile("plan_consolidation");
            if self.config.policy.exchanges_full_for_partial() {
                let pass = self.telemetry.profile("exchange_pass");
                pass.end();
            }
            let pass = self.telemetry.profile("vacate_pass");
            for _ in 0..self.last_plan_stats.vacate_scans {
                let _scan = self.telemetry.profile("vacate_host_scan");
            }
            pass.end();
            let pass = self.telemetry.profile("drain_pass");
            for _ in 0..self.last_plan_stats.drain_scans {
                let _scan = self.telemetry.profile("drain_host_scan");
            }
            pass.end();
            scope.end();
        }
        search.end();
        self.planned_actions_counter().add(0);
        span.end();
        self.stats.rounds += 1;
        self.last_plan_decision_ids.clear();
        self.telemetry.emit(Event::PlanAudit {
            interval: round,
            policy: self.config.policy.to_string(),
            decision_base: 0,
            actions: 0,
            exchanges: self.last_plan_stats.exchanges,
            vacated: self.last_plan_stats.vacated,
            woken: self.last_plan_stats.woken,
            approved: self.last_plan_stats.approved,
            drained: self.last_plan_stats.drained,
            candidates: self.last_plan_stats.candidates_examined,
            demand_mib: self.last_plan_stats.demand_mib,
        });
    }

    /// Decision ids allocated for the last planning round, aligned with
    /// the actions [`Self::plan`] returned.
    pub fn last_plan_decision_ids(&self) -> &[u64] {
        &self.last_plan_decision_ids
    }

    /// Decision id allocated for the last activation handling.
    pub fn last_decision_id(&self) -> u64 {
        self.last_decision_id
    }

    /// Reacts to a partial VM that became active (§3.2).
    pub fn handle_activation(
        &mut self,
        view: &ClusterView,
        vm: VmId,
    ) -> Option<ActivationDecision> {
        self.stats.activations += 1;
        let (decision, candidates) =
            on_partial_activated_with_stats(view, vm, self.config.policy, &mut self.rng);
        let (oi, outcome) = match &decision {
            Some(ActivationDecision::PromoteInPlace { .. }) => (0, "promote_in_place"),
            Some(ActivationDecision::MoveTo { .. }) => (1, "move_to"),
            Some(ActivationDecision::ReturnHome { .. }) => (2, "return_home"),
            None => (3, "none"),
        };
        if self.activation_counters[oi].is_none() {
            self.activation_counters[oi] = Some(
                self.telemetry.metrics().counter("activations_total", &[("outcome", outcome)]),
            );
        }
        self.activation_counters[oi].as_ref().expect("just filled").inc();
        if let Some(d) = &decision {
            let id = self.telemetry.next_decision_id();
            self.last_decision_id = id;
            let (class, who, target) = match d {
                ActivationDecision::PromoteInPlace { vm } => {
                    let loc = view.vm(*vm).map_or(0, |v| v.location.0);
                    (DecisionClass::PromoteInPlace, vm.0, loc)
                }
                ActivationDecision::MoveTo { vm, destination } => {
                    (DecisionClass::Relocate, vm.0, destination.0)
                }
                ActivationDecision::ReturnHome { home, .. } => {
                    (DecisionClass::ReturnHome, vm.0, home.0)
                }
            };
            self.telemetry.emit(Event::DecisionMade {
                decision: id,
                class,
                vm: who,
                target,
                candidates,
            });
        }
        decision
    }

    /// Picks a compute host for a newly created VM (§4.1: "identifies a
    /// host with sufficient resources to accommodate the VM").
    ///
    /// Prefers powered compute hosts; if none fits, returns a sleeping
    /// compute host (the caller wakes it with Wake-on-LAN first).
    pub fn place_new_vm(&mut self, view: &ClusterView, allocation: ByteSize) -> Option<HostId> {
        let powered: Vec<HostId> = view
            .compute_hosts()
            .filter(|h| h.powered && view.free_on(h.id) >= allocation)
            .map(|h| h.id)
            .collect();
        if let Some(&h) = self.rng.choose(&powered) {
            return Some(h);
        }
        let sleeping: Vec<HostId> = view
            .compute_hosts()
            .filter(|h| !h.powered && view.free_on(h.id) >= allocation)
            .map(|h| h.id)
            .collect();
        self.rng.choose(&sleeping).copied()
    }

    /// Hosts that should transition to sleep: powered hosts with no VMs
    /// located on them (§3.1 "when to sleep").
    pub fn hosts_to_sleep(&self, view: &ClusterView) -> Vec<HostId> {
        view.hosts
            .iter()
            .filter(|h| h.powered)
            .filter(|h| view.vms_on(h.id).next().is_none())
            // Keep at least the consolidation default: empty consolidation
            // hosts sleep; empty compute hosts sleep too once vacated.
            .map(|h| h.id)
            .collect()
    }

    /// `true` if the host may sleep per §3.1 (no VMs on it).
    pub fn may_sleep(&self, view: &ClusterView, host: HostId) -> bool {
        view.host(host).is_some_and(|h| {
            let empty = view.vms_on(host).next().is_none();
            (h.role == HostRole::Compute || h.role == HostRole::Consolidation) && empty
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::testutil::small_cluster;

    fn manager(policy: PolicyKind) -> ClusterManager {
        ClusterManager::new(ManagerConfig { policy, ..ManagerConfig::default() }, 7)
    }

    #[test]
    fn planning_times_align_to_interval() {
        let m = manager(PolicyKind::Default);
        assert_eq!(m.next_planning_time(SimTime::ZERO), SimTime::from_secs(300));
        assert_eq!(m.next_planning_time(SimTime::from_secs(300)), SimTime::from_secs(600));
        assert_eq!(m.next_planning_time(SimTime::from_secs(301)), SimTime::from_secs(600));
    }

    #[test]
    fn plan_counts_stats() {
        let mut m = manager(PolicyKind::Default);
        let view = small_cluster(6, 2, 10);
        let actions = m.plan(&view);
        assert!(!actions.is_empty());
        assert_eq!(m.stats().rounds, 1);
        assert_eq!(m.stats().actions, actions.len() as u64);
    }

    #[test]
    fn place_new_vm_prefers_powered_hosts() {
        let mut m = manager(PolicyKind::Default);
        let view = small_cluster(3, 1, 2);
        let host = m.place_new_vm(&view, ByteSize::gib(4)).unwrap();
        assert!(view.host(host).unwrap().powered);
        assert_eq!(view.host(host).unwrap().role, HostRole::Compute);
    }

    #[test]
    fn place_new_vm_wakes_sleeping_compute_host_when_full() {
        let mut m = manager(PolicyKind::Default);
        let mut view = small_cluster(2, 1, 2);
        // Saturate host 0, put host 1 to sleep with no VMs.
        view.hosts[0].capacity = ByteSize::gib(8);
        view.hosts[1].powered = false;
        view.vms.retain(|v| v.home == HostId(0));
        let host = m.place_new_vm(&view, ByteSize::gib(4)).unwrap();
        assert_eq!(host, HostId(1));
    }

    #[test]
    fn place_new_vm_fails_when_cluster_full() {
        let mut m = manager(PolicyKind::Default);
        let mut view = small_cluster(1, 1, 2);
        view.hosts[0].capacity = ByteSize::gib(8);
        assert_eq!(m.place_new_vm(&view, ByteSize::gib(4)), None);
    }

    #[test]
    fn hosts_to_sleep_lists_empty_powered_hosts() {
        let mut m = manager(PolicyKind::Default);
        let view = small_cluster(2, 1, 2);
        assert!(m.hosts_to_sleep(&view).is_empty(), "hosts still hold VMs");
        // Vacate host 1's VMs (move their location to a consolidation host).
        let mut view2 = view.clone();
        view2.hosts[2].powered = true;
        for vm in &mut view2.vms {
            if vm.home == HostId(1) {
                vm.location = HostId(2);
            }
        }
        let sleepers = m.hosts_to_sleep(&view2);
        assert_eq!(sleepers, vec![HostId(1)]);
        assert!(m.may_sleep(&view2, HostId(1)));
        assert!(!m.may_sleep(&view2, HostId(0)));
        let _ = m.plan(&view); // Exercise stats.
    }

    #[test]
    fn activation_routed_to_policy() {
        let mut m = manager(PolicyKind::Default);
        let mut view = small_cluster(1, 1, 1);
        view.hosts[1].powered = true;
        view.vms[0].location = HostId(1);
        view.vms[0].partial = true;
        view.vms[0].demand = ByteSize::mib(165);
        let d = m.handle_activation(&view, view.vms[0].id);
        assert!(d.is_some());
        assert_eq!(m.stats().activations, 1);
    }
}
