//! The Oasis cluster manager — the paper's primary contribution (§3).
//!
//! The manager owns four decisions (§3.1): **when** to migrate (periodic
//! planning intervals, only when consolidation saves energy), **how** to
//! migrate (partial migration for idle VMs, pre-copy full migration for
//! active VMs), **where** to migrate (greedy vacate queue sorted by memory
//! demand, random viable destination), and **when hosts sleep** (a compute
//! host sleeps once all its VMs are gone; consolidation hosts sleep by
//! default and wake only to accommodate incoming VMs).
//!
//! * [`view`] — immutable cluster snapshots the planner works over.
//! * [`policy`] — the policy family of §3.2 (`OnlyPartial`, `Default`,
//!   `FulltoPartial`, `NewHome`) plus two baselines (`AlwaysOn`,
//!   `FullOnly`).
//! * [`placement`] — the greedy vacate planner and destination selection.
//! * [`idleness`] — dirty-rate based idleness detection (§3.1).
//! * [`manager`] — the cluster manager façade that ties them together.
//! * [`rebalance`] — inter-rack capacity rebalancing for the
//!   datacenter tier's epoch-barrier planner.
//! * [`rpc`] — the client-facing RPC interface of §4.1.

#![warn(missing_docs)]

pub mod idleness;
pub mod manager;
pub mod placement;
pub mod policy;
pub mod rebalance;
pub mod rpc;
pub mod view;

pub use manager::ClusterManager;
pub use placement::PlacementStrategy;
pub use policy::{ActivationDecision, PlannedAction, PolicyKind};
pub use rebalance::{plan_rebalance, CapacityGrant, RackLoad};
pub use view::{ClusterView, HostRole, HostView, ResidencyIndex, VmView};
