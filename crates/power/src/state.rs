//! Host power states.
//!
//! §3.1 of the paper defines three externally visible modes — *powered*,
//! *low-power/sleep* and *in-transit*. The transit mode is split here into
//! its two directions because they draw different power and take different
//! times (Table 1: suspend 138.2 W for 3.1 s, resume 149.2 W for 2.3 s).

use core::fmt;

/// Power mode of a host.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PowerState {
    /// Fully powered and able to run VMs.
    Powered,
    /// ACPI S3 suspend-to-RAM; context retained, no VM execution.
    Sleeping,
    /// Transitioning from powered to sleep.
    Suspending,
    /// Transitioning from sleep to powered.
    Resuming,
}

impl PowerState {
    /// `true` while the host can execute VMs.
    pub fn can_run_vms(self) -> bool {
        matches!(self, PowerState::Powered)
    }

    /// `true` in either transit direction (§3.1's *in-transit* mode).
    pub fn is_in_transit(self) -> bool {
        matches!(self, PowerState::Suspending | PowerState::Resuming)
    }

    /// `true` when in S3.
    pub fn is_sleeping(self) -> bool {
        matches!(self, PowerState::Sleeping)
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerState::Powered => "powered",
            PowerState::Sleeping => "sleep",
            PowerState::Suspending => "suspending",
            PowerState::Resuming => "resuming",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(PowerState::Powered.can_run_vms());
        assert!(!PowerState::Sleeping.can_run_vms());
        assert!(!PowerState::Suspending.can_run_vms());
        assert!(PowerState::Suspending.is_in_transit());
        assert!(PowerState::Resuming.is_in_transit());
        assert!(!PowerState::Powered.is_in_transit());
        assert!(PowerState::Sleeping.is_sleeping());
        assert!(!PowerState::Resuming.is_sleeping());
    }

    #[test]
    fn display() {
        assert_eq!(PowerState::Powered.to_string(), "powered");
        assert_eq!(PowerState::Sleeping.to_string(), "sleep");
    }
}
