//! Dynamic voltage and frequency scaling.
//!
//! The paper's opening argument (§1): "CPU power management technologies
//! like Dynamic Voltage and Frequency Scaling (DVFS) have drastically
//! reduced CPU energy consumption. However, other server components …
//! have come to dominate overall energy usage during low utilization
//! periods." This module models exactly that: a P-state table with the
//! classic `P ∝ C·V²·f` dynamic-power law and an ondemand-style governor,
//! showing why even a perfectly DVFS-managed idle host still burns ~60 %
//! of its peak power — the gap Oasis attacks with whole-host sleep.

/// One processor performance state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PState {
    /// Core frequency in MHz.
    pub freq_mhz: f64,
    /// Core voltage in volts.
    pub volts: f64,
}

/// A DVFS-capable CPU model.
#[derive(Clone, Debug)]
pub struct DvfsCpu {
    /// P-state table, fastest first.
    pub pstates: Vec<PState>,
    /// Effective switched capacitance coefficient (W·MHz⁻¹·V⁻²), fitted
    /// so the top P-state at full load matches the CPU's TDP share.
    pub capacitance: f64,
    /// Leakage and uncore power that scaling cannot remove, in watts.
    pub static_watts: f64,
}

impl DvfsCpu {
    /// A model of the evaluation host's Xeon E5-2609 (2.4 GHz, no turbo):
    /// four P-states down to 1.2 GHz, ~35 W dynamic at peak plus uncore.
    pub fn xeon_e5_2609() -> Self {
        let pstates = vec![
            PState { freq_mhz: 2_400.0, volts: 1.10 },
            PState { freq_mhz: 2_000.0, volts: 1.00 },
            PState { freq_mhz: 1_600.0, volts: 0.92 },
            PState { freq_mhz: 1_200.0, volts: 0.85 },
        ];
        // Fit capacitance so the top state at 100 % load draws ~35 W.
        let top = pstates[0];
        let capacitance = 35.0 / (top.freq_mhz * top.volts * top.volts);
        DvfsCpu { pstates, capacitance, static_watts: 8.0 }
    }

    /// Dynamic + static CPU power at `pstate` under `utilization ∈ [0,1]`.
    pub fn watts(&self, pstate: usize, utilization: f64) -> f64 {
        let p = self.pstates[pstate.min(self.pstates.len() - 1)];
        let u = utilization.clamp(0.0, 1.0);
        self.static_watts + self.capacitance * p.freq_mhz * p.volts * p.volts * u
    }

    /// The ondemand governor: picks the slowest P-state that still offers
    /// `headroom` × the throughput the current load needs.
    pub fn govern(&self, utilization: f64, headroom: f64) -> usize {
        let u = utilization.clamp(0.0, 1.0);
        let top = self.pstates[0].freq_mhz;
        let needed = u * top * headroom.max(1.0);
        // Choose from the slow end upward.
        for (i, p) in self.pstates.iter().enumerate().rev() {
            if p.freq_mhz >= needed {
                return i;
            }
        }
        0
    }

    /// CPU power under the governor at the given utilization.
    ///
    /// Utilization is rescaled to the chosen frequency: the same work at a
    /// lower clock keeps the core busy longer.
    pub fn governed_watts(&self, utilization: f64, headroom: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let state = self.govern(u, headroom);
        let scale = self.pstates[0].freq_mhz / self.pstates[state].freq_mhz;
        self.watts(state, (u * scale).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> DvfsCpu {
        DvfsCpu::xeon_e5_2609()
    }

    #[test]
    fn peak_power_matches_fit() {
        let c = cpu();
        let peak = c.watts(0, 1.0);
        assert!((peak - 43.0).abs() < 0.5, "peak {peak}"); // 35 dynamic + 8 static.
    }

    #[test]
    fn governor_downclocks_light_loads() {
        let c = cpu();
        assert_eq!(c.govern(0.05, 1.2), c.pstates.len() - 1, "idle → slowest");
        assert_eq!(c.govern(0.95, 1.2), 0, "busy → fastest");
        let mid = c.govern(0.5, 1.2);
        assert!(mid > 0 && mid < c.pstates.len() - 1);
    }

    #[test]
    fn governed_power_is_monotone_in_load() {
        let c = cpu();
        let mut last = 0.0;
        for step in 0..=10 {
            let u = step as f64 / 10.0;
            let w = c.governed_watts(u, 1.2);
            assert!(w >= last - 1e-9, "u={u}: {w} < {last}");
            last = w;
        }
    }

    #[test]
    fn dvfs_saves_versus_fixed_top_state() {
        let c = cpu();
        for u in [0.05, 0.2, 0.5] {
            let fixed = c.watts(0, u);
            let governed = c.governed_watts(u, 1.2);
            assert!(governed < fixed, "u={u}: governed {governed} !< fixed {fixed}");
        }
    }

    #[test]
    fn the_papers_point_idle_cpu_power_is_a_small_slice() {
        // Even with DVFS at its best, the idle CPU draws ~8-9 W — while
        // the whole idle host draws 102.2 W (Table 1). DVFS cannot touch
        // the other ~94 W; whole-host sleep (12.9 W) can.
        let c = cpu();
        let idle_cpu = c.governed_watts(0.0, 1.2);
        assert!(idle_cpu < 10.0, "idle CPU {idle_cpu}");
        let host_idle = crate::HostEnergyProfile::table1().idle_watts;
        assert!(idle_cpu < host_idle * 0.1);
        // Sleep beats any DVFS floor by a wide margin.
        assert!(crate::HostEnergyProfile::table1().sleep_watts * 2.0 < host_idle * 0.6);
    }
}
