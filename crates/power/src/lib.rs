//! Power states, ACPI S3 transitions and energy metering.
//!
//! This crate models the energy side of Oasis:
//!
//! * [`profile`] — the measured energy profiles of the paper's Table 1
//!   (host idle/load/sleep power, S3 transition times and powers, memory
//!   server and SAS drive power) plus the alternative memory-server power
//!   budgets swept in Table 3.
//! * [`state`] — the host power-state machine (§3.1: *powered*,
//!   *low-power/sleep*, *in-transit*).
//! * [`acpi`] — a timed ACPI controller that sequences suspend-to-RAM and
//!   resume with the measured 3.1 s / 2.3 s latencies.
//! * [`meter`] — watt-level energy integration producing the joules and
//!   kilowatt-hours behind the savings percentages of §5.
//! * [`dvfs`] — the P-state/governor model behind §1's observation that
//!   CPU scaling alone cannot make servers energy-proportional.

#![warn(missing_docs)]

pub mod acpi;
pub mod dvfs;
pub mod meter;
pub mod profile;
pub mod state;

pub use acpi::AcpiController;
pub use meter::EnergyMeter;
pub use profile::{HostEnergyProfile, MemoryServerProfile};
pub use state::PowerState;
