//! Energy metering.
//!
//! An [`EnergyMeter`] integrates the instantaneous power draw of one
//! device (host, memory server) over simulated time. The cluster report
//! sums meters to compute the savings percentages of §5.3, which are
//! normalized against the energy the home hosts would consume if left
//! powered for the whole simulation.

use oasis_sim::stats::TimeWeighted;
use oasis_sim::SimTime;

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3_600_000.0;

/// Integrates watts over simulated seconds into joules.
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    tw: TimeWeighted,
}

impl EnergyMeter {
    /// Creates a meter drawing zero watts at time zero.
    pub fn new() -> Self {
        EnergyMeter { tw: TimeWeighted::new() }
    }

    /// Sets the instantaneous draw at `now`.
    pub fn set_watts(&mut self, now: SimTime, watts: f64) {
        debug_assert!(watts >= 0.0, "negative power draw");
        self.tw.set(now, watts);
    }

    /// Current draw in watts.
    pub fn watts(&self) -> f64 {
        self.tw.level()
    }

    /// Total energy consumed up to `now`, in joules.
    pub fn joules_at(&mut self, now: SimTime) -> f64 {
        self.tw.integral_at(now)
    }

    /// Total energy consumed up to `now`, in kilowatt-hours.
    pub fn kwh_at(&mut self, now: SimTime) -> f64 {
        self.joules_at(now) / JOULES_PER_KWH
    }

    /// Time-weighted average draw over `[0, now]`, in watts.
    pub fn average_watts_at(&mut self, now: SimTime) -> f64 {
        self.tw.average_at(now)
    }

    /// Peak draw ever set.
    pub fn peak_watts(&self) -> f64 {
        self.tw.max_level()
    }
}

/// Energy savings of `actual` relative to `baseline` (§5.3 normalization).
///
/// Returns a fraction in `(-∞, 1]`; negative values mean the policy spent
/// more energy than leaving the hosts powered.
pub fn savings_fraction(baseline_joules: f64, actual_joules: f64) -> f64 {
    if baseline_joules <= 0.0 {
        return 0.0;
    }
    1.0 - actual_joules / baseline_joules
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_sim::SimDuration;

    #[test]
    fn integrates_constant_draw() {
        let mut m = EnergyMeter::new();
        m.set_watts(SimTime::ZERO, 100.0);
        let day = SimTime::ZERO + SimDuration::from_hours(24);
        // 100 W for 24 h = 2.4 kWh.
        assert!((m.kwh_at(day) - 2.4).abs() < 1e-9);
        assert!((m.average_watts_at(day) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn integrates_step_changes() {
        let mut m = EnergyMeter::new();
        m.set_watts(SimTime::ZERO, 102.2);
        m.set_watts(SimTime::from_secs(3_600), 12.9);
        let j = m.joules_at(SimTime::from_secs(7_200));
        assert!((j - (102.2 + 12.9) * 3_600.0).abs() < 1e-6);
        assert_eq!(m.peak_watts(), 102.2);
        assert_eq!(m.watts(), 12.9);
    }

    #[test]
    fn savings_fraction_basics() {
        assert!((savings_fraction(100.0, 72.0) - 0.28).abs() < 1e-12);
        assert_eq!(savings_fraction(0.0, 50.0), 0.0);
        assert!(savings_fraction(100.0, 120.0) < 0.0);
        assert_eq!(savings_fraction(100.0, 0.0), 1.0);
    }
}
