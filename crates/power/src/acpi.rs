//! Timed ACPI S3 controller.
//!
//! The host agent performs power management through the host's ACPI
//! interface (§4.2). This module provides the timed state machine: suspend
//! and resume requests start an in-transit period of the measured length,
//! after which the target state is reached. A wake request that arrives
//! mid-suspend is queued and honoured as soon as the suspend completes,
//! which matches how Wake-on-LAN interacts with a machine entering S3.

use oasis_sim::{SimDuration, SimTime};

use crate::profile::HostEnergyProfile;
use crate::state::PowerState;

/// Error returned for requests that are invalid in the current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcpiError {
    /// Suspend requested while not powered.
    NotPowered,
    /// Wake requested while already powered or resuming.
    NotAsleep,
}

impl core::fmt::Display for AcpiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AcpiError::NotPowered => write!(f, "host is not in the powered state"),
            AcpiError::NotAsleep => write!(f, "host is not asleep"),
        }
    }
}

impl std::error::Error for AcpiError {}

/// The ACPI S3 state machine of one host.
///
/// Callers drive it with [`request_suspend`](AcpiController::request_suspend)
/// / [`request_wake`](AcpiController::request_wake) and must deliver the
/// returned completion deadline back via
/// [`on_transition_complete`](AcpiController::on_transition_complete)
/// (typically through a scheduled simulation event).
#[derive(Clone, Debug)]
pub struct AcpiController {
    state: PowerState,
    /// Deadline of the transition in progress, if any.
    transition_ends: Option<SimTime>,
    /// A wake arrived while suspending; resume immediately after.
    wake_pending: bool,
    suspend_time: SimDuration,
    resume_time: SimDuration,
}

impl AcpiController {
    /// Creates a controller in the powered state with the profile's
    /// transition times.
    pub fn new(profile: &HostEnergyProfile) -> Self {
        AcpiController {
            state: PowerState::Powered,
            transition_ends: None,
            wake_pending: false,
            suspend_time: profile.suspend_time,
            resume_time: profile.resume_time,
        }
    }

    /// Creates a controller already in S3 (consolidation hosts sleep by
    /// default, §3.1).
    pub fn new_sleeping(profile: &HostEnergyProfile) -> Self {
        AcpiController { state: PowerState::Sleeping, ..Self::new(profile) }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Deadline of the in-flight transition, if one is in progress.
    pub fn transition_ends(&self) -> Option<SimTime> {
        self.transition_ends
    }

    /// Begins suspend-to-RAM; returns when the host will reach S3.
    pub fn request_suspend(&mut self, now: SimTime) -> Result<SimTime, AcpiError> {
        if self.state != PowerState::Powered {
            return Err(AcpiError::NotPowered);
        }
        self.state = PowerState::Suspending;
        let ends = now + self.suspend_time;
        self.transition_ends = Some(ends);
        Ok(ends)
    }

    /// Requests a wake (e.g. from Wake-on-LAN).
    ///
    /// * Sleeping → starts resuming; returns when the host will be powered.
    /// * Suspending → marks a pending wake; returns when the host will be
    ///   powered (suspend completes first, then an immediate resume — the
    ///   hardware cannot abort a suspend in flight).
    /// * Resuming/Powered → error.
    pub fn request_wake(&mut self, now: SimTime) -> Result<SimTime, AcpiError> {
        match self.state {
            PowerState::Sleeping => {
                self.state = PowerState::Resuming;
                let ends = now + self.resume_time;
                self.transition_ends = Some(ends);
                Ok(ends)
            }
            PowerState::Suspending => {
                self.wake_pending = true;
                let suspend_ends = self.transition_ends.expect("suspending implies a deadline");
                Ok(suspend_ends + self.resume_time)
            }
            PowerState::Powered | PowerState::Resuming => Err(AcpiError::NotAsleep),
        }
    }

    /// Completes the transition whose deadline is `now`.
    ///
    /// Returns the new state. If a wake was queued during a suspend, the
    /// controller chains directly into resuming and the caller must schedule
    /// the returned next deadline.
    pub fn on_transition_complete(&mut self, now: SimTime) -> (PowerState, Option<SimTime>) {
        match self.state {
            PowerState::Suspending => {
                if self.wake_pending {
                    self.wake_pending = false;
                    self.state = PowerState::Resuming;
                    let ends = now + self.resume_time;
                    self.transition_ends = Some(ends);
                    (PowerState::Resuming, Some(ends))
                } else {
                    self.state = PowerState::Sleeping;
                    self.transition_ends = None;
                    (PowerState::Sleeping, None)
                }
            }
            PowerState::Resuming => {
                self.state = PowerState::Powered;
                self.transition_ends = None;
                (PowerState::Powered, None)
            }
            s => (s, self.transition_ends),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> AcpiController {
        AcpiController::new(&HostEnergyProfile::table1())
    }

    #[test]
    fn suspend_takes_3_1_seconds() {
        let mut c = ctrl();
        let t0 = SimTime::from_secs(100);
        let ends = c.request_suspend(t0).unwrap();
        assert_eq!(ends, t0 + SimDuration::from_millis(3_100));
        assert_eq!(c.state(), PowerState::Suspending);
        let (s, next) = c.on_transition_complete(ends);
        assert_eq!(s, PowerState::Sleeping);
        assert_eq!(next, None);
    }

    #[test]
    fn resume_takes_2_3_seconds() {
        let profile = HostEnergyProfile::table1();
        let mut c = AcpiController::new_sleeping(&profile);
        let t0 = SimTime::from_secs(50);
        let ends = c.request_wake(t0).unwrap();
        assert_eq!(ends, t0 + SimDuration::from_millis(2_300));
        assert_eq!(c.state(), PowerState::Resuming);
        let (s, _) = c.on_transition_complete(ends);
        assert_eq!(s, PowerState::Powered);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let mut c = ctrl();
        assert_eq!(c.request_wake(SimTime::ZERO), Err(AcpiError::NotAsleep));
        c.request_suspend(SimTime::ZERO).unwrap();
        assert_eq!(c.request_suspend(SimTime::ZERO), Err(AcpiError::NotPowered));
    }

    #[test]
    fn wake_during_suspend_chains_into_resume() {
        let mut c = ctrl();
        let t0 = SimTime::ZERO;
        let suspend_ends = c.request_suspend(t0).unwrap();
        // WoL packet arrives mid-suspend.
        let powered_at = c.request_wake(SimTime::from_millis(1_000)).unwrap();
        assert_eq!(powered_at, suspend_ends + SimDuration::from_millis(2_300));
        let (s, next) = c.on_transition_complete(suspend_ends);
        assert_eq!(s, PowerState::Resuming);
        assert_eq!(next, Some(powered_at));
        let (s, _) = c.on_transition_complete(powered_at);
        assert_eq!(s, PowerState::Powered);
    }

    #[test]
    fn full_cycle_round_trip() {
        let mut c = ctrl();
        let ends = c.request_suspend(SimTime::ZERO).unwrap();
        c.on_transition_complete(ends);
        assert!(c.state().is_sleeping());
        let wake_ends = c.request_wake(ends).unwrap();
        c.on_transition_complete(wake_ends);
        assert_eq!(c.state(), PowerState::Powered);
        assert_eq!(wake_ends - SimTime::ZERO, HostEnergyProfile::table1().transition_round_trip());
    }

    #[test]
    fn double_wake_while_resuming_is_rejected() {
        let profile = HostEnergyProfile::table1();
        let mut c = AcpiController::new_sleeping(&profile);
        c.request_wake(SimTime::ZERO).unwrap();
        assert_eq!(c.request_wake(SimTime::ZERO), Err(AcpiError::NotAsleep));
    }
}
