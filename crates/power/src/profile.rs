//! Measured energy profiles (paper Table 1) and memory-server budgets
//! (paper Table 3).

use oasis_sim::SimDuration;

use crate::state::PowerState;

/// Energy profile of a server host.
///
/// Default values are the measurements of the paper's custom Supermicro
/// host (Table 1). Power while powered scales linearly with the number of
/// active VMs, fitted through the idle (102.2 W) and 20-active-VM
/// (137.9 W) measurements. Idle VMs draw no measurable marginal power —
/// they only hold DRAM, which is part of the idle baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct HostEnergyProfile {
    /// Power when powered with no active VMs, in watts (102.2).
    pub idle_watts: f64,
    /// Additional power per active VM, in watts (1.785 = (137.9−102.2)/20).
    pub per_active_vm_watts: f64,
    /// Power in ACPI S3, in watts (12.9).
    pub sleep_watts: f64,
    /// Power while suspending, in watts (138.2).
    pub suspend_watts: f64,
    /// Time to suspend to RAM (3.1 s).
    pub suspend_time: SimDuration,
    /// Power while resuming, in watts (149.2).
    pub resume_watts: f64,
    /// Time to resume from RAM (2.3 s).
    pub resume_time: SimDuration,
}

impl Default for HostEnergyProfile {
    fn default() -> Self {
        HostEnergyProfile {
            idle_watts: 102.2,
            per_active_vm_watts: (137.9 - 102.2) / 20.0,
            sleep_watts: 12.9,
            suspend_watts: 138.2,
            suspend_time: SimDuration::from_millis(3_100),
            resume_watts: 149.2,
            resume_time: SimDuration::from_millis(2_300),
        }
    }
}

impl HostEnergyProfile {
    /// Table 1 profile of the custom Supermicro host.
    pub fn table1() -> Self {
        Self::default()
    }

    /// Host power in a given state with `active_vms` active VMs.
    ///
    /// Only the powered state runs VMs; the VM count is ignored in every
    /// other state.
    pub fn watts(&self, state: PowerState, active_vms: usize) -> f64 {
        match state {
            PowerState::Powered => self.idle_watts + self.per_active_vm_watts * active_vms as f64,
            PowerState::Sleeping => self.sleep_watts,
            PowerState::Suspending => self.suspend_watts,
            PowerState::Resuming => self.resume_watts,
        }
    }

    /// Round-trip time through a full sleep/wake cycle.
    pub fn transition_round_trip(&self) -> SimDuration {
        self.suspend_time + self.resume_time
    }
}

/// Energy profile of the per-host low-power memory server.
///
/// The prototype pairs a 27.8 W Atom platform with a 14.4 W shared SAS
/// drive (Table 1); Table 3 explores embedded implementations down to 1 W.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryServerProfile {
    /// Power drawn while serving (or ready to serve) pages, in watts.
    pub active_watts: f64,
    /// Sustained sequential write bandwidth of the shared drive, in bytes
    /// per second (§4.3 measured 128 MiB/s).
    pub upload_bytes_per_sec: f64,
    /// Latency to serve one remote page fault, excluding network transfer
    /// (drive read + daemon processing).
    pub page_service_time: SimDuration,
}

impl MemoryServerProfile {
    /// The paper's prototype: Atom platform + SAS drive = 42.2 W.
    pub fn prototype() -> Self {
        MemoryServerProfile {
            active_watts: 27.8 + 14.4,
            upload_bytes_per_sec: 128.0 * 1024.0 * 1024.0,
            page_service_time: SimDuration::from_micros(3_500),
        }
    }

    /// A Table 3 alternative with the given power budget.
    ///
    /// Only the power draw changes; the serving path keeps prototype
    /// performance, matching the paper's sweep.
    pub fn with_budget_watts(watts: f64) -> Self {
        MemoryServerProfile { active_watts: watts, ..Self::prototype() }
    }

    /// The power budgets swept by Table 3, including the prototype.
    pub fn table3_budgets() -> Vec<MemoryServerProfile> {
        [42.2, 16.0, 8.0, 4.0, 2.0, 1.0].into_iter().map(Self::with_budget_watts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_powered_matches_measurements() {
        let p = HostEnergyProfile::table1();
        assert!((p.watts(PowerState::Powered, 0) - 102.2).abs() < 1e-9);
        assert!((p.watts(PowerState::Powered, 20) - 137.9).abs() < 1e-9);
    }

    #[test]
    fn table1_other_states() {
        let p = HostEnergyProfile::table1();
        // Active VM count is irrelevant outside the powered state.
        assert_eq!(p.watts(PowerState::Sleeping, 30), 12.9);
        assert_eq!(p.watts(PowerState::Suspending, 30), 138.2);
        assert_eq!(p.watts(PowerState::Resuming, 30), 149.2);
    }

    #[test]
    fn transition_round_trip_is_5_4_seconds() {
        let p = HostEnergyProfile::table1();
        assert_eq!(p.transition_round_trip(), SimDuration::from_millis(5_400));
    }

    #[test]
    fn sleeping_host_plus_memserver_beats_idle_host() {
        // The paper's §4.4.1 observation: 12.9 + 42.2 = 55.1 W < 102.2 W,
        // which is what makes consolidation profitable at all.
        let host = HostEnergyProfile::table1();
        let ms = MemoryServerProfile::prototype();
        assert!(host.watts(PowerState::Sleeping, 0) + ms.active_watts < host.idle_watts);
        assert!((ms.active_watts - 42.2).abs() < 1e-9);
    }

    #[test]
    fn table3_budgets() {
        let budgets = MemoryServerProfile::table3_budgets();
        assert_eq!(budgets.len(), 6);
        assert!((budgets[0].active_watts - 42.2).abs() < 1e-9);
        assert_eq!(budgets[5].active_watts, 1.0);
        // Serving performance is identical across budgets.
        for b in &budgets {
            assert_eq!(
                b.upload_bytes_per_sec,
                MemoryServerProfile::prototype().upload_bytes_per_sec
            );
        }
    }

    #[test]
    fn upload_bandwidth_is_128_mib_per_sec() {
        let ms = MemoryServerProfile::prototype();
        assert_eq!(ms.upload_bytes_per_sec, 134_217_728.0);
    }
}
