//! Idle working-set sizes.
//!
//! The cluster simulation samples each partial VM's memory consumption
//! "from the distribution collected from \[Jettison\]", whose mean idle
//! working set for 4 GiB desktop VMs was 165.63 ± 91.38 MiB — under 4 % of
//! the allocation (§5.1). This module provides that sampler plus a tracker
//! that measures a live VM's working set from its accessed pages.

use oasis_sim::SimRng;

use crate::addr::{size_of_pages, PageNum};
use crate::bitmap::Bitmap;
use crate::size::ByteSize;

/// The Jettison idle working-set distribution.
#[derive(Clone, Copy, Debug)]
pub struct IdleWssDistribution {
    /// Mean working set in MiB (165.63).
    pub mean_mib: f64,
    /// Standard deviation in MiB (91.38).
    pub std_mib: f64,
    /// Lower truncation bound in MiB; even a freshly idle VM keeps kernel
    /// timers and daemon pages resident.
    pub min_mib: f64,
}

impl Default for IdleWssDistribution {
    fn default() -> Self {
        IdleWssDistribution { mean_mib: 165.63, std_mib: 91.38, min_mib: 8.0 }
    }
}

impl IdleWssDistribution {
    /// The paper's parameters.
    pub fn jettison() -> Self {
        Self::default()
    }

    /// Samples a working-set size for a VM with the given allocation.
    ///
    /// The draw is truncated to `[min_mib, allocation]`.
    pub fn sample(&self, rng: &mut SimRng, allocation: ByteSize) -> ByteSize {
        let hi = allocation.as_mib_f64();
        let mib = rng.truncated_normal(self.mean_mib, self.std_mib, self.min_mib, hi);
        ByteSize::from_mib_f64(mib)
    }
}

/// Measures the working set of a live VM as the set of unique pages
/// accessed since the tracker was (re)started.
#[derive(Clone, Debug)]
pub struct WorkingSetTracker {
    touched: Bitmap,
}

impl WorkingSetTracker {
    /// Creates a tracker for a VM of `num_pages` pages.
    pub fn new(num_pages: u64) -> Self {
        WorkingSetTracker { touched: Bitmap::new(num_pages as usize) }
    }

    /// Records an access; returns `true` if the page is new to the set.
    pub fn touch(&mut self, page: PageNum) -> bool {
        let i = page.0 as usize;
        i < self.touched.len() && self.touched.set(i)
    }

    /// Records accesses to `start..start + n` in one pass; returns how
    /// many pages were new to the set.
    ///
    /// Equivalent to `n` calls of [`touch`](WorkingSetTracker::touch);
    /// the portion of the range beyond the tracker is ignored just as
    /// per-page out-of-range touches are.
    pub fn touch_range(&mut self, start: PageNum, n: u64) -> u64 {
        let s = (start.0 as usize).min(self.touched.len());
        let e = ((start.0 + n) as usize).min(self.touched.len());
        self.touched.set_range(s, e - s) as u64
    }

    /// Number of unique pages touched.
    pub fn unique_pages(&self) -> u64 {
        self.touched.count_ones() as u64
    }

    /// Size of the working set in bytes.
    pub fn size(&self) -> ByteSize {
        size_of_pages(self.unique_pages())
    }

    /// Restarts measurement (new idle epoch).
    pub fn reset(&mut self) {
        self.touched.clear_all();
    }

    /// The touched pages, ascending.
    pub fn pages(&self) -> Vec<PageNum> {
        self.touched.iter_ones().map(|i| PageNum(i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_statistics_match_jettison() {
        let dist = IdleWssDistribution::jettison();
        let mut rng = SimRng::new(1);
        let alloc = ByteSize::gib(4);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = dist.sample(&mut rng, alloc);
            assert!(s >= ByteSize::mib(8));
            assert!(s <= alloc);
            sum += s.as_mib_f64();
        }
        let mean = sum / n as f64;
        // Truncation at 8 MiB nudges the mean up slightly; stay close.
        assert!((mean - 165.63).abs() < 12.0, "mean {mean}");
    }

    #[test]
    fn sample_is_under_4_percent_of_allocation_on_average() {
        // The paper's §5.1 headline: mean idle WSS < 4 % of 4 GiB.
        let dist = IdleWssDistribution::jettison();
        let mut rng = SimRng::new(2);
        let alloc = ByteSize::gib(4);
        let mean_frac: f64 = (0..5_000)
            .map(|_| dist.sample(&mut rng, alloc).as_bytes() as f64 / alloc.as_bytes() as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!(mean_frac < 0.045, "mean fraction {mean_frac}");
    }

    #[test]
    fn small_allocation_truncates() {
        let dist = IdleWssDistribution::jettison();
        let mut rng = SimRng::new(3);
        let alloc = ByteSize::mib(64);
        for _ in 0..1_000 {
            assert!(dist.sample(&mut rng, alloc) <= alloc);
        }
    }

    #[test]
    fn touch_range_matches_serial_touches() {
        let mut batched = WorkingSetTracker::new(100);
        let mut serial = WorkingSetTracker::new(100);
        serial.touch(PageNum(12));
        batched.touch(PageNum(12));
        let fresh = batched.touch_range(PageNum(10), 20);
        let slow = (10..30).filter(|&p| serial.touch(PageNum(p))).count() as u64;
        assert_eq!(fresh, slow);
        assert_eq!(batched.pages(), serial.pages());
        // Out-of-range tail ignored, like per-page touches.
        assert_eq!(batched.touch_range(PageNum(95), 10), 5);
        assert_eq!(batched.touch_range(PageNum(200), 5), 0);
    }

    #[test]
    fn tracker_counts_unique_pages() {
        let mut t = WorkingSetTracker::new(1_000);
        assert!(t.touch(PageNum(1)));
        assert!(!t.touch(PageNum(1)));
        assert!(t.touch(PageNum(2)));
        assert_eq!(t.unique_pages(), 2);
        assert_eq!(t.size(), ByteSize::bytes(8_192));
        assert_eq!(t.pages(), vec![PageNum(1), PageNum(2)]);
        t.reset();
        assert_eq!(t.unique_pages(), 0);
        assert!(!t.touch(PageNum(5_000)), "out of range ignored");
    }
}
