//! Content-based page sharing (deduplication).
//!
//! Assumption 1 of the paper rests on "sophisticated memory sharing
//! techniques, such as ballooning and de-duplication, \[enabling\] memory
//! over-commitment by … a factor of 1.5". This module implements the
//! sharing half: a copy-on-write share pool in the style of VMware ESX
//! page sharing / KSM. Identical pages are stored once with a reference
//! count; a write to a shared page breaks the sharing (copy-on-write).
//!
//! The pool works on content *fingerprints* so callers can feed either
//! real page bytes (functional level) or synthesized fingerprints
//! (statistical level).

use std::collections::BTreeMap;

use crate::addr::PAGE_SIZE;
use crate::size::ByteSize;

/// A 64-bit content fingerprint of one page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints real page bytes (FNV-1a over the content).
    ///
    /// A production deduplicator would follow the hash with a byte
    /// comparison to rule out collisions; at 64 bits the collision rate
    /// is negligible for the pool sizes simulated here, and the pool
    /// semantics are identical either way.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Fingerprint(h)
    }

    /// The fingerprint of an all-zero page (precomputed hot path).
    pub fn zero_page() -> Fingerprint {
        Fingerprint::of(&[0u8; PAGE_SIZE as usize])
    }
}

/// Handle to one logical page registered in the pool.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct PageHandle(u64);

#[derive(Clone, Debug)]
struct ShareEntry {
    refs: u64,
}

/// A copy-on-write page-sharing pool.
///
/// # Examples
///
/// ```
/// use oasis_mem::dedup::{Fingerprint, SharePool};
///
/// let mut pool = SharePool::new();
/// let zero = Fingerprint::zero_page();
/// let a = pool.insert(zero);
/// let b = pool.insert(zero);
/// assert_eq!(pool.physical_pages(), 1, "two logical pages, one frame");
/// pool.write(b); // Copy-on-write breaks the sharing.
/// assert_eq!(pool.physical_pages(), 2);
/// pool.remove(a);
/// pool.remove(b);
/// assert_eq!(pool.physical_pages(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharePool {
    /// Shared frames by content.
    shared: BTreeMap<Fingerprint, ShareEntry>,
    /// Where each logical page points: shared content or a private frame.
    pages: BTreeMap<u64, Option<Fingerprint>>,
    next_handle: u64,
    /// Pages currently private (written / unsharable).
    private_pages: u64,
    /// Lifetime counters.
    cow_breaks: u64,
}

impl SharePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a logical page with the given content.
    pub fn insert(&mut self, content: Fingerprint) -> PageHandle {
        let handle = PageHandle(self.next_handle);
        self.next_handle += 1;
        self.shared.entry(content).and_modify(|e| e.refs += 1).or_insert(ShareEntry { refs: 1 });
        self.pages.insert(handle.0, Some(content));
        handle
    }

    /// Registers a logical page that can never be shared (e.g. pinned
    /// device memory).
    pub fn insert_private(&mut self) -> PageHandle {
        let handle = PageHandle(self.next_handle);
        self.next_handle += 1;
        self.pages.insert(handle.0, None);
        self.private_pages += 1;
        handle
    }

    /// Records a write to a page: if shared, the sharing breaks
    /// (copy-on-write) and the page becomes private.
    ///
    /// Returns `true` if a copy had to be made.
    pub fn write(&mut self, page: PageHandle) -> bool {
        match self.pages.get_mut(&page.0) {
            Some(slot @ Some(_)) => {
                let content = slot.take().expect("checked shared");
                self.private_pages += 1;
                let entry = self.shared.get_mut(&content).expect("refs track pages");
                entry.refs -= 1;
                let was_shared = entry.refs > 0;
                if entry.refs == 0 {
                    self.shared.remove(&content);
                }
                self.cow_breaks += 1;
                // A copy is physical work only if others still share it;
                // a sole owner just repurposes the frame.
                was_shared
            }
            _ => false,
        }
    }

    /// Re-registers a page's content after a write settled (a KSM-style
    /// scanner merging identical pages back).
    pub fn rescan(&mut self, page: PageHandle, content: Fingerprint) -> bool {
        match self.pages.get_mut(&page.0) {
            Some(slot @ None) => {
                *slot = Some(content);
                self.private_pages -= 1;
                self.shared
                    .entry(content)
                    .and_modify(|e| e.refs += 1)
                    .or_insert(ShareEntry { refs: 1 });
                true
            }
            _ => false,
        }
    }

    /// Unregisters a logical page.
    pub fn remove(&mut self, page: PageHandle) -> bool {
        match self.pages.remove(&page.0) {
            Some(Some(content)) => {
                let entry = self.shared.get_mut(&content).expect("refs track pages");
                entry.refs -= 1;
                if entry.refs == 0 {
                    self.shared.remove(&content);
                }
                true
            }
            Some(None) => {
                self.private_pages -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of registered logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of physical frames actually needed.
    pub fn physical_pages(&self) -> u64 {
        self.shared.len() as u64 + self.private_pages
    }

    /// Logical bytes represented.
    pub fn logical_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.logical_pages() * PAGE_SIZE)
    }

    /// Physical bytes consumed.
    pub fn physical_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.physical_pages() * PAGE_SIZE)
    }

    /// Over-commit factor achieved: logical / physical (1.0 when empty).
    pub fn overcommit_factor(&self) -> f64 {
        if self.physical_pages() == 0 {
            return 1.0;
        }
        self.logical_pages() as f64 / self.physical_pages() as f64
    }

    /// Copy-on-write breaks observed.
    pub fn cow_breaks(&self) -> u64 {
        self.cow_breaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pages_share_one_frame() {
        let mut pool = SharePool::new();
        let zero = Fingerprint::zero_page();
        let handles: Vec<PageHandle> = (0..100).map(|_| pool.insert(zero)).collect();
        assert_eq!(pool.logical_pages(), 100);
        assert_eq!(pool.physical_pages(), 1);
        assert!((pool.overcommit_factor() - 100.0).abs() < 1e-9);
        for h in handles {
            pool.remove(h);
        }
        assert_eq!(pool.physical_pages(), 0);
        assert_eq!(pool.overcommit_factor(), 1.0);
    }

    #[test]
    fn distinct_pages_do_not_share() {
        let mut pool = SharePool::new();
        for i in 0..50u64 {
            pool.insert(Fingerprint(i));
        }
        assert_eq!(pool.physical_pages(), 50);
        assert!((pool.overcommit_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cow_break_on_write() {
        let mut pool = SharePool::new();
        let fp = Fingerprint(7);
        let a = pool.insert(fp);
        let b = pool.insert(fp);
        assert_eq!(pool.physical_pages(), 1);
        assert!(pool.write(a), "breaking a shared page copies");
        assert_eq!(pool.physical_pages(), 2);
        assert_eq!(pool.cow_breaks(), 1);
        // Writing the now-private page again copies nothing.
        assert!(!pool.write(a));
        // The sole remaining sharer writing also copies nothing.
        assert!(!pool.write(b));
        assert_eq!(pool.physical_pages(), 2);
    }

    #[test]
    fn rescan_remerges_pages() {
        let mut pool = SharePool::new();
        let fp = Fingerprint(9);
        let a = pool.insert(fp);
        let _b = pool.insert(fp);
        pool.write(a);
        assert_eq!(pool.physical_pages(), 2);
        assert!(pool.rescan(a, fp));
        assert_eq!(pool.physical_pages(), 1);
        assert!(!pool.rescan(a, fp), "already shared");
    }

    #[test]
    fn private_pages_never_share() {
        let mut pool = SharePool::new();
        let p = pool.insert_private();
        pool.insert_private();
        assert_eq!(pool.physical_pages(), 2);
        assert!(!pool.write(p), "private pages copy nothing");
        assert!(pool.remove(p));
        assert!(!pool.remove(p), "double remove");
        assert_eq!(pool.physical_pages(), 1);
    }

    #[test]
    fn fingerprints_of_real_pages() {
        let zero = vec![0u8; PAGE_SIZE as usize];
        assert_eq!(Fingerprint::of(&zero), Fingerprint::zero_page());
        let mut other = zero.clone();
        other[100] = 1;
        assert_ne!(Fingerprint::of(&other), Fingerprint::zero_page());
    }

    #[test]
    fn desktop_vm_mix_reaches_paper_overcommit() {
        // A freshly booted 4 GiB desktop: ~55 % untouched zero pages and
        // some duplicated library pages give well over the paper's 1.5x.
        use crate::compress::{PageClass, PageMix};
        use oasis_sim::SimRng;
        let mut pool = SharePool::new();
        let mut rng = SimRng::new(1);
        let mix = PageMix::desktop();
        for i in 0..10_000u64 {
            // 55 % untouched (zero), rest touched with some repeats.
            if rng.chance(0.55) {
                pool.insert(Fingerprint::zero_page());
            } else {
                let class = mix.sample(&mut rng);
                // Library pages repeat across processes: small id space.
                let id = match class {
                    PageClass::Code | PageClass::Text => rng.below(2_000),
                    _ => i | 1 << 40,
                };
                pool.insert(Fingerprint(id << 8 | class as u64));
            }
        }
        let factor = pool.overcommit_factor();
        assert!(factor > 1.5, "overcommit factor {factor}");
        assert!(factor < 5.0, "overcommit factor {factor}");
    }
}
