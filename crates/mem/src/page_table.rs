//! Per-VM pseudo-physical page tables.
//!
//! When the host agent creates a partial VM it builds page tables whose
//! entries are marked absent, so any access faults and memtap fetches the
//! page from the memory server (§4.2). This module models that structure:
//! present/accessed/dirty bits per page plus a sparse map of backing
//! machine frames for resident pages.

use std::collections::BTreeMap;

use crate::addr::{size_of_pages, MachineFrame, PageNum};
use crate::bitmap::Bitmap;
use crate::size::ByteSize;

/// Outcome of a guest access through the page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The page is resident; access completed.
    Hit,
    /// The page is absent; the vCPU blocks until the page is installed.
    Fault,
}

/// Error type for page-table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageTableError {
    /// The page number exceeds the VM's allocation.
    OutOfRange(PageNum),
    /// Installing a page that is already present.
    AlreadyPresent(PageNum),
}

impl core::fmt::Display for PageTableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageTableError::OutOfRange(p) => write!(f, "{p:?} beyond VM allocation"),
            PageTableError::AlreadyPresent(p) => write!(f, "{p:?} already present"),
        }
    }
}

impl std::error::Error for PageTableError {}

/// A VM's pseudo-physical page table.
#[derive(Clone, Debug)]
pub struct PageTable {
    present: Bitmap,
    accessed: Bitmap,
    dirty: Bitmap,
    frames: BTreeMap<u64, MachineFrame>,
}

impl PageTable {
    /// Creates a table for a fully resident VM (all entries present).
    ///
    /// Frames are left unassigned; callers that model the host's physical
    /// memory can install mappings explicitly.
    pub fn new_resident(num_pages: u64) -> Self {
        let mut present = Bitmap::new(num_pages as usize);
        present.set_all();
        PageTable {
            present,
            accessed: Bitmap::new(num_pages as usize),
            dirty: Bitmap::new(num_pages as usize),
            frames: BTreeMap::new(),
        }
    }

    /// Creates a table for a partial VM (all entries absent, §4.2).
    pub fn new_absent(num_pages: u64) -> Self {
        PageTable {
            present: Bitmap::new(num_pages as usize),
            accessed: Bitmap::new(num_pages as usize),
            dirty: Bitmap::new(num_pages as usize),
            frames: BTreeMap::new(),
        }
    }

    /// Number of pages in the VM's allocation.
    pub fn num_pages(&self) -> u64 {
        self.present.len() as u64
    }

    /// Number of resident pages.
    pub fn present_count(&self) -> u64 {
        self.present.count_ones() as u64
    }

    /// Bytes of resident memory.
    pub fn resident_bytes(&self) -> ByteSize {
        size_of_pages(self.present_count())
    }

    /// Number of pages accessed since the last [`clear_accessed`].
    ///
    /// [`clear_accessed`]: PageTable::clear_accessed
    pub fn accessed_count(&self) -> u64 {
        self.accessed.count_ones() as u64
    }

    /// Number of pages dirtied since the last [`take_dirty`].
    ///
    /// [`take_dirty`]: PageTable::take_dirty
    pub fn dirty_count(&self) -> u64 {
        self.dirty.count_ones() as u64
    }

    /// `true` if the page is resident.
    pub fn is_present(&self, page: PageNum) -> bool {
        (page.0 as usize) < self.present.len() && self.present.get(page.0 as usize)
    }

    fn check_range(&self, page: PageNum) -> Result<usize, PageTableError> {
        let i = page.0 as usize;
        if i >= self.present.len() {
            Err(PageTableError::OutOfRange(page))
        } else {
            Ok(i)
        }
    }

    /// Performs a guest access; returns [`Access::Fault`] for absent pages.
    ///
    /// On a hit the accessed bit is set, and the dirty bit too for writes.
    pub fn touch(&mut self, page: PageNum, write: bool) -> Result<Access, PageTableError> {
        let i = self.check_range(page)?;
        if !self.present.get(i) {
            return Ok(Access::Fault);
        }
        self.accessed.set(i);
        if write {
            self.dirty.set(i);
        }
        Ok(Access::Hit)
    }

    /// Length of the run of present pages starting at `start` (0 for
    /// absent or out-of-range pages).
    pub fn present_run(&self, start: PageNum) -> u64 {
        self.present.run_len(start.0 as usize, true) as u64
    }

    /// Batched equivalent of calling [`touch`](PageTable::touch) once per
    /// page of `start..start + writes.len()` (page `start + i` touched
    /// with `writes[i]`), stopping at the first fault.
    ///
    /// Returns the number of hits consumed from the front of `writes`;
    /// the next page after those is either absent (a fault the caller
    /// services exactly as in the serial path) or past the end of the
    /// slice. The run is truncated at the table end. The resulting
    /// accessed/dirty state is identical to the serial loop: accessed
    /// bits are applied as one range, dirty bits per written page.
    ///
    /// Errors with [`PageTableError::OutOfRange`] only when `start`
    /// itself is beyond the allocation, like the first serial touch.
    pub fn touch_run(&mut self, start: PageNum, writes: &[bool]) -> Result<u64, PageTableError> {
        let i = self.check_range(start)?;
        let hits = (self.present.run_len(i, true)).min(writes.len());
        self.accessed.set_range(i, hits);
        for (k, &write) in writes[..hits].iter().enumerate() {
            if write {
                self.dirty.set(i + k);
            }
        }
        Ok(hits as u64)
    }

    /// Installs a fetched page into `frame`, completing a fault.
    pub fn install(&mut self, page: PageNum, frame: MachineFrame) -> Result<(), PageTableError> {
        let i = self.check_range(page)?;
        if self.present.get(i) {
            return Err(PageTableError::AlreadyPresent(page));
        }
        self.present.set(i);
        self.accessed.set(i);
        self.frames.insert(page.0, frame);
        Ok(())
    }

    /// Removes a page, returning its frame if one was mapped.
    pub fn evict(&mut self, page: PageNum) -> Result<Option<MachineFrame>, PageTableError> {
        let i = self.check_range(page)?;
        self.present.clear(i);
        self.accessed.clear(i);
        self.dirty.clear(i);
        Ok(self.frames.remove(&page.0))
    }

    /// The machine frame backing a resident page, if assigned.
    pub fn frame_of(&self, page: PageNum) -> Option<MachineFrame> {
        self.frames.get(&page.0).copied()
    }

    /// Pages dirtied since the last call; clears the dirty bits.
    ///
    /// This is the primitive behind differential upload (§4.3) and
    /// reintegration of only dirty state (§4.2).
    pub fn take_dirty(&mut self) -> Vec<PageNum> {
        self.dirty.drain_ones().into_iter().map(|i| PageNum(i as u64)).collect()
    }

    /// Pages accessed since the last [`clear_accessed`].
    ///
    /// [`clear_accessed`]: PageTable::clear_accessed
    pub fn accessed_pages(&self) -> Vec<PageNum> {
        self.accessed.iter_ones().map(|i| PageNum(i as u64)).collect()
    }

    /// Clears all accessed bits (start of a new tracking epoch).
    pub fn clear_accessed(&mut self) {
        self.accessed.clear_all();
    }

    /// Iterates over resident page numbers in ascending order.
    pub fn present_pages(&self) -> impl Iterator<Item = PageNum> + '_ {
        self.present.iter_ones().map(|i| PageNum(i as u64))
    }

    /// Marks every page dirty (e.g. first pre-copy iteration copies all).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.set_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_table_hits() {
        let mut pt = PageTable::new_resident(100);
        assert_eq!(pt.present_count(), 100);
        assert_eq!(pt.touch(PageNum(5), false), Ok(Access::Hit));
        assert_eq!(pt.accessed_count(), 1);
        assert_eq!(pt.dirty_count(), 0);
        assert_eq!(pt.touch(PageNum(5), true), Ok(Access::Hit));
        assert_eq!(pt.dirty_count(), 1);
    }

    #[test]
    fn absent_table_faults_until_installed() {
        let mut pt = PageTable::new_absent(100);
        assert_eq!(pt.present_count(), 0);
        assert_eq!(pt.touch(PageNum(7), false), Ok(Access::Fault));
        pt.install(PageNum(7), MachineFrame(42)).unwrap();
        assert_eq!(pt.touch(PageNum(7), false), Ok(Access::Hit));
        assert_eq!(pt.frame_of(PageNum(7)), Some(MachineFrame(42)));
        assert_eq!(pt.present_count(), 1);
        assert_eq!(pt.resident_bytes(), ByteSize::bytes(4_096));
    }

    #[test]
    fn double_install_rejected() {
        let mut pt = PageTable::new_absent(10);
        pt.install(PageNum(1), MachineFrame(1)).unwrap();
        assert_eq!(
            pt.install(PageNum(1), MachineFrame(2)),
            Err(PageTableError::AlreadyPresent(PageNum(1)))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut pt = PageTable::new_absent(10);
        assert_eq!(pt.touch(PageNum(10), false), Err(PageTableError::OutOfRange(PageNum(10))));
        assert!(pt.install(PageNum(11), MachineFrame(0)).is_err());
        assert!(pt.evict(PageNum(12)).is_err());
        assert!(!pt.is_present(PageNum(10_000)));
    }

    #[test]
    fn take_dirty_resets_epoch() {
        let mut pt = PageTable::new_resident(50);
        pt.touch(PageNum(3), true).unwrap();
        pt.touch(PageNum(9), true).unwrap();
        pt.touch(PageNum(9), true).unwrap();
        let dirty = pt.take_dirty();
        assert_eq!(dirty, vec![PageNum(3), PageNum(9)]);
        assert_eq!(pt.dirty_count(), 0);
        pt.touch(PageNum(4), true).unwrap();
        assert_eq!(pt.take_dirty(), vec![PageNum(4)]);
    }

    #[test]
    fn evict_clears_metadata() {
        let mut pt = PageTable::new_absent(10);
        pt.install(PageNum(2), MachineFrame(5)).unwrap();
        pt.touch(PageNum(2), true).unwrap();
        let frame = pt.evict(PageNum(2)).unwrap();
        assert_eq!(frame, Some(MachineFrame(5)));
        assert_eq!(pt.touch(PageNum(2), false), Ok(Access::Fault));
        assert_eq!(pt.dirty_count(), 0);
    }

    #[test]
    fn accessed_tracking() {
        let mut pt = PageTable::new_resident(20);
        pt.touch(PageNum(1), false).unwrap();
        pt.touch(PageNum(2), false).unwrap();
        assert_eq!(pt.accessed_pages(), vec![PageNum(1), PageNum(2)]);
        pt.clear_accessed();
        assert_eq!(pt.accessed_count(), 0);
    }

    #[test]
    fn mark_all_dirty_for_precopy() {
        let mut pt = PageTable::new_resident(30);
        pt.mark_all_dirty();
        assert_eq!(pt.take_dirty().len(), 30);
    }

    #[test]
    fn present_run_tracks_residency() {
        let mut pt = PageTable::new_absent(100);
        for p in 10..20 {
            pt.install(PageNum(p), MachineFrame(p)).unwrap();
        }
        assert_eq!(pt.present_run(PageNum(10)), 10);
        assert_eq!(pt.present_run(PageNum(15)), 5);
        assert_eq!(pt.present_run(PageNum(9)), 0, "absent page");
        assert_eq!(pt.present_run(PageNum(100)), 0, "out of range");
        let full = PageTable::new_resident(64);
        assert_eq!(full.present_run(PageNum(0)), 64);
    }

    #[test]
    fn touch_run_matches_serial_touches() {
        let writes = [true, false, true, true, false, false, true];
        let mut serial = PageTable::new_resident(50);
        let mut batched = serial.clone();
        for (i, &w) in writes.iter().enumerate() {
            assert_eq!(serial.touch(PageNum(3 + i as u64), w), Ok(Access::Hit));
        }
        assert_eq!(batched.touch_run(PageNum(3), &writes), Ok(writes.len() as u64));
        assert_eq!(batched.accessed_pages(), serial.accessed_pages());
        assert_eq!(batched.take_dirty(), serial.take_dirty());
    }

    #[test]
    fn touch_run_stops_at_first_fault() {
        let mut pt = PageTable::new_absent(50);
        pt.install(PageNum(0), MachineFrame(0)).unwrap();
        pt.install(PageNum(1), MachineFrame(1)).unwrap();
        // Page 2 is absent: two hits consumed, the fault left for the
        // caller, no metadata recorded past the run.
        assert_eq!(pt.touch_run(PageNum(0), &[true; 5]), Ok(2));
        assert_eq!(pt.accessed_count(), 2);
        assert_eq!(pt.dirty_count(), 2);
        assert_eq!(pt.touch(PageNum(2), true), Ok(Access::Fault));
        // Starting on an absent page consumes nothing, like a first
        // serial touch that faults.
        assert_eq!(pt.touch_run(PageNum(2), &[false; 3]), Ok(0));
        // Out-of-range start errors exactly like touch.
        assert_eq!(
            pt.touch_run(PageNum(50), &[true]),
            Err(PageTableError::OutOfRange(PageNum(50)))
        );
    }

    #[test]
    fn touch_run_truncates_at_table_end() {
        let mut pt = PageTable::new_resident(10);
        assert_eq!(pt.touch_run(PageNum(8), &[true; 5]), Ok(2));
        assert_eq!(pt.accessed_count(), 2);
        assert_eq!(pt.dirty_count(), 2);
    }

    #[test]
    fn present_pages_iteration() {
        let mut pt = PageTable::new_absent(10);
        pt.install(PageNum(9), MachineFrame(0)).unwrap();
        pt.install(PageNum(1), MachineFrame(1)).unwrap();
        let pages: Vec<PageNum> = pt.present_pages().collect();
        assert_eq!(pages, vec![PageNum(1), PageNum(9)]);
    }
}
