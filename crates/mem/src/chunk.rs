//! The 2 MiB chunk frame allocator.
//!
//! Xen's page-fault handling was extended to allocate frames for partial
//! VMs on demand "at the granularity of a chunk consisting of 2 MiB in
//! order to reduce fragmentation of the host's heap" (§4.2). This module
//! models that allocator over a host's physical frame space: each owner
//! (VM) fills its current chunk before a new one is carved out, and all of
//! an owner's chunks are released together when its VM leaves the host.

use std::collections::BTreeMap;

use crate::addr::{MachineFrame, PAGE_SIZE};
use crate::size::ByteSize;

/// Allocation granularity of the host heap: one 2 MiB chunk (§4.2).
pub const CHUNK_SIZE: ByteSize = ByteSize::mib(2);

/// Frames per 2 MiB chunk.
pub const FRAMES_PER_CHUNK: u64 = CHUNK_SIZE.as_bytes() / PAGE_SIZE;

/// Error returned when the host has no free chunks left.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory;

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "host heap exhausted: no free 2 MiB chunks")
    }
}

impl std::error::Error for OutOfMemory {}

/// Identifier of an allocation owner (one per hosted VM).
pub type OwnerId = u32;

#[derive(Clone, Debug)]
struct OwnerState {
    /// Chunk indices owned, in allocation order.
    chunks: Vec<u64>,
    /// Frames used within the most recent chunk.
    used_in_last: u64,
}

/// A host's chunked physical-frame allocator.
#[derive(Clone, Debug)]
pub struct ChunkAllocator {
    total_chunks: u64,
    free: Vec<u64>,
    owners: BTreeMap<OwnerId, OwnerState>,
}

impl ChunkAllocator {
    /// Creates an allocator over `capacity` bytes of host memory.
    ///
    /// Capacity is rounded down to a whole number of 2 MiB chunks.
    pub fn new(capacity: ByteSize) -> Self {
        let total_chunks = capacity.as_bytes() / (FRAMES_PER_CHUNK * PAGE_SIZE);
        // Free list kept in descending order so allocation pops the lowest
        // chunk index first (deterministic and cache-friendly).
        let free: Vec<u64> = (0..total_chunks).rev().collect();
        ChunkAllocator { total_chunks, free, owners: BTreeMap::new() }
    }

    /// Total chunks managed.
    pub fn total_chunks(&self) -> u64 {
        self.total_chunks
    }

    /// Chunks not yet handed to any owner.
    pub fn free_chunks(&self) -> u64 {
        self.free.len() as u64
    }

    /// Bytes reserved by an owner (whole chunks, not just used frames).
    pub fn reserved_bytes(&self, owner: OwnerId) -> ByteSize {
        let chunks = self.owners.get(&owner).map_or(0, |o| o.chunks.len() as u64);
        ByteSize::bytes(chunks * FRAMES_PER_CHUNK * PAGE_SIZE)
    }

    /// Frames actually used by an owner.
    pub fn used_frames(&self, owner: OwnerId) -> u64 {
        self.owners.get(&owner).map_or(0, |o| {
            if o.chunks.is_empty() {
                0
            } else {
                (o.chunks.len() as u64 - 1) * FRAMES_PER_CHUNK + o.used_in_last
            }
        })
    }

    /// Allocates one frame for `owner`, carving a new chunk if needed.
    pub fn alloc_frame(&mut self, owner: OwnerId) -> Result<MachineFrame, OutOfMemory> {
        let state = self
            .owners
            .entry(owner)
            .or_insert(OwnerState { chunks: Vec::new(), used_in_last: FRAMES_PER_CHUNK });
        if state.used_in_last == FRAMES_PER_CHUNK {
            let chunk = self.free.pop().ok_or(OutOfMemory)?;
            state.chunks.push(chunk);
            state.used_in_last = 0;
        }
        let chunk = *state.chunks.last().expect("chunk pushed above");
        let frame = chunk * FRAMES_PER_CHUNK + state.used_in_last;
        state.used_in_last += 1;
        Ok(MachineFrame(frame))
    }

    /// Releases every chunk owned by `owner` (VM departed the host).
    ///
    /// Returns the number of chunks released.
    pub fn free_owner(&mut self, owner: OwnerId) -> u64 {
        if let Some(state) = self.owners.remove(&owner) {
            let n = state.chunks.len() as u64;
            self.free.extend(state.chunks.into_iter().rev());
            // Keep the free list sorted descending for deterministic reuse.
            self.free.sort_unstable_by(|a, b| b.cmp(a));
            n
        } else {
            0
        }
    }

    /// Internal fragmentation: fraction of reserved frames left unused.
    pub fn fragmentation(&self) -> f64 {
        let reserved: u64 =
            self.owners.values().map(|o| o.chunks.len() as u64 * FRAMES_PER_CHUNK).sum();
        if reserved == 0 {
            return 0.0;
        }
        let used: u64 = self
            .owners
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .iter()
            .map(|&o| self.used_frames(o))
            .sum();
        1.0 - used as f64 / reserved as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_geometry() {
        assert_eq!(FRAMES_PER_CHUNK, 512);
        let a = ChunkAllocator::new(ByteSize::mib(10));
        assert_eq!(a.total_chunks(), 5);
        assert_eq!(a.free_chunks(), 5);
    }

    #[test]
    fn frames_fill_chunks_sequentially() {
        let mut a = ChunkAllocator::new(ByteSize::mib(4));
        let f0 = a.alloc_frame(1).unwrap();
        let f1 = a.alloc_frame(1).unwrap();
        assert_eq!(f0, MachineFrame(0));
        assert_eq!(f1, MachineFrame(1));
        assert_eq!(a.free_chunks(), 1);
        assert_eq!(a.used_frames(1), 2);
        assert_eq!(a.reserved_bytes(1), ByteSize::mib(2));
    }

    #[test]
    fn second_owner_gets_its_own_chunk() {
        let mut a = ChunkAllocator::new(ByteSize::mib(4));
        a.alloc_frame(1).unwrap();
        let f = a.alloc_frame(2).unwrap();
        assert_eq!(f, MachineFrame(FRAMES_PER_CHUNK));
        assert_eq!(a.free_chunks(), 0);
    }

    #[test]
    fn chunk_overflow_carves_next_chunk() {
        let mut a = ChunkAllocator::new(ByteSize::mib(4));
        for _ in 0..FRAMES_PER_CHUNK {
            a.alloc_frame(1).unwrap();
        }
        assert_eq!(a.reserved_bytes(1), ByteSize::mib(2));
        let f = a.alloc_frame(1).unwrap();
        assert_eq!(f, MachineFrame(FRAMES_PER_CHUNK));
        assert_eq!(a.reserved_bytes(1), ByteSize::mib(4));
        assert_eq!(a.used_frames(1), FRAMES_PER_CHUNK + 1);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = ChunkAllocator::new(ByteSize::mib(2));
        for _ in 0..FRAMES_PER_CHUNK {
            a.alloc_frame(1).unwrap();
        }
        assert_eq!(a.alloc_frame(2), Err(OutOfMemory));
        assert_eq!(a.alloc_frame(1), Err(OutOfMemory));
    }

    #[test]
    fn free_owner_recycles_chunks() {
        let mut a = ChunkAllocator::new(ByteSize::mib(4));
        a.alloc_frame(1).unwrap();
        a.alloc_frame(2).unwrap();
        assert_eq!(a.free_chunks(), 0);
        assert_eq!(a.free_owner(1), 1);
        assert_eq!(a.free_chunks(), 1);
        assert_eq!(a.used_frames(1), 0);
        // Owner 3 reuses the lowest free chunk (owner 1's old chunk 0).
        let f = a.alloc_frame(3).unwrap();
        assert_eq!(f, MachineFrame(0));
        assert_eq!(a.free_owner(99), 0, "unknown owner frees nothing");
    }

    #[test]
    fn fragmentation_accounting() {
        let mut a = ChunkAllocator::new(ByteSize::mib(8));
        assert_eq!(a.fragmentation(), 0.0);
        a.alloc_frame(1).unwrap();
        // 1 of 512 frames used in one reserved chunk.
        let frag = a.fragmentation();
        assert!((frag - 511.0 / 512.0).abs() < 1e-9, "frag {frag}");
        for _ in 0..(FRAMES_PER_CHUNK - 1) {
            a.alloc_frame(1).unwrap();
        }
        assert_eq!(a.fragmentation(), 0.0);
    }
}
