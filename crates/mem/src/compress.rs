//! Real-time page compression.
//!
//! The prototype compresses every page with LZO before writing it to the
//! memory-server image and decompresses in memtap when servicing a fault
//! (§4.3). LZO itself is a C library; this module implements an equivalent
//! byte-oriented LZSS codec from scratch: greedy LZ77 parsing over a 4 KiB
//! window with a 3-byte hash chain, 12-bit offsets and 4-bit match lengths.
//! Like LZO it favours speed over ratio and never expands data by more than
//! the one-byte header (incompressible input is stored raw).
//!
//! The module also provides [`PageClass`], a synthetic page-content
//! generator with realistic compressibility classes, used by the functional
//! micro-benchmarks to populate VM memory images.

use oasis_sim::SimRng;

use crate::addr::PAGE_SIZE;

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 3;
/// Longest match encodable without the extension byte (3 + 14).
const SHORT_MATCH: usize = MIN_MATCH + 14;
/// Longest match overall: length nibble 15 escapes to an extra byte.
const MAX_MATCH: usize = SHORT_MATCH + 1 + 255;
/// Sliding-window size (12-bit offsets).
const WINDOW: usize = 4_096;
/// Number of hash-table slots.
const HASH_SLOTS: usize = 1 << 13;

/// Errors returned by [`decompress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input is empty or has an unknown header byte.
    BadHeader,
    /// A match refers to data before the start of the output.
    BadOffset,
    /// The stream ended in the middle of a token.
    Truncated,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "unknown compression header"),
            CodecError::BadOffset => write!(f, "match offset out of range"),
            CodecError::Truncated => write!(f, "compressed stream truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - 13)) as usize % HASH_SLOTS
}

/// Compresses `input`, returning a self-describing buffer.
///
/// The first byte is `1` for a compressed stream or `0` for raw storage
/// (chosen when compression would not shrink the data).
///
/// # Examples
///
/// ```
/// use oasis_mem::compress::{compress, decompress};
///
/// let page = vec![0u8; 4096];
/// let packed = compress(&page);
/// assert!(packed.len() < 64);
/// assert_eq!(decompress(&packed).unwrap(), page);
/// ```
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(1u8);
    let mut heads = [usize::MAX; HASH_SLOTS];

    let mut i = 0;
    let mut control_pos = usize::MAX;
    let mut control_bit = 8;

    let mut push_flag = |out: &mut Vec<u8>, flag: bool| {
        if control_bit == 8 {
            control_pos = out.len();
            out.push(0);
            control_bit = 0;
        }
        if flag {
            out[control_pos] |= 1 << control_bit;
        }
        control_bit += 1;
    };

    while i < input.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            let cand = heads[h];
            heads[h] = i;
            if cand != usize::MAX && i - cand <= WINDOW && cand < i {
                let max_len = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_off = i - cand;
                }
            }
        }
        if best_len >= MIN_MATCH {
            push_flag(&mut out, true);
            let off = best_off - 1; // Offsets are stored biased by one.
            out.push((off & 0xFF) as u8);
            if best_len <= SHORT_MATCH {
                out.push((((off >> 8) as u8) << 4) | (best_len - MIN_MATCH) as u8);
            } else {
                // Length nibble 15 escapes to an extension byte holding
                // `len - (SHORT_MATCH + 1)`.
                out.push((((off >> 8) as u8) << 4) | 0x0F);
                out.push((best_len - SHORT_MATCH - 1) as u8);
            }
            // Insert hash entries inside the match so later data can refer
            // back into it; skip the last two positions (need 3 bytes).
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                heads[hash3(input, j)] = j;
                j += 1;
            }
            i += best_len;
        } else {
            push_flag(&mut out, false);
            out.push(input[i]);
            i += 1;
        }
    }

    if out.len() > input.len() {
        // Incompressible: store raw with a one-byte header.
        let mut stored = Vec::with_capacity(input.len() + 1);
        stored.push(0u8);
        stored.extend_from_slice(input);
        return stored;
    }
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(packed: &[u8]) -> Result<Vec<u8>, CodecError> {
    let (&header, body) = packed.split_first().ok_or(CodecError::BadHeader)?;
    match header {
        0 => Ok(body.to_vec()),
        1 => decompress_stream(body),
        _ => Err(CodecError::BadHeader),
    }
}

fn decompress_stream(body: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(PAGE_SIZE as usize);
    let mut i = 0;
    while i < body.len() {
        let control = body[i];
        i += 1;
        for bit in 0..8 {
            if i >= body.len() {
                break;
            }
            if control & (1 << bit) == 0 {
                out.push(body[i]);
                i += 1;
            } else {
                if i + 1 >= body.len() {
                    return Err(CodecError::Truncated);
                }
                let b0 = body[i] as usize;
                let b1 = body[i + 1] as usize;
                i += 2;
                let off = (b0 | ((b1 >> 4) << 8)) + 1;
                let len = if b1 & 0x0F == 0x0F {
                    if i >= body.len() {
                        return Err(CodecError::Truncated);
                    }
                    let ext = body[i] as usize;
                    i += 1;
                    SHORT_MATCH + 1 + ext
                } else {
                    (b1 & 0x0F) + MIN_MATCH
                };
                if off > out.len() {
                    return Err(CodecError::BadOffset);
                }
                let start = out.len() - off;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
    }
    Ok(out)
}

/// Compressed size of `input` without keeping the buffer.
pub fn compressed_len(input: &[u8]) -> usize {
    compress(input).len()
}

/// Content class of a synthetic guest page, ordered from most to least
/// compressible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// An untouched, zero-filled page.
    Zero,
    /// Text-like content: natural-language redundancy, compresses well.
    Text,
    /// Code/heap-like content: structured but varied.
    Code,
    /// High-entropy content (encrypted or already-compressed data).
    Random,
}

impl PageClass {
    /// All classes, most compressible first.
    ///
    /// The order matches the enum declaration so [`index`](PageClass::index)
    /// is a cast, not a scan.
    pub const ALL: [PageClass; 4] =
        [PageClass::Zero, PageClass::Text, PageClass::Code, PageClass::Random];

    /// This class's position in [`ALL`](PageClass::ALL).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Deterministically synthesizes one page of this class.
    ///
    /// The same `(class, seed)` pair always produces identical bytes, so a
    /// memory image can be regenerated anywhere without storing 4 GiB.
    pub fn synthesize(self, seed: u64) -> Vec<u8> {
        let n = PAGE_SIZE as usize;
        let mut rng = SimRng::new(seed ^ 0xC0FF_EE00);
        match self {
            PageClass::Zero => vec![0u8; n],
            PageClass::Text => {
                // Words drawn from a small dictionary with spaces: heavy
                // 3+ byte repetition, like log files or documents.
                const WORDS: [&str; 12] = [
                    "the", "page", "server", "memory", "idle", "virtual", "machine", "energy",
                    "sleep", "host", "cluster", "cache",
                ];
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let w = WORDS[rng.index(WORDS.len())];
                    out.extend_from_slice(w.as_bytes());
                    out.push(b' ');
                }
                out.truncate(n);
                out
            }
            PageClass::Code => {
                // 8-byte records with constant-ish headers and varying
                // payload bytes: pointer-rich heap/code pages.
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let base = rng.next_u64();
                    out.extend_from_slice(&[0x48, 0x8B, 0x05]);
                    out.extend_from_slice(&(base as u32).to_le_bytes());
                    out.push((base >> 56) as u8 & 0x0F);
                }
                out.truncate(n);
                out
            }
            PageClass::Random => {
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    out.extend_from_slice(&rng.next_u64().to_le_bytes());
                }
                out.truncate(n);
                out
            }
        }
    }

    /// Typical compression ratio (compressed/original) of this class under
    /// this codec, used by the statistical simulation level.
    pub fn typical_ratio(self) -> f64 {
        match self {
            PageClass::Zero => 0.02,
            PageClass::Text => 0.35,
            PageClass::Code => 0.75,
            PageClass::Random => 1.0,
        }
    }
}

/// Mix of page classes in a desktop VM's touched memory.
///
/// Used to derive an aggregate compression ratio for the statistical level;
/// weights follow published page-content surveys of desktop workloads
/// (large zero pools, text-heavy file cache, code, some incompressible
/// media).
#[derive(Clone, Copy, Debug)]
pub struct PageMix {
    /// Fraction of zero pages.
    pub zero: f64,
    /// Fraction of text-like pages.
    pub text: f64,
    /// Fraction of code-like pages.
    pub code: f64,
    /// Fraction of high-entropy pages.
    pub random: f64,
}

impl PageMix {
    /// A desktop VM's touched-page mix.
    pub fn desktop() -> Self {
        PageMix { zero: 0.15, text: 0.35, code: 0.35, random: 0.15 }
    }

    /// A server VM's touched-page mix (more code/heap, less media).
    pub fn server() -> Self {
        PageMix { zero: 0.20, text: 0.30, code: 0.45, random: 0.05 }
    }

    /// Aggregate compressed/original ratio for this mix.
    pub fn aggregate_ratio(&self) -> f64 {
        self.zero * PageClass::Zero.typical_ratio()
            + self.text * PageClass::Text.typical_ratio()
            + self.code * PageClass::Code.typical_ratio()
            + self.random * PageClass::Random.typical_ratio()
    }

    /// Samples a page class according to the mix weights.
    pub fn sample(&self, rng: &mut SimRng) -> PageClass {
        let x = rng.next_f64() * (self.zero + self.text + self.code + self.random);
        if x < self.zero {
            PageClass::Zero
        } else if x < self.zero + self.text {
            PageClass::Text
        } else if x < self.zero + self.text + self.code {
            PageClass::Code
        } else {
            PageClass::Random
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_round_trips_through_all() {
        for class in PageClass::ALL {
            assert_eq!(PageClass::ALL[class.index()], class);
        }
    }

    #[test]
    fn round_trip_empty() {
        let packed = compress(&[]);
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn round_trip_all_classes() {
        for class in PageClass::ALL {
            for seed in 0..8 {
                let page = class.synthesize(seed);
                assert_eq!(page.len(), PAGE_SIZE as usize);
                let packed = compress(&page);
                let back = decompress(&packed).unwrap();
                assert_eq!(back, page, "round trip failed for {class:?}");
            }
        }
    }

    #[test]
    fn zero_pages_compress_dramatically() {
        let page = PageClass::Zero.synthesize(1);
        let packed = compress(&page);
        assert!(packed.len() < 200, "zero page compressed to {}", packed.len());
    }

    #[test]
    fn text_pages_compress_well() {
        let page = PageClass::Text.synthesize(1);
        let packed = compress(&page);
        let ratio = packed.len() as f64 / page.len() as f64;
        assert!(ratio < 0.6, "text ratio {ratio}");
    }

    #[test]
    fn random_pages_fall_back_to_stored() {
        let page = PageClass::Random.synthesize(1);
        let packed = compress(&page);
        // Never expands by more than the header byte.
        assert_eq!(packed.len(), page.len() + 1);
        assert_eq!(packed[0], 0);
        assert_eq!(decompress(&packed).unwrap(), page);
    }

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(PageClass::Code.synthesize(7), PageClass::Code.synthesize(7));
        assert_ne!(PageClass::Code.synthesize(7), PageClass::Code.synthesize(8));
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert_eq!(decompress(&[]), Err(CodecError::BadHeader));
        assert_eq!(decompress(&[9, 1, 2]), Err(CodecError::BadHeader));
        // Control byte demanding a match with no preceding output.
        assert_eq!(decompress(&[1, 0b0000_0001, 0, 0]), Err(CodecError::BadOffset));
        // Match token cut short.
        assert_eq!(decompress(&[1, 0b0000_0001, 0]), Err(CodecError::Truncated));
    }

    #[test]
    fn long_runs_use_max_matches() {
        let input: Vec<u8> = std::iter::repeat_n(b"abcabcabc".to_vec(), 400).flatten().collect();
        let packed = compress(&input);
        assert!(packed.len() < input.len() / 4);
        assert_eq!(decompress(&packed).unwrap(), input);
    }

    #[test]
    fn overlapping_match_copies() {
        // "aaaa..." forces matches that overlap their own output.
        let input = vec![b'a'; 1_000];
        let packed = compress(&input);
        assert_eq!(decompress(&packed).unwrap(), input);
        assert!(packed.len() < 100);
    }

    #[test]
    fn page_mix_ratio_ordering() {
        assert!(PageMix::desktop().aggregate_ratio() > 0.3);
        assert!(PageMix::desktop().aggregate_ratio() < 0.8);
        let mut ratios: Vec<f64> = PageClass::ALL.iter().map(|c| c.typical_ratio()).collect();
        let sorted = {
            let mut s = ratios.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s
        };
        assert_eq!(ratios, sorted, "ALL must be ordered most→least compressible");
        ratios.dedup();
        assert_eq!(ratios.len(), 4);
    }

    #[test]
    fn page_mix_sampling_matches_weights() {
        let mix = PageMix::desktop();
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let zeros = (0..n).filter(|_| mix.sample(&mut rng) == PageClass::Zero).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - mix.zero).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn typical_ratios_are_representative() {
        // The hard-coded ratios used by the statistical level must stay
        // within 0.15 of what the real codec achieves on synthetic pages.
        for class in PageClass::ALL {
            let mut total_in = 0usize;
            let mut total_out = 0usize;
            for seed in 0..16 {
                let page = class.synthesize(seed);
                total_in += page.len();
                total_out += compressed_len(&page);
            }
            let real = total_out as f64 / total_in as f64;
            let assumed = class.typical_ratio();
            assert!(
                (real - assumed).abs() < 0.15,
                "{class:?}: real {real:.3} vs assumed {assumed:.3}"
            );
        }
    }
}
