//! Memory ballooning.
//!
//! The second half of assumption 1's over-commitment toolbox: a balloon
//! driver inside the guest pins free guest pages and returns them to the
//! hypervisor, letting the host reclaim memory from cooperative VMs
//! without swapping. The model tracks guest-visible memory pressure and
//! enforces the safety floor below which inflation must stop.

use crate::size::ByteSize;

/// Errors from balloon operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalloonError {
    /// Inflation would push the guest below its safety floor.
    GuestPressure {
        /// Most the balloon can still take.
        available: ByteSize,
    },
    /// Deflation below zero requested.
    NothingToDeflate,
}

impl core::fmt::Display for BalloonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BalloonError::GuestPressure { available } => {
                write!(f, "guest under pressure; only {available} reclaimable")
            }
            BalloonError::NothingToDeflate => write!(f, "balloon already empty"),
        }
    }
}

impl std::error::Error for BalloonError {}

/// The balloon driver of one guest.
#[derive(Clone, Debug)]
pub struct Balloon {
    /// Guest memory allocation.
    allocation: ByteSize,
    /// Memory the guest's workload currently uses.
    guest_used: ByteSize,
    /// Memory the guest must keep free to avoid thrashing (safety floor).
    floor: ByteSize,
    /// Currently ballooned (returned to the host).
    inflated: ByteSize,
}

impl Balloon {
    /// Creates a deflated balloon for a guest of `allocation` memory with
    /// the given safety floor.
    pub fn new(allocation: ByteSize, floor: ByteSize) -> Self {
        Balloon { allocation, guest_used: ByteSize::ZERO, floor, inflated: ByteSize::ZERO }
    }

    /// Updates the guest's current memory use (from guest statistics).
    ///
    /// If use grew into ballooned territory, the balloon auto-deflates to
    /// protect the guest; the freed amount is returned so the host can
    /// account for the reclaim loss.
    pub fn set_guest_used(&mut self, used: ByteSize) -> ByteSize {
        self.guest_used = used.min(self.allocation);
        let max_inflatable = self.max_inflatable();
        if self.inflated > max_inflatable {
            let released = self.inflated - max_inflatable;
            self.inflated = max_inflatable;
            released
        } else {
            ByteSize::ZERO
        }
    }

    /// Most the balloon may hold right now.
    pub fn max_inflatable(&self) -> ByteSize {
        self.allocation.saturating_sub(self.guest_used).saturating_sub(self.floor)
    }

    /// Inflates by `amount`, reclaiming guest-free memory for the host.
    pub fn inflate(&mut self, amount: ByteSize) -> Result<(), BalloonError> {
        let available = self.max_inflatable().saturating_sub(self.inflated);
        if amount > available {
            return Err(BalloonError::GuestPressure { available });
        }
        self.inflated += amount;
        Ok(())
    }

    /// Deflates by `amount`, giving memory back to the guest.
    pub fn deflate(&mut self, amount: ByteSize) -> Result<(), BalloonError> {
        if self.inflated.is_zero() {
            return Err(BalloonError::NothingToDeflate);
        }
        self.inflated = self.inflated.saturating_sub(amount);
        Ok(())
    }

    /// Memory currently returned to the host.
    pub fn inflated(&self) -> ByteSize {
        self.inflated
    }

    /// Host memory effectively needed by this guest right now.
    pub fn host_demand(&self) -> ByteSize {
        self.allocation - self.inflated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balloon() -> Balloon {
        // 4 GiB guest, 256 MiB floor.
        Balloon::new(ByteSize::gib(4), ByteSize::mib(256))
    }

    #[test]
    fn inflation_reclaims_free_memory() {
        let mut b = balloon();
        b.set_guest_used(ByteSize::gib(1));
        // 4096 − 1024 − 256 = 2816 MiB reclaimable.
        assert_eq!(b.max_inflatable(), ByteSize::mib(2_816));
        b.inflate(ByteSize::gib(2)).unwrap();
        assert_eq!(b.inflated(), ByteSize::gib(2));
        assert_eq!(b.host_demand(), ByteSize::gib(2));
    }

    #[test]
    fn inflation_respects_floor() {
        let mut b = balloon();
        b.set_guest_used(ByteSize::gib(3));
        let err = b.inflate(ByteSize::gib(1)).unwrap_err();
        assert_eq!(err, BalloonError::GuestPressure { available: ByteSize::mib(768) });
        assert!(b.inflate(ByteSize::mib(768)).is_ok());
        assert_eq!(b.max_inflatable(), b.inflated());
    }

    #[test]
    fn pressure_auto_deflates() {
        let mut b = balloon();
        b.set_guest_used(ByteSize::gib(1));
        b.inflate(ByteSize::mib(2_816)).unwrap();
        // Guest suddenly needs 3 GiB: the balloon must give back.
        let released = b.set_guest_used(ByteSize::gib(3));
        assert_eq!(released, ByteSize::mib(2_816 - 768));
        assert_eq!(b.inflated(), ByteSize::mib(768));
    }

    #[test]
    fn deflate_bounds() {
        let mut b = balloon();
        assert_eq!(b.deflate(ByteSize::mib(1)), Err(BalloonError::NothingToDeflate));
        b.inflate(ByteSize::mib(100)).unwrap();
        b.deflate(ByteSize::mib(1_000)).unwrap();
        assert_eq!(b.inflated(), ByteSize::ZERO);
        assert_eq!(b.host_demand(), ByteSize::gib(4));
    }

    #[test]
    fn guest_used_clamped_to_allocation() {
        let mut b = balloon();
        b.set_guest_used(ByteSize::gib(64));
        assert_eq!(b.max_inflatable(), ByteSize::ZERO);
    }
}
