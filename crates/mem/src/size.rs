//! Byte-size arithmetic with binary-unit formatting.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A number of bytes.
///
/// # Examples
///
/// ```
/// use oasis_mem::ByteSize;
///
/// let vm_ram = ByteSize::gib(4);
/// assert_eq!(vm_ram.as_mib_f64(), 4096.0);
/// assert_eq!(vm_ram.to_string(), "4.0 GiB");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Creates a size from kibibytes.
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * KIB)
    }

    /// Creates a size from mebibytes.
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * MIB)
    }

    /// Creates a size from gibibytes.
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * GIB)
    }

    /// Creates a size from fractional mebibytes (saturating at zero).
    pub fn from_mib_f64(m: f64) -> Self {
        if m <= 0.0 || !m.is_finite() {
            return ByteSize(0);
        }
        ByteSize((m * MIB as f64).round() as u64)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in whole mebibytes (truncating).
    pub const fn as_mib(self) -> u64 {
        self.0 / MIB
    }

    /// Size in mebibytes as a float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Size in gibibytes as a float.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// `true` if zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: ByteSize) -> Option<ByteSize> {
        self.0.checked_sub(other.0).map(ByteSize)
    }

    /// Scales by a non-negative float, rounding to whole bytes.
    pub fn mul_f64(self, k: f64) -> ByteSize {
        if k <= 0.0 || !k.is_finite() {
            return ByteSize(0);
        }
        ByteSize((self.0 as f64 * k).round() as u64)
    }

    /// Number of whole pages of `page_size` needed to hold this size.
    pub fn pages(self, page_size: u64) -> u64 {
        self.0.div_ceil(page_size)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.1} GiB", self.as_gib_f64())
        } else if b >= MIB {
            write!(f, "{:.1} MiB", self.as_mib_f64())
        } else if b >= KIB {
            write!(f, "{:.1} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(ByteSize::kib(1).as_bytes(), 1_024);
        assert_eq!(ByteSize::mib(1).as_bytes(), 1_048_576);
        assert_eq!(ByteSize::gib(4).as_mib_f64(), 4_096.0);
        assert_eq!(ByteSize::from_mib_f64(165.63).as_bytes(), 173_675_643);
        assert_eq!(ByteSize::from_mib_f64(-3.0), ByteSize::ZERO);
        assert_eq!(ByteSize::from_mib_f64(f64::NAN), ByteSize::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(10);
        let b = ByteSize::mib(3);
        assert_eq!(a + b, ByteSize::mib(13));
        assert_eq!(a - b, ByteSize::mib(7));
        assert_eq!(b - a, ByteSize::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.saturating_sub(b), ByteSize::mib(7));
        assert_eq!(a * 2, ByteSize::mib(20));
        assert_eq!(a.mul_f64(0.5), ByteSize::mib(5));
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = [ByteSize::mib(1), ByteSize::mib(2)].into_iter().sum();
        assert_eq!(total, ByteSize::mib(3));
    }

    #[test]
    fn page_counts_round_up() {
        assert_eq!(ByteSize::bytes(1).pages(4_096), 1);
        assert_eq!(ByteSize::bytes(4_096).pages(4_096), 1);
        assert_eq!(ByteSize::bytes(4_097).pages(4_096), 2);
        assert_eq!(ByteSize::ZERO.pages(4_096), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12 B");
        assert_eq!(ByteSize::kib(3).to_string(), "3.0 KiB");
        assert_eq!(ByteSize::mib(165).to_string(), "165.0 MiB");
        assert_eq!(ByteSize::gib(4).to_string(), "4.0 GiB");
    }
}
