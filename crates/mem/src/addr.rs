//! Page and frame addressing.
//!
//! Guests address memory by *pseudo-physical page number* ([`PageNum`],
//! what the paper's memtap protocol calls the "guest pseudo frame number")
//! while the host backs pages with *machine frames* ([`MachineFrame`]).

use core::fmt;

use crate::size::ByteSize;

/// Size of one page, in bytes (x86 4 KiB pages).
pub const PAGE_SIZE: u64 = 4_096;

/// A guest pseudo-physical page number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageNum(pub u64);

/// A host machine frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineFrame(pub u64);

impl PageNum {
    /// Byte offset of the start of this page in the guest address space.
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE
    }

    /// The page containing the given guest byte address.
    pub fn containing(addr: u64) -> PageNum {
        PageNum(addr / PAGE_SIZE)
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl fmt::Debug for MachineFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

/// Number of pages needed to back an allocation of the given size.
pub fn pages_for(size: ByteSize) -> u64 {
    size.pages(PAGE_SIZE)
}

/// Size of `n` whole pages.
pub fn size_of_pages(n: u64) -> ByteSize {
    ByteSize::bytes(n * PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry() {
        assert_eq!(PageNum(0).byte_offset(), 0);
        assert_eq!(PageNum(2).byte_offset(), 8_192);
        assert_eq!(PageNum::containing(4_095), PageNum(0));
        assert_eq!(PageNum::containing(4_096), PageNum(1));
    }

    #[test]
    fn pages_for_sizes() {
        assert_eq!(pages_for(ByteSize::gib(4)), 1_048_576);
        assert_eq!(pages_for(ByteSize::bytes(1)), 1);
        assert_eq!(pages_for(ByteSize::ZERO), 0);
        assert_eq!(size_of_pages(1_048_576), ByteSize::gib(4));
    }
}
