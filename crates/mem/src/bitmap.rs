//! A compact fixed-size bitset.
//!
//! Page tables track one present/accessed/dirty bit per page; a 4 GiB VM
//! has over a million pages, so metadata must be dense. This bitmap packs
//! 64 bits per word and supports fast population counts and iteration over
//! set bits — the operations dirty-page scans and working-set accounting
//! rely on.

/// A fixed-size bitset over indices `0..len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (O(1); maintained incrementally).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`; returns `true` if the bit changed.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m == 0 {
            self.words[w] |= m;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Clears bit `i`; returns `true` if the bit changed.
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m != 0 {
            self.words[w] &= !m;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        self.words.fill(!0);
        // Mask off the bits beyond `len` in the last word.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        self.ones = self.len;
    }

    /// Length of the maximal run of bits equal to `value` starting at
    /// `start`, examining one word at a time.
    ///
    /// Returns 0 when `start >= len`. Equivalent to counting how many
    /// consecutive [`get`](Bitmap::get) calls from `start` return
    /// `value`, but costs one `trailing_zeros` per 64 bits instead of a
    /// bit test per index — the primitive behind run-length batching of
    /// page-table walks.
    pub fn run_len(&self, start: usize, value: bool) -> usize {
        if start >= self.len {
            return 0;
        }
        let mut i = start;
        while i < self.len {
            let (w, bit) = (i / 64, i % 64);
            // Normalize so the run we count is of zero bits, then skip
            // to the first one bit at or above `bit`.
            let word = if value { !self.words[w] } else { self.words[w] } >> bit;
            if word != 0 {
                i += word.trailing_zeros() as usize;
                break;
            }
            i += 64 - bit;
        }
        i.min(self.len) - start
    }

    /// Sets bits `start..start + n`; returns how many changed.
    ///
    /// Equivalent to `n` calls of [`set`](Bitmap::set), but applies whole
    /// 64-bit masks per word.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past `len`.
    pub fn set_range(&mut self, start: usize, n: usize) -> usize {
        assert!(start + n <= self.len, "range {start}..{} out of range {}", start + n, self.len);
        let mut changed = 0;
        let (mut i, end) = (start, start + n);
        while i < end {
            let (w, bit) = (i / 64, i % 64);
            let span = (64 - bit).min(end - i);
            let mask = if span == 64 { !0u64 } else { ((1u64 << span) - 1) << bit };
            changed += (mask & !self.words[w]).count_ones() as usize;
            self.words[w] |= mask;
            i += span;
        }
        self.ones += changed;
        changed
    }

    /// Iterates over the indices of set bits, in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            core::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Takes the set bits: returns their indices and clears the bitmap.
    pub fn drain_ones(&mut self) -> Vec<usize> {
        let ones: Vec<usize> = self.iter_ones().collect();
        self.clear_all();
        ones
    }

    /// Bitwise OR with another bitmap of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut ones = 0;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0), "setting twice reports no change");
        assert!(b.set(64));
        assert!(b.set(129));
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(129));
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = Bitmap::new(10);
        b.get(10);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitmap::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn drain_ones_clears() {
        let mut b = Bitmap::new(100);
        b.set(5);
        b.set(50);
        assert_eq!(b.drain_ones(), vec![5, 50]);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(5));
    }

    #[test]
    fn set_all_respects_length() {
        let mut b = Bitmap::new(70);
        b.set_all();
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.iter_ones().count(), 70);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_all_on_word_boundary() {
        let mut b = Bitmap::new(128);
        b.set_all();
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn union() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(1);
        b.set(2);
        b.set(1);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }

    /// Reference implementation of [`Bitmap::run_len`]: one bit at a time.
    fn run_len_slow(b: &Bitmap, start: usize, value: bool) -> usize {
        (start..b.len()).take_while(|&i| b.get(i) == value).count()
    }

    #[test]
    fn run_len_crosses_words() {
        let mut b = Bitmap::new(200);
        for i in 10..150 {
            b.set(i);
        }
        assert_eq!(b.run_len(10, true), 140);
        assert_eq!(b.run_len(0, false), 10);
        assert_eq!(b.run_len(150, false), 50);
        assert_eq!(b.run_len(149, true), 1);
        assert_eq!(b.run_len(200, true), 0, "past the end");
        assert_eq!(b.run_len(10, false), 0, "wrong value at start");
    }

    #[test]
    fn run_len_to_exact_end() {
        let mut b = Bitmap::new(128);
        b.set_all();
        assert_eq!(b.run_len(0, true), 128, "word-aligned tail");
        let mut c = Bitmap::new(70);
        c.set_all();
        assert_eq!(c.run_len(64, true), 6, "partial tail word");
        c.clear_all();
        assert_eq!(c.run_len(64, false), 6);
    }

    #[test]
    fn set_range_matches_per_bit() {
        let mut batched = Bitmap::new(300);
        let mut serial = Bitmap::new(300);
        serial.set(100);
        batched.set(100);
        let changed = batched.set_range(70, 150);
        let mut slow_changed = 0;
        for i in 70..220 {
            if serial.set(i) {
                slow_changed += 1;
            }
        }
        assert_eq!(batched, serial);
        assert_eq!(changed, slow_changed);
        assert_eq!(batched.count_ones(), serial.count_ones());
        assert_eq!(batched.set_range(0, 0), 0, "empty range is a no-op");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_range_past_end_panics() {
        Bitmap::new(100).set_range(90, 11);
    }

    #[test]
    fn randomized_runs_match_bit_at_a_time() {
        // A pseudo-random bit soup; every (start, value) probe and every
        // range set must agree with the per-bit reference.
        let mut b = Bitmap::new(517);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            b.set((next() % 517) as usize);
        }
        for start in 0..517 {
            assert_eq!(b.run_len(start, true), run_len_slow(&b, start, true), "ones at {start}");
            assert_eq!(b.run_len(start, false), run_len_slow(&b, start, false), "zeros at {start}");
        }
        for _ in 0..100 {
            let start = (next() % 517) as usize;
            let n = (next() % (517 - start as u64 + 1)) as usize;
            let mut serial = b.clone();
            let changed = b.set_range(start, n);
            let slow = (start..start + n).filter(|&i| serial.set(i)).count();
            assert_eq!(b, serial, "set_range({start}, {n})");
            assert_eq!(changed, slow);
        }
    }
}
