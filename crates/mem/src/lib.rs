//! Guest memory substrate for the Oasis reproduction.
//!
//! The paper's mechanism lives at the memory-management layer of Xen:
//! partial VMs run with page-table entries marked absent, fault on access,
//! and fetch pages from a memory server that stores an LZO-compressed image
//! (§4.2–4.3). This crate implements that layer as a functional model:
//!
//! * [`size`] — byte-size arithmetic and MiB/GiB formatting.
//! * [`addr`] — page numbers, machine frames and the 4 KiB page geometry.
//! * [`bitmap`] — compact bitsets backing page-table metadata.
//! * [`page_table`] — per-VM pseudo-physical page tables with present /
//!   accessed / dirty bits and absent-entry faulting.
//! * [`dirty`] — epoch-based dirty logging (shadow page table tracking,
//!   §4.2) for differential upload and reintegration.
//! * [`chunk`] — the 2 MiB chunk frame allocator the hypervisor uses to
//!   limit heap fragmentation (§4.2).
//! * [`compress`] — a from-scratch LZ77 real-time compressor standing in
//!   for LZO (§4.3), plus synthetic page-content generation with realistic
//!   compressibility classes.
//! * [`wss`] — idle working-set distribution (Jettison's
//!   165.63 ± 91.38 MiB) and working-set growth tracking.
//! * [`dedup`] + [`balloon`] — the memory over-commitment machinery of
//!   assumption 1: copy-on-write page sharing and guest ballooning.

#![warn(missing_docs)]

pub mod addr;
pub mod balloon;
pub mod bitmap;
pub mod chunk;
pub mod compress;
pub mod dedup;
pub mod dirty;
pub mod page_table;
pub mod size;
pub mod wss;

pub use addr::{MachineFrame, PageNum, PAGE_SIZE};
pub use compress::{compress, decompress};
pub use page_table::PageTable;
pub use size::ByteSize;
pub use wss::IdleWssDistribution;
