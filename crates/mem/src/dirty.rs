//! Dirty-page logging and dirtying-rate monitoring.
//!
//! Two consumers need dirty information:
//!
//! * **Differential upload and reintegration** (§4.2–4.3) need the exact
//!   set of pages dirtied since an epoch boundary — [`DirtyLog`].
//! * **Idleness detection** (§3.1) monitors a VM's page-dirtying *rate*
//!   from the hypervisor — [`DirtyRateMonitor`].

use oasis_sim::{SimDuration, SimTime};

use crate::addr::PageNum;
use crate::bitmap::Bitmap;

/// Epoch-based dirty-page log (a shadow page table's write tracking).
#[derive(Clone, Debug)]
pub struct DirtyLog {
    bits: Bitmap,
    epoch: u64,
}

impl DirtyLog {
    /// Creates a log covering `num_pages` pages, all clean, at epoch 0.
    pub fn new(num_pages: u64) -> Self {
        DirtyLog { bits: Bitmap::new(num_pages as usize), epoch: 0 }
    }

    /// Records a write to `page`; out-of-range pages are ignored.
    pub fn record(&mut self, page: PageNum) {
        let i = page.0 as usize;
        if i < self.bits.len() {
            self.bits.set(i);
        }
    }

    /// Number of distinct pages dirtied this epoch.
    pub fn dirty_count(&self) -> u64 {
        self.bits.count_ones() as u64
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Closes the epoch: returns the dirtied pages and starts a new epoch.
    pub fn take_epoch(&mut self) -> Vec<PageNum> {
        self.epoch += 1;
        self.bits.drain_ones().into_iter().map(|i| PageNum(i as u64)).collect()
    }

    /// `true` if `page` is dirty in the current epoch.
    pub fn is_dirty(&self, page: PageNum) -> bool {
        let i = page.0 as usize;
        i < self.bits.len() && self.bits.get(i)
    }
}

/// Sliding-window estimate of a VM's page-dirtying rate.
///
/// The cluster manager classifies a VM as idle when its dirtying rate stays
/// under a threshold for a full observation window (§3.1). The monitor
/// keeps per-bucket write counts over a ring of fixed-width buckets.
#[derive(Clone, Debug)]
pub struct DirtyRateMonitor {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    /// Index of the bucket that currently absorbs samples.
    head_bucket: u64,
}

impl DirtyRateMonitor {
    /// Creates a monitor averaging over `buckets` windows of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `bucket_width` is zero.
    pub fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        assert!(buckets > 0 && !bucket_width.is_zero(), "invalid monitor window");
        DirtyRateMonitor { bucket_width, buckets: vec![0; buckets], head_bucket: 0 }
    }

    fn bucket_index_of(&self, now: SimTime) -> u64 {
        now.as_micros() / self.bucket_width.as_micros()
    }

    fn rotate_to(&mut self, now: SimTime) {
        let target = self.bucket_index_of(now);
        let n = self.buckets.len() as u64;
        if target <= self.head_bucket {
            return;
        }
        let steps = (target - self.head_bucket).min(n);
        for s in 1..=steps {
            let idx = ((self.head_bucket + s) % n) as usize;
            self.buckets[idx] = 0;
        }
        self.head_bucket = target;
    }

    /// Records `pages` dirtied at `now`.
    pub fn record(&mut self, now: SimTime, pages: u64) {
        self.rotate_to(now);
        let n = self.buckets.len() as u64;
        let idx = (self.head_bucket % n) as usize;
        self.buckets[idx] += pages;
    }

    /// Dirtying rate in pages per second over the window ending at `now`.
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        self.rotate_to(now);
        let total: u64 = self.buckets.iter().sum();
        let window = self.bucket_width.as_secs_f64() * self.buckets.len() as f64;
        total as f64 / window
    }

    /// Total pages recorded in the current window.
    pub fn window_total(&mut self, now: SimTime) -> u64 {
        self.rotate_to(now);
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_log_epochs() {
        let mut log = DirtyLog::new(100);
        log.record(PageNum(1));
        log.record(PageNum(1));
        log.record(PageNum(50));
        assert_eq!(log.dirty_count(), 2);
        assert!(log.is_dirty(PageNum(1)));
        assert!(!log.is_dirty(PageNum(2)));
        let epoch0 = log.take_epoch();
        assert_eq!(epoch0, vec![PageNum(1), PageNum(50)]);
        assert_eq!(log.epoch(), 1);
        assert_eq!(log.dirty_count(), 0);
        log.record(PageNum(99));
        assert_eq!(log.take_epoch(), vec![PageNum(99)]);
    }

    #[test]
    fn dirty_log_ignores_out_of_range() {
        let mut log = DirtyLog::new(10);
        log.record(PageNum(10));
        log.record(PageNum(1_000_000));
        assert_eq!(log.dirty_count(), 0);
        assert!(!log.is_dirty(PageNum(10)));
    }

    #[test]
    fn rate_monitor_steady_rate() {
        let mut m = DirtyRateMonitor::new(SimDuration::from_secs(10), 6);
        // 100 pages every 10 s for a minute = 10 pages/s.
        for i in 0..6 {
            m.record(SimTime::from_secs(i * 10 + 1), 100);
        }
        let rate = m.rate_per_sec(SimTime::from_secs(59));
        assert!((rate - 10.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn rate_monitor_expires_old_buckets() {
        let mut m = DirtyRateMonitor::new(SimDuration::from_secs(10), 3);
        m.record(SimTime::from_secs(0), 300);
        assert_eq!(m.window_total(SimTime::from_secs(5)), 300);
        // After the full 30 s window passes, the burst ages out.
        assert_eq!(m.window_total(SimTime::from_secs(40)), 0);
        assert_eq!(m.rate_per_sec(SimTime::from_secs(40)), 0.0);
    }

    #[test]
    fn rate_monitor_long_gap_does_not_overflow() {
        let mut m = DirtyRateMonitor::new(SimDuration::from_secs(1), 4);
        m.record(SimTime::from_secs(0), 10);
        m.record(SimTime::from_secs(1_000_000), 5);
        assert_eq!(m.window_total(SimTime::from_secs(1_000_000)), 5);
    }

    #[test]
    #[should_panic(expected = "invalid monitor window")]
    fn zero_buckets_panics() {
        DirtyRateMonitor::new(SimDuration::from_secs(1), 0);
    }
}
