//! Property-based tests for the memory substrate.
//!
//! Uses the in-tree [`oasis_sim::check`] harness so the suite runs with
//! no external dependencies.

use std::collections::BTreeSet;

use oasis_mem::bitmap::Bitmap;
use oasis_mem::compress::{compress, decompress, PageClass};
use oasis_mem::page_table::{Access, PageTable};
use oasis_mem::{ByteSize, MachineFrame, PageNum};
use oasis_sim::check::{run, Gen};

/// The codec is lossless for arbitrary byte strings.
#[test]
fn compress_round_trips() {
    run(64, |g: &mut Gen| {
        let data = g.bytes(8_192);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    });
}

/// Compression never expands beyond the one-byte header.
#[test]
fn compress_bounded_expansion() {
    run(64, |g: &mut Gen| {
        let data = g.bytes(8_192);
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + 1);
    });
}

/// Highly repetitive input compresses well.
#[test]
fn repetitive_input_compresses() {
    run(64, |g: &mut Gen| {
        let byte = g.byte();
        let len = g.usize_in(64, 4_096);
        let data = vec![byte; len];
        let packed = compress(&data);
        assert!(packed.len() < len / 2, "{} -> {}", len, packed.len());
    });
}

/// Decompressing arbitrary garbage never panics (errors are fine).
#[test]
fn decompress_is_total() {
    run(64, |g: &mut Gen| {
        let data = g.bytes(4_096);
        let _ = decompress(&data);
    });
}

/// Synthesized pages of every class round trip.
#[test]
fn synthesized_pages_round_trip() {
    run(64, |g: &mut Gen| {
        let class = *g.pick(&PageClass::ALL);
        let page = class.synthesize(g.u64());
        assert_eq!(decompress(&compress(&page)).unwrap(), page);
    });
}

/// The bitmap behaves exactly like a set of indices.
#[test]
fn bitmap_matches_set_model() {
    run(64, |g: &mut Gen| {
        let len = g.usize_in(1, 2_000);
        let ops = g.vec(0, 300, |g| (g.bool(), g.usize_in(0, 2_000)));
        let mut bitmap = Bitmap::new(len);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (set, idx) in ops {
            let idx = idx % len;
            if set {
                bitmap.set(idx);
                model.insert(idx);
            } else {
                bitmap.clear(idx);
                model.remove(&idx);
            }
        }
        assert_eq!(bitmap.count_ones(), model.len());
        let ones: Vec<usize> = bitmap.iter_ones().collect();
        let expect: Vec<usize> = model.into_iter().collect();
        assert_eq!(ones, expect);
    });
}

/// Page-table state machine: a page is present iff installed and not
/// evicted; faults only on absent pages.
#[test]
fn page_table_state_machine() {
    run(64, |g: &mut Gen| {
        let pages = g.u64_in(1, 2_000);
        let ops = g.vec(0, 200, |g| (g.u64_in(0, 3) as u8, g.u64_in(0, 2_000)));
        let mut pt = PageTable::new_absent(pages);
        let mut present: BTreeSet<u64> = BTreeSet::new();
        for (op, raw) in ops {
            let p = PageNum(raw % pages);
            match op {
                0 => {
                    // Touch: hit iff present.
                    let access = pt.touch(p, false).unwrap();
                    if present.contains(&p.0) {
                        assert_eq!(access, Access::Hit);
                    } else {
                        assert_eq!(access, Access::Fault);
                    }
                }
                1 => {
                    // Install succeeds iff absent.
                    let r = pt.install(p, MachineFrame(p.0));
                    assert_eq!(r.is_ok(), !present.contains(&p.0));
                    present.insert(p.0);
                }
                _ => {
                    pt.evict(p).unwrap();
                    present.remove(&p.0);
                }
            }
        }
        assert_eq!(pt.present_count(), present.len() as u64);
    });
}

/// Dirty epochs partition the write history: every written page shows
/// up in exactly one epoch.
#[test]
fn dirty_epochs_partition_writes() {
    run(64, |g: &mut Gen| {
        let writes = g.vec(0, 300, |g| g.u64_in(0, 500));
        let epoch_every = g.usize_in(1, 50);
        let mut pt = PageTable::new_resident(500);
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut expected: BTreeSet<u64> = BTreeSet::new();
        let mut collected: Vec<u64> = Vec::new();
        for (i, &w) in writes.iter().enumerate() {
            pt.touch(PageNum(w), true).unwrap();
            expected.insert(w);
            if i % epoch_every == 0 {
                for p in pt.take_dirty() {
                    assert!(seen.insert(p.0), "page in two epochs without rewrite");
                    collected.push(p.0);
                }
                seen.clear();
            }
        }
        for p in pt.take_dirty() {
            collected.push(p.0);
        }
        let got: BTreeSet<u64> = collected.into_iter().collect();
        assert_eq!(got, expected);
    });
}

/// A batched run-length touch is indistinguishable from the per-page
/// loop it replaces: same hit count and the same resulting table state.
///
/// The serial reference stops at the first fault *inclusive* (it touches
/// the faulting page); `touch_run` stops exclusive and the caller
/// replays the faulting access, exactly as the hypervisor's batched
/// fault path does. After the replay the two tables must agree on every
/// observable: present set, accessed set, dirty epoch.
#[test]
fn touch_run_matches_per_page_loop() {
    run(64, |g: &mut Gen| {
        let pages = g.u64_in(1, 2_000);
        let mut batched = PageTable::new_absent(pages);
        for p in 0..pages {
            if g.bool() {
                batched.install(PageNum(p), MachineFrame(p)).unwrap();
            }
        }
        let mut serial = batched.clone();
        let start = g.u64_in(0, pages);
        let max_len = (pages - start) as usize;
        let len = g.usize_in(0, max_len.min(256) + 1);
        let writes = g.vec(len, len + 1, |g| g.bool());

        let mut serial_hits = 0u64;
        for (i, &w) in writes.iter().enumerate() {
            match serial.touch(PageNum(start + i as u64), w).unwrap() {
                Access::Hit => serial_hits += 1,
                Access::Fault => break,
            }
        }

        let hits = batched.touch_run(PageNum(start), &writes).unwrap();
        assert_eq!(hits, serial_hits, "hit count diverged");
        if (hits as usize) < writes.len() {
            let access = batched.touch(PageNum(start + hits), writes[hits as usize]).unwrap();
            assert_eq!(access, Access::Fault, "run must stop at the first absent page");
        }

        assert_eq!(batched.present_count(), serial.present_count());
        assert_eq!(batched.accessed_count(), serial.accessed_count());
        assert_eq!(batched.dirty_count(), serial.dirty_count());
        assert_eq!(batched.accessed_pages(), serial.accessed_pages());
        assert_eq!(batched.take_dirty(), serial.take_dirty());
    });
}

/// `present_run` reports exactly the maximal all-present run at `start`.
#[test]
fn present_run_matches_scan() {
    run(64, |g: &mut Gen| {
        let pages = g.u64_in(1, 1_000);
        let mut pt = PageTable::new_absent(pages);
        let mut present = vec![false; pages as usize];
        for p in 0..pages {
            if g.bool() {
                pt.install(PageNum(p), MachineFrame(p)).unwrap();
                present[p as usize] = true;
            }
        }
        let start = g.u64_in(0, pages);
        let expect = present[start as usize..].iter().take_while(|&&b| b).count() as u64;
        assert_eq!(pt.present_run(PageNum(start)), expect);
    });
}

/// A whole workload of batched runs interleaved with installs and
/// evictions leaves the table equivalent to the serial replay — the
/// batching is sound over evolving residency, not just a fixed snapshot.
#[test]
fn batched_workload_matches_serial_replay() {
    run(32, |g: &mut Gen| {
        let pages = g.u64_in(1, 500);
        let mut serial = PageTable::new_absent(pages);
        let mut batched = PageTable::new_absent(pages);
        for _ in 0..g.usize_in(0, 60) {
            match g.u64_in(0, 3) {
                0 => {
                    let p = PageNum(g.u64_in(0, pages));
                    let _ = serial.install(p, MachineFrame(p.0));
                    let _ = batched.install(p, MachineFrame(p.0));
                }
                1 => {
                    let p = PageNum(g.u64_in(0, pages));
                    let _ = serial.evict(p);
                    let _ = batched.evict(p);
                }
                _ => {
                    let start = g.u64_in(0, pages);
                    let len = g.usize_in(0, ((pages - start) as usize).min(64) + 1);
                    let writes = g.vec(len, len + 1, |g| g.bool());
                    let mut hits = 0u64;
                    for (i, &w) in writes.iter().enumerate() {
                        match serial.touch(PageNum(start + i as u64), w).unwrap() {
                            Access::Hit => hits += 1,
                            Access::Fault => break,
                        }
                    }
                    let batch_hits = batched.touch_run(PageNum(start), &writes).unwrap();
                    assert_eq!(batch_hits, hits);
                    if (batch_hits as usize) < writes.len() {
                        batched
                            .touch(PageNum(start + batch_hits), writes[batch_hits as usize])
                            .unwrap();
                    }
                }
            }
        }
        assert_eq!(batched.present_count(), serial.present_count());
        assert_eq!(batched.accessed_pages(), serial.accessed_pages());
        assert_eq!(batched.take_dirty(), serial.take_dirty());
    });
}

/// ByteSize arithmetic is total and monotone.
#[test]
fn bytesize_arithmetic() {
    run(128, |g: &mut Gen| {
        let (a, b) = (g.u64(), g.u64());
        let sa = ByteSize::bytes(a);
        let sb = ByteSize::bytes(b);
        assert!(sa + sb >= sa.max(sb));
        assert!(sa.saturating_sub(sb) <= sa);
        assert_eq!(sa.checked_sub(sb).is_some(), a >= b);
    });
}
