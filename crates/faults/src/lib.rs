//! Deterministic fault injection and retry/backoff recovery.
//!
//! The paper's value proposition rests on hosts sleeping and waking on
//! demand, which is exactly where real deployments fail: S3 resumes hang,
//! memory-server daemons crash, rack links degrade, migrations stall.
//! This crate makes those faults *representable* and — crucially —
//! *deterministic*: faults are driven from a [`FaultSchedule`] built
//! either explicitly, from a text file, or sampled from a
//! [`FaultProfile`] with its own [`SimRng`](oasis_sim::SimRng) stream.
//! Because the schedule is fully materialized before the simulation
//! starts and queried with pure lookups against the sim clock, a fixed
//! seed plus a fixed schedule reproduces the exact fault sequence (and
//! therefore the exact telemetry event stream) bit-for-bit.
//!
//! * [`schedule`] — the fault taxonomy ([`FaultClass`]), scheduled
//!   windows ([`Fault`]), the queryable [`FaultSchedule`], random
//!   generation, and the text format behind `oasis sim --faults`.
//! * [`retry`] — [`RetryPolicy`]: bounded exponential backoff with
//!   deterministic jitter, shared by Wake-on-LAN retransmission, wake
//!   recovery and migration cancel-and-retry.
//! * [`counts`] — [`FaultCounts`], the per-run injection/recovery
//!   counters attached to simulation reports.
//! * [`reboot`] — [`RebootSchedule`]: planned cold restarts (patch
//!   windows), the maintenance-side twin of the fault schedule.

#![warn(missing_docs)]

pub mod counts;
pub mod reboot;
pub mod retry;
pub mod schedule;

pub use counts::FaultCounts;
pub use reboot::{Reboot, RebootSchedule};
pub use retry::RetryPolicy;
pub use schedule::{Fault, FaultProfile, FaultSchedule, ScheduleError};

// The taxonomy enum lives in `oasis-telemetry` (like `MigrationKind`) so
// emitting crates need no dependency on this one; re-export it as the
// canonical name here.
pub use oasis_telemetry::FaultClass;
