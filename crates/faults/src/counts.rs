//! Per-run fault-injection and recovery counters.

/// Counts of injected faults and the recovery actions they triggered,
/// accumulated over a simulated day and attached to the run report.
///
/// Invariant maintained by the simulator: every injected fault either
/// recovers (some recovery counter increments) or degrades gracefully
/// (a fallback/abort counter increments) — faults never vanish silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Fault windows whose onset the simulator observed and announced.
    pub injected: u64,
    /// Wake attempts that failed because the host's resume hung.
    pub wake_failures: u64,
    /// Wakes that completed but with injected extra resume latency.
    pub wake_delays: u64,
    /// Memory-server crash windows that took effect.
    pub memserver_crashes: u64,
    /// Intervals that ran under a degraded-link latency factor.
    pub link_degradations: u64,
    /// Migrations that stalled mid-flight.
    pub migration_stalls: u64,
    /// Wake retries issued by the backoff loop.
    pub wake_retries: u64,
    /// Wake sequences abandoned after exhausting every retry.
    pub wake_exhausted: u64,
    /// VMs promoted to full in place or shed to a fallback host after
    /// their home could not be woken.
    pub fallback_promotions: u64,
    /// Partial VMs re-homed after their memory server crashed.
    pub rehomed_vms: u64,
    /// Migrations retried after a stall cleared.
    pub migration_retries: u64,
    /// Migrations abandoned (VM stays put) after retries ran out.
    pub migrations_aborted: u64,
    /// Partial migrations degraded to full because the home's memory
    /// server was down.
    pub degraded_to_full: u64,
    /// Recovery actions applied, all kinds.
    pub recoveries: u64,
}

impl FaultCounts {
    /// True when nothing was injected and nothing recovered — the
    /// signature of a no-fault run.
    pub fn is_empty(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// One-line digest for CLI summaries and scenario-test failure
    /// messages.
    pub fn summary_line(&self) -> String {
        format!(
            "faults: {} injected (wake_fail {}, wake_delay {}, ms_crash {}, link {}, stall {}); \
             recovery: {} actions (retries {}, exhausted {}, fallback {}, rehomed {}, \
             mig_retry {}, aborted {}, degraded_full {})",
            self.injected,
            self.wake_failures,
            self.wake_delays,
            self.memserver_crashes,
            self.link_degradations,
            self.migration_stalls,
            self.recoveries,
            self.wake_retries,
            self.wake_exhausted,
            self.fallback_promotions,
            self.rehomed_vms,
            self.migration_retries,
            self.migrations_aborted,
            self.degraded_to_full,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let c = FaultCounts::default();
        assert!(c.is_empty());
        let with_fault = FaultCounts { injected: 1, ..FaultCounts::default() };
        assert!(!with_fault.is_empty());
    }

    #[test]
    fn summary_line_carries_every_counter() {
        let c = FaultCounts {
            injected: 14,
            wake_failures: 2,
            wake_delays: 3,
            memserver_crashes: 1,
            link_degradations: 4,
            migration_stalls: 5,
            wake_retries: 6,
            wake_exhausted: 1,
            fallback_promotions: 1,
            rehomed_vms: 7,
            migration_retries: 2,
            migrations_aborted: 1,
            degraded_to_full: 3,
            recoveries: 9,
        };
        let line = c.summary_line();
        assert_eq!(
            line,
            "faults: 14 injected (wake_fail 2, wake_delay 3, ms_crash 1, link 4, stall 5); \
             recovery: 9 actions (retries 6, exhausted 1, fallback 1, rehomed 7, \
             mig_retry 2, aborted 1, degraded_full 3)"
        );
    }
}
