//! Fault schedules: when, where and how hard things break.
//!
//! A [`FaultSchedule`] is a fully materialized list of [`Fault`] windows,
//! built before the simulation starts — explicitly, parsed from the text
//! format behind `oasis sim --faults <file>`, or sampled from a
//! [`FaultProfile`] with a dedicated [`SimRng`] stream. Once built, every
//! query (`wake_failure`, `memserver_down`, `link_factor`, …) is a pure
//! lookup against the sim clock: the schedule consumes no randomness at
//! query time, so the set of injected faults is a function of its inputs
//! alone and the simulation replays bit-for-bit under a fixed seed.

use oasis_sim::{SimDuration, SimRng, SimTime};
use oasis_telemetry::FaultClass;

/// One scheduled fault window.
///
/// `severity` is class-specific: extra resume seconds for
/// [`FaultClass::WakeDelay`], the latency multiplier for
/// [`FaultClass::LinkDegraded`], and unused (zero) elsewhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// What breaks.
    pub kind: FaultClass,
    /// Which host is affected; `None` means cluster-wide.
    pub host: Option<u32>,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window length; the fault clears at `start + duration`.
    pub duration: SimDuration,
    /// Class-specific magnitude (see type docs).
    pub severity: f64,
}

impl Fault {
    /// Window end (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// True while the window covers `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end()
    }

    /// True if this fault applies to `host` (always true for
    /// cluster-wide faults).
    pub fn affects(&self, host: u32) -> bool {
        self.host.is_none_or(|h| h == host)
    }

    fn kind_rank(&self) -> u8 {
        match self.kind {
            FaultClass::WakeFailure => 0,
            FaultClass::WakeDelay => 1,
            FaultClass::MemServerCrash => 2,
            FaultClass::LinkDegraded => 3,
            FaultClass::MigrationStall => 4,
        }
    }
}

/// Expected fault mix for random schedule generation.
///
/// Counts are totals over the horizon, not rates; durations and
/// severities are drawn uniformly from the configured ranges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Wake-failure windows to place.
    pub wake_failures: u32,
    /// Wake-delay windows to place.
    pub wake_delays: u32,
    /// Memory-server crash windows to place.
    pub memserver_crashes: u32,
    /// Cluster-wide link-degradation windows to place.
    pub link_degradations: u32,
    /// Cluster-wide migration-stall windows to place.
    pub migration_stalls: u32,
    /// Shortest window.
    pub min_duration: SimDuration,
    /// Longest window.
    pub max_duration: SimDuration,
    /// Largest extra resume delay (seconds) for wake-delay faults.
    pub max_wake_delay_secs: f64,
    /// Largest latency multiplier for link-degradation faults.
    pub max_link_factor: f64,
}

impl FaultProfile {
    /// A mild mix: a handful of short, mostly host-local faults.
    pub fn light() -> Self {
        FaultProfile {
            wake_failures: 2,
            wake_delays: 2,
            memserver_crashes: 1,
            link_degradations: 1,
            migration_stalls: 2,
            min_duration: SimDuration::from_secs(60),
            max_duration: SimDuration::from_mins(15),
            max_wake_delay_secs: 30.0,
            max_link_factor: 4.0,
        }
    }

    /// An aggressive mix: frequent, long windows that overlap.
    pub fn heavy() -> Self {
        FaultProfile {
            wake_failures: 8,
            wake_delays: 4,
            memserver_crashes: 3,
            link_degradations: 3,
            migration_stalls: 6,
            min_duration: SimDuration::from_mins(5),
            max_duration: SimDuration::from_hours(1),
            max_wake_delay_secs: 120.0,
            max_link_factor: 10.0,
        }
    }
}

/// A sorted, queryable collection of fault windows.
///
/// Sorted by `(start, kind, host)` so that construction order does not
/// leak into iteration order or the text round-trip.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// The empty schedule: no faults, ever. A run under this schedule is
    /// byte-identical to one without the fault subsystem at all.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit windows (sorted internally).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by(|a, b| {
            (a.start, a.kind_rank(), a.host).cmp(&(b.start, b.kind_rank(), b.host))
        });
        FaultSchedule { faults }
    }

    /// True when the schedule holds no windows.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled windows.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// All windows, sorted by start time.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Windows whose onset falls in `[from, to)` — the simulator calls
    /// this once per interval to announce fault injections exactly once.
    pub fn onsets_between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| from <= f.start && f.start < to)
    }

    /// The active wake-failure window covering `host` at `now`, if any.
    /// While active, the host ignores wake requests entirely.
    pub fn wake_failure(&self, host: u32, now: SimTime) -> Option<&Fault> {
        self.faults
            .iter()
            .find(|f| f.kind == FaultClass::WakeFailure && f.affects(host) && f.active_at(now))
    }

    /// Extra S3 resume seconds injected for `host` at `now` (0.0 when no
    /// wake-delay window is active). Overlapping windows take the max.
    pub fn wake_delay_secs(&self, host: u32, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultClass::WakeDelay && f.affects(host) && f.active_at(now))
            .fold(0.0, |acc, f| acc.max(f.severity))
    }

    /// The active memory-server crash window for `host` at `now`, if any.
    pub fn memserver_down(&self, host: u32, now: SimTime) -> Option<&Fault> {
        self.faults
            .iter()
            .find(|f| f.kind == FaultClass::MemServerCrash && f.affects(host) && f.active_at(now))
    }

    /// The network latency multiplier at `now`. Exactly 1.0 with no
    /// active window (the multiplication by 1.0 is IEEE-exact, so a
    /// fault-free schedule cannot perturb latency math); overlapping
    /// windows compound multiplicatively.
    pub fn link_factor(&self, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultClass::LinkDegraded && f.active_at(now))
            .fold(1.0, |acc, f| acc * f.severity)
    }

    /// The active migration-stall window at `now`, if any. Migrations
    /// started while it is active stall and enter cancel-and-retry.
    pub fn migration_stalled(&self, now: SimTime) -> Option<&Fault> {
        self.faults.iter().find(|f| f.kind == FaultClass::MigrationStall && f.active_at(now))
    }

    /// Samples a random schedule from `profile` over `[0, horizon)` for a
    /// cluster of `hosts` hosts.
    ///
    /// Draws from a private generator seeded with `seed` in a fixed class
    /// order, so the result depends only on `(profile, hosts, horizon,
    /// seed)` — never on the simulation's own RNG position.
    pub fn random(profile: FaultProfile, hosts: u32, horizon: SimDuration, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let horizon_secs = horizon.as_secs_f64();
        let mut faults = Vec::new();
        let window = |rng: &mut SimRng| {
            let start = SimTime::from_secs_f64(rng.range_f64(0.0, horizon_secs));
            let lo = profile.min_duration.as_secs_f64();
            let hi = profile.max_duration.as_secs_f64().max(lo);
            let duration = SimDuration::from_secs_f64(rng.range_f64(lo, hi));
            (start, duration)
        };
        for _ in 0..profile.wake_failures {
            let host = if hosts > 0 { Some(rng.below(hosts as u64) as u32) } else { None };
            let (start, duration) = window(&mut rng);
            faults.push(Fault {
                kind: FaultClass::WakeFailure,
                host,
                start,
                duration,
                severity: 0.0,
            });
        }
        for _ in 0..profile.wake_delays {
            let host = if hosts > 0 { Some(rng.below(hosts as u64) as u32) } else { None };
            let (start, duration) = window(&mut rng);
            let severity = rng.range_f64(5.0, profile.max_wake_delay_secs.max(5.0));
            faults.push(Fault { kind: FaultClass::WakeDelay, host, start, duration, severity });
        }
        for _ in 0..profile.memserver_crashes {
            let host = if hosts > 0 { Some(rng.below(hosts as u64) as u32) } else { None };
            let (start, duration) = window(&mut rng);
            faults.push(Fault {
                kind: FaultClass::MemServerCrash,
                host,
                start,
                duration,
                severity: 0.0,
            });
        }
        for _ in 0..profile.link_degradations {
            let (start, duration) = window(&mut rng);
            let severity = rng.range_f64(1.5, profile.max_link_factor.max(1.5));
            faults.push(Fault {
                kind: FaultClass::LinkDegraded,
                host: None,
                start,
                duration,
                severity,
            });
        }
        for _ in 0..profile.migration_stalls {
            let (start, duration) = window(&mut rng);
            faults.push(Fault {
                kind: FaultClass::MigrationStall,
                host: None,
                start,
                duration,
                severity: 0.0,
            });
        }
        FaultSchedule::new(faults)
    }

    /// Parses the text schedule format, one fault per line:
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// wake_fail host=3 at=3600 for=1200
    /// wake_delay host=2 at=0 for=86400 secs=45
    /// memserver_crash host=1 at=7200 for=3600
    /// link_degraded at=10800 for=1800 factor=4
    /// migration_stall at=300 for=900
    /// ```
    ///
    /// `at` and `for` are seconds of simulated time. Host-scoped classes
    /// (`wake_fail`, `wake_delay`, `memserver_crash`) require `host=`;
    /// cluster-wide classes (`link_degraded`, `migration_stall`) reject it.
    pub fn from_text(text: &str) -> Result<Self, ScheduleError> {
        let mut faults = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut parts = body.split_whitespace();
            let kind_tok = parts.next().unwrap_or("");
            let kind = match kind_tok {
                "wake_fail" => FaultClass::WakeFailure,
                "wake_delay" => FaultClass::WakeDelay,
                "memserver_crash" => FaultClass::MemServerCrash,
                "link_degraded" => FaultClass::LinkDegraded,
                "migration_stall" => FaultClass::MigrationStall,
                other => {
                    return Err(ScheduleError::new(line, format!("unknown fault kind `{other}`")))
                }
            };
            let mut host = None;
            let mut at = None;
            let mut dur = None;
            let mut secs = None;
            let mut factor = None;
            for kv in parts {
                let (key, value) = kv.split_once('=').ok_or_else(|| {
                    ScheduleError::new(line, format!("expected key=value, got `{kv}`"))
                })?;
                let num = |slot: &mut Option<f64>| -> Result<(), ScheduleError> {
                    let v: f64 = value.parse().map_err(|_| {
                        ScheduleError::new(line, format!("bad number `{value}` for `{key}`"))
                    })?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(ScheduleError::new(
                            line,
                            format!("`{key}` must be finite and non-negative, got `{value}`"),
                        ));
                    }
                    *slot = Some(v);
                    Ok(())
                };
                match key {
                    "host" => {
                        let h: u32 = value.parse().map_err(|_| {
                            ScheduleError::new(line, format!("bad host id `{value}`"))
                        })?;
                        host = Some(h);
                    }
                    "at" => num(&mut at)?,
                    "for" => num(&mut dur)?,
                    "secs" => num(&mut secs)?,
                    "factor" => num(&mut factor)?,
                    other => {
                        return Err(ScheduleError::new(line, format!("unknown key `{other}`")))
                    }
                }
            }
            let at = at.ok_or_else(|| ScheduleError::new(line, "missing `at=` start time"))?;
            let dur = dur.ok_or_else(|| ScheduleError::new(line, "missing `for=` duration"))?;
            let host_scoped = matches!(
                kind,
                FaultClass::WakeFailure | FaultClass::WakeDelay | FaultClass::MemServerCrash
            );
            if host_scoped && host.is_none() {
                return Err(ScheduleError::new(line, format!("`{kind_tok}` requires `host=`")));
            }
            if !host_scoped && host.is_some() {
                return Err(ScheduleError::new(
                    line,
                    format!("`{kind_tok}` is cluster-wide; drop `host=`"),
                ));
            }
            let severity = match kind {
                FaultClass::WakeDelay => {
                    secs.ok_or_else(|| ScheduleError::new(line, "`wake_delay` requires `secs=`"))?
                }
                FaultClass::LinkDegraded => {
                    let f = factor.ok_or_else(|| {
                        ScheduleError::new(line, "`link_degraded` requires `factor=`")
                    })?;
                    if f < 1.0 {
                        return Err(ScheduleError::new(
                            line,
                            format!("`factor=` must be >= 1, got `{f}`"),
                        ));
                    }
                    f
                }
                _ => {
                    if secs.is_some() || factor.is_some() {
                        return Err(ScheduleError::new(
                            line,
                            format!("`{kind_tok}` takes no `secs=`/`factor=`"),
                        ));
                    }
                    0.0
                }
            };
            faults.push(Fault {
                kind,
                host,
                start: SimTime::from_secs_f64(at),
                duration: SimDuration::from_secs_f64(dur),
                severity,
            });
        }
        Ok(FaultSchedule::new(faults))
    }

    /// Serializes back to the text format accepted by
    /// [`FaultSchedule::from_text`] (round-trips exactly).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            let kind = match f.kind {
                FaultClass::WakeFailure => "wake_fail",
                FaultClass::WakeDelay => "wake_delay",
                FaultClass::MemServerCrash => "memserver_crash",
                FaultClass::LinkDegraded => "link_degraded",
                FaultClass::MigrationStall => "migration_stall",
            };
            out.push_str(kind);
            if let Some(h) = f.host {
                out.push_str(&format!(" host={h}"));
            }
            out.push_str(&format!(
                " at={} for={}",
                f.start.as_secs_f64(),
                f.duration.as_secs_f64()
            ));
            match f.kind {
                FaultClass::WakeDelay => out.push_str(&format!(" secs={}", f.severity)),
                FaultClass::LinkDegraded => out.push_str(&format!(" factor={}", f.severity)),
                _ => {}
            }
            out.push('\n');
        }
        out
    }
}

/// A parse error from [`FaultSchedule::from_text`], with a 1-based line
/// number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ScheduleError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ScheduleError { line, message: message.into() }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault schedule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(kind: FaultClass, host: Option<u32>, at: u64, dur: u64, sev: f64) -> Fault {
        Fault {
            kind,
            host,
            start: SimTime::from_secs(at),
            duration: SimDuration::from_secs(dur),
            severity: sev,
        }
    }

    #[test]
    fn windows_are_half_open() {
        let f = fault(FaultClass::WakeFailure, Some(1), 100, 50, 0.0);
        assert!(!f.active_at(SimTime::from_secs(99)));
        assert!(f.active_at(SimTime::from_secs(100)));
        assert!(f.active_at(SimTime::from_secs(149)));
        assert!(!f.active_at(SimTime::from_secs(150)));
    }

    #[test]
    fn queries_scope_by_host_and_time() {
        let s = FaultSchedule::new(vec![
            fault(FaultClass::WakeFailure, Some(2), 0, 100, 0.0),
            fault(FaultClass::WakeDelay, Some(3), 0, 100, 45.0),
            fault(FaultClass::MemServerCrash, Some(4), 50, 100, 0.0),
        ]);
        let t = SimTime::from_secs(10);
        assert!(s.wake_failure(2, t).is_some());
        assert!(s.wake_failure(3, t).is_none());
        assert!(s.wake_failure(2, SimTime::from_secs(200)).is_none());
        assert_eq!(s.wake_delay_secs(3, t), 45.0);
        assert_eq!(s.wake_delay_secs(2, t), 0.0);
        assert!(s.memserver_down(4, t).is_none());
        assert!(s.memserver_down(4, SimTime::from_secs(60)).is_some());
    }

    #[test]
    fn cluster_wide_faults_affect_every_host() {
        let s = FaultSchedule::new(vec![fault(FaultClass::WakeFailure, None, 0, 100, 0.0)]);
        assert!(s.wake_failure(0, SimTime::ZERO).is_some());
        assert!(s.wake_failure(999, SimTime::ZERO).is_some());
    }

    #[test]
    fn link_factor_compounds_and_defaults_to_exactly_one() {
        let s = FaultSchedule::new(vec![
            fault(FaultClass::LinkDegraded, None, 0, 100, 2.0),
            fault(FaultClass::LinkDegraded, None, 50, 100, 3.0),
        ]);
        assert_eq!(s.link_factor(SimTime::from_secs(10)), 2.0);
        assert_eq!(s.link_factor(SimTime::from_secs(60)), 6.0);
        assert_eq!(s.link_factor(SimTime::from_secs(200)), 1.0);
        assert_eq!(FaultSchedule::none().link_factor(SimTime::ZERO), 1.0);
    }

    #[test]
    fn onsets_between_reports_each_fault_once() {
        let s = FaultSchedule::new(vec![
            fault(FaultClass::MigrationStall, None, 100, 10, 0.0),
            fault(FaultClass::MigrationStall, None, 300, 10, 0.0),
        ]);
        let in_first: Vec<_> = s.onsets_between(SimTime::ZERO, SimTime::from_secs(300)).collect();
        assert_eq!(in_first.len(), 1);
        let in_second: Vec<_> =
            s.onsets_between(SimTime::from_secs(300), SimTime::from_secs(600)).collect();
        assert_eq!(in_second.len(), 1);
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        let p = FaultProfile::heavy();
        let day = SimDuration::from_hours(24);
        let a = FaultSchedule::random(p, 16, day, 42);
        let b = FaultSchedule::random(p, 16, day, 42);
        assert_eq!(a, b);
        assert_eq!(a.len() as u32, 8 + 4 + 3 + 3 + 6);
        let c = FaultSchedule::random(p, 16, day, 43);
        assert_ne!(a, c, "different seeds must give different schedules");
        for f in a.faults() {
            assert!(f.start.as_secs_f64() < day.as_secs_f64());
            assert!(f.duration >= p.min_duration && f.duration <= p.max_duration);
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let text = "\
# canonical fault mix
wake_fail host=3 at=3600 for=1200
wake_delay host=2 at=0 for=86400 secs=45
memserver_crash host=1 at=7200 for=3600
link_degraded at=10800 for=1800 factor=4
migration_stall at=300 for=900
";
        let parsed = FaultSchedule::from_text(text).expect("parses");
        assert_eq!(parsed.len(), 5);
        let reparsed = FaultSchedule::from_text(&parsed.to_text()).expect("round-trips");
        assert_eq!(parsed, reparsed);
        let random =
            FaultSchedule::random(FaultProfile::light(), 8, SimDuration::from_hours(24), 7);
        let round = FaultSchedule::from_text(&random.to_text()).expect("random round-trips");
        assert_eq!(random, round);
    }

    #[test]
    fn parse_errors_name_the_line_and_problem() {
        let cases = [
            ("explode at=0 for=1", "unknown fault kind"),
            ("wake_fail host=1 at=0", "missing `for=`"),
            ("wake_fail at=0 for=1", "requires `host=`"),
            ("migration_stall host=1 at=0 for=1", "cluster-wide"),
            ("wake_delay host=1 at=0 for=1", "requires `secs=`"),
            ("link_degraded at=0 for=1 factor=0.5", "must be >= 1"),
            ("wake_fail host=1 at=-5 for=1", "non-negative"),
            ("wake_fail host=1 at=0 for=1 bogus=2", "unknown key"),
            ("wake_fail host=1 at=zero for=1", "bad number"),
            ("memserver_crash host=1 at=0 for=1 secs=3", "takes no"),
        ];
        for (text, needle) in cases {
            let err = FaultSchedule::from_text(text).expect_err(text);
            assert_eq!(err.line, 1);
            assert!(err.message.contains(needle), "{text}: {}", err.message);
        }
        let multi = "wake_fail host=1 at=0 for=1\nnope at=0 for=1";
        assert_eq!(FaultSchedule::from_text(multi).expect_err("bad line 2").line, 2);
    }

    #[test]
    fn empty_schedule_answers_every_query_negatively() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.wake_failure(0, SimTime::ZERO).is_none());
        assert_eq!(s.wake_delay_secs(0, SimTime::ZERO), 0.0);
        assert!(s.memserver_down(0, SimTime::ZERO).is_none());
        assert!(s.migration_stalled(SimTime::ZERO).is_none());
        assert_eq!(s.onsets_between(SimTime::ZERO, SimTime::MAX).count(), 0);
        assert_eq!(s.to_text(), "");
    }
}
