//! Scheduled cold restarts: patch-window mass reboots.
//!
//! A [`RebootSchedule`] is the maintenance-side twin of
//! [`FaultSchedule`](crate::FaultSchedule): a fully materialized,
//! sorted list of [`Reboot`] windows built before the simulation
//! starts and queried with pure lookups against the sim clock. Unlike
//! faults, reboots are *planned* — every host goes down exactly when
//! the schedule says, stays down for its configured `downtime`, and
//! comes back without a recovery path. The simulator charges the
//! suspend/resume transition energy and the lost awake seconds, and
//! records the wake latency seen by any resident active VM, so a
//! patch window shows up in the energy ledger and the SLA CDF the
//! same way an organic power transition does.

use oasis_sim::{SimDuration, SimTime};

/// One scheduled cold restart of one host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reboot {
    /// Host to restart (simulator host index, homes first).
    pub host: u32,
    /// When the host goes down.
    pub start: SimTime,
    /// How long it stays down. The simulator clamps the outage to the
    /// interval the onset lands in, so schedules should keep this
    /// under one interval (300 s) for faithful accounting.
    pub downtime: SimDuration,
}

impl Reboot {
    /// When the host is back up.
    pub fn end(&self) -> SimTime {
        self.start + self.downtime
    }
}

/// A sorted, queryable collection of reboot windows.
///
/// Sorted by `(start, host)` so construction order never leaks into
/// iteration order — the simulator applies same-interval reboots in
/// this canonical order on every engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RebootSchedule {
    reboots: Vec<Reboot>,
}

impl RebootSchedule {
    /// The empty schedule: no reboots, ever. A run under this schedule
    /// is byte-identical to a run without reboot plumbing at all.
    pub fn none() -> Self {
        RebootSchedule::default()
    }

    /// Builds a schedule from explicit windows (sorted internally).
    pub fn new(mut reboots: Vec<Reboot>) -> Self {
        reboots.sort_by_key(|r| (r.start, r.host));
        RebootSchedule { reboots }
    }

    /// A patch window: hosts `0..hosts` restart one after another,
    /// `stride` apart, starting at `window_start`, each down for
    /// `downtime`. The canonical staggered-maintenance shape.
    pub fn patch_window(
        hosts: u32,
        window_start: SimTime,
        stride: SimDuration,
        downtime: SimDuration,
    ) -> Self {
        let reboots = (0..hosts)
            .map(|h| Reboot { host: h, start: window_start + stride.mul_f64(h as f64), downtime })
            .collect();
        RebootSchedule::new(reboots)
    }

    /// All windows, in canonical order.
    pub fn reboots(&self) -> &[Reboot] {
        &self.reboots
    }

    /// Number of scheduled reboots.
    pub fn len(&self) -> usize {
        self.reboots.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.reboots.is_empty()
    }

    /// Reboots whose onset falls in `[from, to)`, in canonical order —
    /// the per-interval query both engines drive the outage from.
    pub fn onsets_between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Reboot> {
        self.reboots.iter().filter(move |r| from <= r.start && r.start < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_by_start_then_host() {
        let s = RebootSchedule::new(vec![
            Reboot {
                host: 5,
                start: SimTime::from_secs(600),
                downtime: SimDuration::from_secs(60),
            },
            Reboot {
                host: 1,
                start: SimTime::from_secs(600),
                downtime: SimDuration::from_secs(60),
            },
            Reboot { host: 9, start: SimTime::ZERO, downtime: SimDuration::from_secs(60) },
        ]);
        let order: Vec<u32> = s.reboots().iter().map(|r| r.host).collect();
        assert_eq!(order, vec![9, 1, 5]);
    }

    #[test]
    fn onsets_between_is_half_open() {
        let s = RebootSchedule::new(vec![
            Reboot {
                host: 0,
                start: SimTime::from_secs(300),
                downtime: SimDuration::from_secs(60),
            },
            Reboot {
                host: 1,
                start: SimTime::from_secs(600),
                downtime: SimDuration::from_secs(60),
            },
        ]);
        let hits: Vec<u32> = s
            .onsets_between(SimTime::from_secs(300), SimTime::from_secs(600))
            .map(|r| r.host)
            .collect();
        assert_eq!(hits, vec![0]);
        assert_eq!(s.onsets_between(SimTime::ZERO, SimTime::from_secs(300)).count(), 0);
    }

    #[test]
    fn patch_window_staggers_every_host() {
        let s = RebootSchedule::patch_window(
            4,
            SimTime::from_secs(3_600),
            SimDuration::from_secs(300),
            SimDuration::from_secs(120),
        );
        assert_eq!(s.len(), 4);
        for (i, r) in s.reboots().iter().enumerate() {
            assert_eq!(r.host, i as u32);
            assert_eq!(r.start, SimTime::from_secs(3_600 + 300 * i as u64));
            assert_eq!(r.end(), SimTime::from_secs(3_600 + 300 * i as u64 + 120));
        }
    }

    #[test]
    fn empty_schedule_answers_negatively() {
        let s = RebootSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.onsets_between(SimTime::ZERO, SimTime::MAX).count(), 0);
    }
}
