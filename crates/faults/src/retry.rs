//! Bounded exponential backoff with deterministic jitter.
//!
//! One policy type serves every retry loop in the stack: Wake-on-LAN
//! retransmission (constant one-second spacing, matching the magic-packet
//! sender's historical behaviour draw-for-draw), wake recovery after a
//! failed S3 resume, and migration cancel-and-retry. The jitter term is
//! sampled from a caller-supplied [`SimRng`], and a policy with
//! `jitter == 0.0` consumes **no** draws at all — so threading a policy
//! through an existing loop cannot perturb its random stream.

use oasis_sim::{SimDuration, SimRng};

/// A bounded retry schedule: exponential backoff, capped per-attempt
/// delay, capped attempt count, optional multiplicative jitter.
///
/// Attempts are 1-based: `delay(1, ..)` is the wait after the first
/// failure. Delays grow as `initial * factor^(attempt-1)`, saturating at
/// `max_delay`; after `max_attempts` failures the operation is abandoned
/// and the caller falls back to its degradation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Delay after the first failed attempt.
    pub initial: SimDuration,
    /// Multiplier applied per subsequent attempt (`1.0` = constant).
    pub factor: f64,
    /// Per-attempt delay ceiling.
    pub max_delay: SimDuration,
    /// Attempts before giving up (0 means "never retry").
    pub max_attempts: u32,
    /// Jitter fraction in `[0, 1)`: the delay is scaled by a uniform
    /// draw from `[1 - jitter, 1 + jitter)`. Zero consumes no RNG draws.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Constant-delay policy with no jitter (e.g. WoL retransmission).
    pub fn constant(delay: SimDuration, max_attempts: u32) -> Self {
        RetryPolicy { initial: delay, factor: 1.0, max_delay: delay, max_attempts, jitter: 0.0 }
    }

    /// The Wake-on-LAN retransmission schedule: one magic packet per
    /// second, up to ten packets, no jitter. Matches the historical
    /// inline loop in `oasis-net` exactly, including its RNG draw count.
    pub fn wol() -> Self {
        RetryPolicy::constant(SimDuration::from_secs(1), 10)
    }

    /// The default fault-recovery schedule: 500 ms doubling to a 16 s
    /// cap over six attempts, with ±25 % jitter to avoid synchronized
    /// retry storms when a rack-wide fault releases many waiters at once.
    ///
    /// Worst-case total wait (all six attempts, max jitter) is just
    /// under 40 s — under one simulation interval, so a recovery either
    /// completes or falls back within the interval that observed the
    /// fault.
    pub fn recovery() -> Self {
        RetryPolicy {
            initial: SimDuration::from_millis(500),
            factor: 2.0,
            max_delay: SimDuration::from_secs(30),
            max_attempts: 6,
            jitter: 0.25,
        }
    }

    /// The un-jittered delay for a 1-based attempt number, saturating at
    /// `max_delay`. Attempt 0 maps to zero (no wait before the first try).
    pub fn base_delay(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        // Work in f64 seconds: factor^(n-1) overflows integer math fast,
        // and the saturating cap keeps the result finite.
        let secs = self.initial.as_secs_f64() * self.factor.powi(attempt as i32 - 1);
        let capped = secs.min(self.max_delay.as_secs_f64());
        SimDuration::from_secs_f64(capped)
    }

    /// The jittered delay for a 1-based attempt. With `jitter == 0.0`
    /// this returns [`RetryPolicy::base_delay`] and draws nothing from
    /// `rng` — callers that need byte-stable streams rely on this.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let base = self.base_delay(attempt);
        if self.jitter == 0.0 || base.is_zero() {
            return base;
        }
        let scale = rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter);
        base.mul_f64(scale)
    }

    /// Upper bound on the total time a full retry sequence can wait:
    /// the sum of every base delay, scaled by the worst-case jitter.
    /// Recovery loops compare this against the remaining fault window to
    /// decide between waiting out the fault and degrading immediately.
    pub fn max_total_delay(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..=self.max_attempts {
            total += self.base_delay(attempt);
        }
        total.mul_f64(1.0 + self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_delays_double_and_cap() {
        let p = RetryPolicy::recovery();
        let secs: Vec<f64> = (1..=6).map(|a| p.base_delay(a).as_secs_f64()).collect();
        assert_eq!(secs, vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0]);
        // Past the configured attempts the cap takes over.
        assert_eq!(p.base_delay(12).as_secs_f64(), 30.0);
        assert_eq!(p.base_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn constant_policy_never_grows() {
        let p = RetryPolicy::wol();
        for attempt in 1..=10 {
            assert_eq!(p.base_delay(attempt), SimDuration::from_secs(1));
        }
        assert_eq!(p.max_total_delay(), SimDuration::from_secs(10));
    }

    #[test]
    fn zero_jitter_consumes_no_rng_draws() {
        let p = RetryPolicy::wol();
        let mut rng = SimRng::new(7);
        let mut untouched = SimRng::new(7);
        for attempt in 1..=5 {
            let _ = p.delay(attempt, &mut rng);
        }
        // The stream is bit-identical to one that never saw the policy.
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::recovery();
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for attempt in 1..=6 {
            let da = p.delay(attempt, &mut a);
            let db = p.delay(attempt, &mut b);
            assert_eq!(da, db, "same seed must give the same jitter");
            let base = p.base_delay(attempt).as_secs_f64();
            let got = da.as_secs_f64();
            assert!(
                got >= base * (1.0 - p.jitter) && got < base * (1.0 + p.jitter),
                "attempt {attempt}: {got} outside jitter band around {base}"
            );
        }
    }

    #[test]
    fn exhaustion_budget_bounds_every_sequence() {
        let p = RetryPolicy::recovery();
        let budget = p.max_total_delay();
        // 0.5+1+2+4+8+16 = 31.5s, * 1.25 jitter headroom.
        assert_eq!(budget.as_secs_f64(), 31.5 * 1.25);
        let mut rng = SimRng::new(9);
        let mut total = SimDuration::ZERO;
        for attempt in 1..=p.max_attempts {
            total += p.delay(attempt, &mut rng);
        }
        assert!(total <= budget, "jittered total {total:?} over budget {budget:?}");
    }
}
