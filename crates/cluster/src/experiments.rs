//! Canned experiment configurations for every table and figure of §5.
//!
//! Each function reproduces one evaluation artifact and returns plain data
//! that the `oasis-bench` binaries print as rows/series. The paper's
//! defaults — 30 home hosts, 4 consolidation hosts, 900 VMs, 5 averaged
//! runs — are baked in but scale down for quick runs via the `runs`
//! parameters and [`Scale`].
//!
//! ## Parallel execution
//!
//! Every run inside an experiment is an independent seeded day-simulation,
//! so each sweep fans its `run_one` calls across a
//! [`oasis_sim::pool::WorkerPool`] (sized by `--jobs`/`OASIS_JOBS`, default
//! = available parallelism). Results are collected in input order and
//! aggregated in exactly the sequence the sequential loops used, so the
//! output is byte-identical to a `--jobs 1` run — the equivalence suite in
//! `tests/parallel_equivalence.rs` pins this down.

use oasis_core::PolicyKind;
use oasis_power::MemoryServerProfile;
use oasis_sim::pool::WorkerPool;
use oasis_sim::stats::mean_and_std;
use oasis_trace::DayKind;

use crate::config::ClusterConfig;
use crate::results::SimReport;
use crate::shard::{DatacenterConfig, DatacenterReport, PlannerScope, ScorecardRow};
use crate::sim::ClusterSim;

/// Cluster scale an experiment runs at.
///
/// [`Scale::PAPER`] is §5.1's rack; [`Scale::SMOKE`] is the reduced rack
/// the perf bench and CI smoke jobs use so a sweep finishes in seconds;
/// [`Scale::DATACENTER`] is the sharded multi-rack tier (one simulated
/// rack per [`crate::shard`] shard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Number of home (compute) hosts per rack.
    pub home_hosts: u32,
    /// VMs packed per home host.
    pub vms_per_host: u32,
    /// Racks simulated (1 = the paper's single-rack setup; the day is
    /// sharded per rack above that).
    pub racks: u32,
}

impl Scale {
    /// The paper's §5.1 deployment: 30 home hosts × 30 VMs, one rack.
    pub const PAPER: Scale = Scale { home_hosts: 30, vms_per_host: 30, racks: 1 };

    /// A reduced rack for smoke/perf runs: 6 home hosts × 10 VMs.
    pub const SMOKE: Scale = Scale { home_hosts: 6, vms_per_host: 10, racks: 1 };

    /// The datacenter tier: 5,000 micro-racks of 4 home + 1
    /// consolidation host (25,000 hosts) packing 10 VMs per home
    /// (200,000 VMs). Racks are far sparser than the paper's (40 VMs vs
    /// 900) so whole racks actually quiesce overnight — the regime
    /// where the event engine's structural skipping pays (DESIGN.md
    /// §17: planner replays and fetch skips only fire on intervals with
    /// no session edge anywhere in the shard) — and trace offsets
    /// stagger by timezone (one hour per rack, round-robin over 24
    /// zones), so the consolidation wave sweeps across the fleet and
    /// the epoch planner has simultaneous donors and borrowers to
    /// match.
    pub const DATACENTER: Scale = Scale { home_hosts: 4, vms_per_host: 10, racks: 5_000 };

    /// Consolidation hosts per rack conventionally paired with this
    /// scale (the paper's 4 for single-rack tiers, 1 for the sparse
    /// datacenter micro-racks).
    pub fn default_cons(&self) -> u32 {
        if self.racks > 1 {
            1
        } else {
            4
        }
    }

    /// Host memory conventionally paired with this scale: datacenter
    /// racks run 32 GiB hosts so a rack's 40 idle working sets genuinely
    /// load its consolidation host (utilization swings ~0.1 → 1.0 with
    /// the timezone wave, which is what gives the epoch planner's
    /// donor/borrower thresholds something to discriminate); single-rack
    /// tiers keep the paper's 128 GiB.
    pub fn host_memory(&self) -> oasis_mem::ByteSize {
        if self.racks > 1 {
            oasis_mem::ByteSize::gib(32)
        } else {
            oasis_mem::ByteSize::gib(128)
        }
    }

    /// Total hosts across all racks, with `cons` consolidation hosts
    /// per rack.
    pub fn total_hosts(&self, cons: u32) -> u32 {
        self.racks * (self.home_hosts + cons)
    }

    /// Total VMs across all racks.
    pub fn total_vms(&self) -> u32 {
        self.racks * self.home_hosts * self.vms_per_host
    }
}

/// The consolidation-host sweep shared by Figures 8 and 11.
pub const CONS_SWEEP: [u32; 6] = [2, 4, 6, 8, 10, 12];

/// Aggregate of a simulated week (five weekdays + two weekend days).
#[derive(Clone, Debug)]
pub struct WeekReport {
    /// The seven daily reports, Monday-first.
    pub days: Vec<SimReport>,
    /// Energy savings over the whole week.
    pub savings: f64,
    /// Baseline energy for the week (kWh).
    pub baseline_kwh: f64,
    /// Managed energy for the week (kWh).
    pub total_kwh: f64,
}

/// Simulates a full week: five weekdays then two weekend days, each with
/// an independently sampled user population.
pub fn run_week(base: &ClusterConfig) -> WeekReport {
    run_week_on(&WorkerPool::from_env(), base)
}

/// [`run_week`] on an explicit worker pool: the seven days are seeded
/// independently, so they fan across the pool and are reassembled
/// Monday-first.
pub fn run_week_on(pool: &WorkerPool, base: &ClusterConfig) -> WeekReport {
    let cfgs: Vec<ClusterConfig> = (0..7u64)
        .map(|dow| {
            let day = if dow < 5 { DayKind::Weekday } else { DayKind::Weekend };
            let mut cfg = base.clone();
            cfg.day = day;
            cfg.seed = base.seed.wrapping_mul(7).wrapping_add(dow + 1);
            cfg
        })
        .collect();
    let days = pool.map(cfgs, |cfg| ClusterSim::new(cfg).run_day());
    let baseline_kwh: f64 = days.iter().map(|d| d.baseline_kwh).sum();
    let total_kwh: f64 = days.iter().map(|d| d.total_kwh).sum();
    WeekReport { days, savings: 1.0 - total_kwh / baseline_kwh, baseline_kwh, total_kwh }
}

/// One Figure 8 data point: mean ± std of energy savings over runs.
#[derive(Clone, Debug, PartialEq)]
pub struct SavingsPoint {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Day kind.
    pub day: DayKind,
    /// Number of consolidation hosts.
    pub consolidation_hosts: u32,
    /// Mean energy savings over the runs.
    pub mean: f64,
    /// Sample standard deviation over the runs (the error bars).
    pub std_dev: f64,
}

/// Runs one simulated day with the given overrides at paper scale.
pub fn run_one(policy: PolicyKind, day: DayKind, consolidation_hosts: u32, seed: u64) -> SimReport {
    run_one_at(Scale::PAPER, policy, day, consolidation_hosts, seed)
}

/// Runs one simulated day at an explicit [`Scale`].
pub fn run_one_at(
    scale: Scale,
    policy: PolicyKind,
    day: DayKind,
    consolidation_hosts: u32,
    seed: u64,
) -> SimReport {
    let cfg = ClusterConfig::builder()
        .policy(policy)
        .day(day)
        .home_hosts(scale.home_hosts)
        .vms_per_host(scale.vms_per_host)
        .consolidation_hosts(consolidation_hosts)
        .seed(seed)
        .build()
        .expect("valid §5.1 configuration");
    ClusterSim::new(cfg).run_day()
}

/// Figure 7: active VMs and powered hosts over a day (30 home + 4
/// consolidation hosts, FulltoPartial).
pub fn figure7(day: DayKind, seed: u64) -> SimReport {
    run_one(PolicyKind::FullToPartial, day, 4, seed)
}

/// Figure 8: energy savings per policy as consolidation hosts vary, with
/// `runs` repetitions per point.
pub fn figure8(day: DayKind, runs: u64) -> Vec<SavingsPoint> {
    figure8_at(&WorkerPool::from_env(), Scale::PAPER, day, runs)
}

/// [`figure8`] on an explicit pool and scale. Every (policy, host-count,
/// seed) cell is one independent simulation; the whole sweep fans out
/// flat and is re-chunked per point afterwards, so the mean/std
/// aggregation consumes runs in the same order as the sequential loop.
pub fn figure8_at(pool: &WorkerPool, scale: Scale, day: DayKind, runs: u64) -> Vec<SavingsPoint> {
    let mut tasks = Vec::new();
    for policy in PolicyKind::FIGURE8 {
        for cons in CONS_SWEEP {
            for r in 0..runs {
                tasks.push((policy, cons, 1 + r));
            }
        }
    }
    let savings = pool.map(tasks, |(p, c, seed)| run_one_at(scale, p, day, c, seed).energy_savings);
    let mut points = Vec::new();
    let mut cells = savings.chunks(runs.max(1) as usize);
    for policy in PolicyKind::FIGURE8 {
        for cons in CONS_SWEEP {
            let vals = cells.next().expect("one cell per (policy, cons) pair");
            let (mean, std_dev) = mean_and_std(vals);
            points.push(SavingsPoint { policy, day, consolidation_hosts: cons, mean, std_dev });
        }
    }
    points
}

/// Figure 9: consolidation-ratio CDFs for Default vs FulltoPartial (and
/// NewHome, which the paper shows overlapping FulltoPartial).
pub fn figure9(day: DayKind, seed: u64) -> Vec<(PolicyKind, SimReport)> {
    let policies = [PolicyKind::Default, PolicyKind::FullToPartial, PolicyKind::NewHome];
    WorkerPool::from_env().map(policies.to_vec(), |p| (p, run_one(p, day, 4, seed)))
}

/// Figure 10: weekday transfer breakdown per policy.
pub fn figure10(seed: u64) -> Vec<(PolicyKind, SimReport)> {
    WorkerPool::from_env()
        .map(PolicyKind::FIGURE8.to_vec(), |p| (p, run_one(p, DayKind::Weekday, 4, seed)))
}

/// Figure 11: idle→active delay distributions for 2–12 consolidation
/// hosts under FulltoPartial.
pub fn figure11(day: DayKind, seed: u64) -> Vec<(u32, SimReport)> {
    WorkerPool::from_env()
        .map(CONS_SWEEP.to_vec(), |c| (c, run_one(PolicyKind::FullToPartial, day, c, seed)))
}

/// Table 3: energy savings under alternative memory-server power budgets.
pub fn table3(runs: u64) -> Vec<(f64, f64, f64)> {
    table3_at(&WorkerPool::from_env(), Scale::PAPER, runs)
}

/// [`table3`] on an explicit pool and scale. Returns rows of
/// (memserver watts, weekday savings, weekend savings).
pub fn table3_at(pool: &WorkerPool, scale: Scale, runs: u64) -> Vec<(f64, f64, f64)> {
    let budgets = MemoryServerProfile::table3_budgets();
    let mut tasks = Vec::new();
    for ms in &budgets {
        for day in [DayKind::Weekday, DayKind::Weekend] {
            for r in 0..runs {
                tasks.push((*ms, day, 1 + r));
            }
        }
    }
    let savings = pool.map(tasks, |(ms, day, seed)| {
        let cfg = ClusterConfig::builder()
            .policy(PolicyKind::FullToPartial)
            .day(day)
            .home_hosts(scale.home_hosts)
            .vms_per_host(scale.vms_per_host)
            .consolidation_hosts(4)
            .memserver(ms)
            .seed(seed)
            .build()
            .expect("valid configuration");
        ClusterSim::new(cfg).run_day().energy_savings
    });
    let mut cells = savings.chunks(runs.max(1) as usize);
    budgets
        .into_iter()
        .map(|ms| {
            let weekday = mean_and_std(cells.next().expect("weekday cell")).0;
            let weekend = mean_and_std(cells.next().expect("weekend cell")).0;
            (ms.active_watts, weekday, weekend)
        })
        .collect()
}

/// Figure 12: cluster-size sensitivity, keeping 900 VMs total.
///
/// Home-host counts follow the paper's x-axis (`homes+cons` combos with
/// 30/45/50/60/90 VMs per host); hosts are given enough DRAM for the
/// denser packings.
pub fn figure12(day: DayKind, runs: u64) -> Vec<(u32, u32, u32, f64, f64)> {
    figure12_on(&WorkerPool::from_env(), day, runs)
}

/// [`figure12`] on an explicit pool. Returns rows of
/// (home hosts, consolidation hosts, vms/host, mean savings, std).
pub fn figure12_on(pool: &WorkerPool, day: DayKind, runs: u64) -> Vec<(u32, u32, u32, f64, f64)> {
    let combos: Vec<(u32, u32)> = vec![(30, 30), (20, 45), (18, 50), (15, 60), (10, 90)];
    let mut tasks = Vec::new();
    for &(homes, vms_per_host) in &combos {
        for cons in [2u32, 3, 4] {
            for r in 0..runs {
                tasks.push((homes, vms_per_host, cons, 1 + r));
            }
        }
    }
    let savings = pool.map(tasks, |(homes, vms_per_host, cons, seed)| {
        let cfg = ClusterConfig::builder()
            .policy(PolicyKind::FullToPartial)
            .day(day)
            .home_hosts(homes)
            .vms_per_host(vms_per_host)
            .consolidation_hosts(cons)
            // Dense packings need bigger hosts (4 GiB × 90 VMs).
            .host_memory(oasis_mem::ByteSize::gib(
                (u64::from(vms_per_host) * 4).next_multiple_of(64).max(128),
            ))
            .seed(seed)
            .build()
            .expect("valid configuration");
        ClusterSim::new(cfg).run_day().energy_savings
    });
    let mut cells = savings.chunks(runs.max(1) as usize);
    let mut out = Vec::new();
    for (homes, vms_per_host) in combos {
        for cons in [2u32, 3, 4] {
            let (mean, std_dev) = mean_and_std(cells.next().expect("one cell per combo"));
            out.push((homes, cons, vms_per_host, mean, std_dev));
        }
    }
    out
}

/// Runs one sharded datacenter day at `scale` under the paper's default
/// FulltoPartial policy (pool sized from `OASIS_JOBS`).
pub fn run_datacenter(scale: Scale, planner: PlannerScope, seed: u64) -> DatacenterReport {
    run_datacenter_on(&WorkerPool::from_env(), scale, planner, seed)
}

/// [`run_datacenter`] on an explicit worker pool.
pub fn run_datacenter_on(
    pool: &WorkerPool,
    scale: Scale,
    planner: PlannerScope,
    seed: u64,
) -> DatacenterReport {
    let dc = DatacenterConfig::at(scale, PolicyKind::FullToPartial, DayKind::Weekday, seed)
        .planner(planner);
    crate::shard::run_datacenter_day(pool, &dc, &|| 0.0)
}

/// The global-vs-local epoch-planner scorecard (ROADMAP item 3's shape:
/// energy, SLA violations, migration bytes per policy) at `scale`.
pub fn datacenter_scorecard_at(pool: &WorkerPool, scale: Scale, seed: u64) -> Vec<ScorecardRow> {
    let dc = DatacenterConfig::at(scale, PolicyKind::FullToPartial, DayKind::Weekday, seed);
    crate::shard::planner_scorecard(pool, &dc, &|| 0.0)
}

/// Runs one named scenario from [`crate::scenarios`] by registry name
/// (pool sized from `OASIS_JOBS`). `None` when the name is unknown; the
/// inner `Result` carries config errors from instantiating the spec.
pub fn run_scenario_by_name(
    name: &str,
    seed: u64,
) -> Option<Result<crate::scenarios::ScenarioReport, crate::config::ConfigError>> {
    let spec = crate::scenarios::find(name)?;
    Some(crate::scenarios::run_scenario(&spec, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast cluster for smoke tests.
    fn small(policy: PolicyKind, day: DayKind, seed: u64) -> SimReport {
        let cfg = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(policy)
            .day(day)
            .seed(seed)
            .build()
            .unwrap();
        ClusterSim::new(cfg).run_day()
    }

    #[test]
    fn fulltopartial_saves_energy_on_a_small_cluster() {
        let r = small(PolicyKind::FullToPartial, DayKind::Weekday, 3);
        assert!(r.energy_savings > 0.05, "savings {}", r.energy_savings);
        assert!(r.energy_savings < 0.7, "savings {}", r.energy_savings);
        assert!(r.migrations.partial > 0);
    }

    #[test]
    fn always_on_saves_nothing() {
        let r = small(PolicyKind::AlwaysOn, DayKind::Weekday, 3);
        // The managed cluster equals the baseline except the sleeping
        // consolidation hosts' S3 draw (2 hosts × 12.9 W ≈ −4 % at this
        // small scale, well under 2 % at the paper's 30-host scale).
        assert!(r.energy_savings.abs() < 0.06, "savings {}", r.energy_savings);
        assert_eq!(r.migrations.partial, 0);
        assert_eq!(r.migrations.full, 0);
    }

    #[test]
    fn weekend_beats_weekday() {
        let wd = small(PolicyKind::FullToPartial, DayKind::Weekday, 3);
        let we = small(PolicyKind::FullToPartial, DayKind::Weekend, 3);
        assert!(
            we.energy_savings > wd.energy_savings,
            "weekend {} vs weekday {}",
            we.energy_savings,
            wd.energy_savings
        );
    }

    #[test]
    fn policy_ordering_matches_figure8() {
        let only = small(PolicyKind::OnlyPartial, DayKind::Weekday, 5);
        let ftp = small(PolicyKind::FullToPartial, DayKind::Weekday, 5);
        assert!(
            ftp.energy_savings > only.energy_savings,
            "FulltoPartial {} vs OnlyPartial {}",
            ftp.energy_savings,
            only.energy_savings
        );
    }

    #[test]
    fn report_shape() {
        let r = small(PolicyKind::FullToPartial, DayKind::Weekday, 1);
        assert_eq!(r.active_vms_series.len(), 288);
        assert_eq!(r.powered_hosts_series.len(), 288);
        assert!(r.baseline_kwh > 0.0);
        assert!(r.total_kwh > 0.0);
        assert!(!r.transition_delays.is_empty());
    }

    #[test]
    fn week_blends_weekday_and_weekend_savings() {
        let cfg = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(PolicyKind::FullToPartial)
            .seed(3)
            .build()
            .unwrap();
        let week = run_week(&cfg);
        assert_eq!(week.days.len(), 7);
        assert_eq!(week.days.iter().filter(|d| d.day == DayKind::Weekend).count(), 2);
        let wd_mean: f64 = week.days[..5].iter().map(|d| d.energy_savings).sum::<f64>() / 5.0;
        let we_mean: f64 = week.days[5..].iter().map(|d| d.energy_savings).sum::<f64>() / 2.0;
        assert!(week.savings > wd_mean.min(we_mean));
        assert!(week.savings < wd_mean.max(we_mean));
        assert!(
            (week.baseline_kwh - week.days.iter().map(|d| d.baseline_kwh).sum::<f64>()).abs()
                < 1e-9
        );
    }

    #[test]
    fn server_mix_moves_less_data_for_similar_savings() {
        use oasis_vm::workload::WorkloadClass;
        let base = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(PolicyKind::FullToPartial)
            .seed(4);
        let vdi = ClusterSim::new(base.clone().build().unwrap()).run_day();
        let farm = ClusterSim::new(
            base.workload_mix(vec![
                (WorkloadClass::WebServer, 0.5),
                (WorkloadClass::Database, 0.5),
            ])
            .build()
            .unwrap(),
        )
        .run_day();
        // §5.6: similar savings, far smaller memory images.
        assert!((farm.energy_savings - vdi.energy_savings).abs() < 0.08);
        let vdi_sas = vdi.traffic.total(oasis_net::TrafficClass::MemServerUpload);
        let farm_sas = farm.traffic.total(oasis_net::TrafficClass::MemServerUpload);
        assert!(farm_sas < vdi_sas.mul_f64(0.5), "{farm_sas} !< half of {vdi_sas}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = small(PolicyKind::FullToPartial, DayKind::Weekday, 9);
        let b = small(PolicyKind::FullToPartial, DayKind::Weekday, 9);
        assert_eq!(a.energy_savings, b.energy_savings);
        assert_eq!(a.migrations, b.migrations);
        let c = small(PolicyKind::FullToPartial, DayKind::Weekday, 10);
        assert_ne!(a.energy_savings, c.energy_savings);
    }

    #[test]
    fn figure8_at_smoke_scale_produces_the_full_grid() {
        let points = figure8_at(&WorkerPool::new(2), Scale::SMOKE, DayKind::Weekday, 2);
        assert_eq!(points.len(), PolicyKind::FIGURE8.len() * CONS_SWEEP.len());
        // Rows iterate policies outer, host counts inner — the order the
        // fig08 binary prints.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.consolidation_hosts, CONS_SWEEP[i % CONS_SWEEP.len()]);
            assert_eq!(p.policy, PolicyKind::FIGURE8[i / CONS_SWEEP.len()]);
        }
    }
}
