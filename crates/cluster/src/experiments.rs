//! Canned experiment configurations for every table and figure of §5.
//!
//! Each function reproduces one evaluation artifact and returns plain data
//! that the `oasis-bench` binaries print as rows/series. The paper's
//! defaults — 30 home hosts, 4 consolidation hosts, 900 VMs, 5 averaged
//! runs — are baked in but scale down for quick runs via the `runs`
//! parameters.

use oasis_core::PolicyKind;
use oasis_power::MemoryServerProfile;
use oasis_sim::stats::mean_and_std;
use oasis_trace::DayKind;

use crate::config::ClusterConfig;
use crate::results::SimReport;
use crate::sim::ClusterSim;

/// Aggregate of a simulated week (five weekdays + two weekend days).
#[derive(Clone, Debug)]
pub struct WeekReport {
    /// The seven daily reports, Monday-first.
    pub days: Vec<SimReport>,
    /// Energy savings over the whole week.
    pub savings: f64,
    /// Baseline energy for the week (kWh).
    pub baseline_kwh: f64,
    /// Managed energy for the week (kWh).
    pub total_kwh: f64,
}

/// Simulates a full week: five weekdays then two weekend days, each with
/// an independently sampled user population.
pub fn run_week(base: &ClusterConfig) -> WeekReport {
    let mut days = Vec::with_capacity(7);
    for dow in 0..7u64 {
        let day = if dow < 5 { DayKind::Weekday } else { DayKind::Weekend };
        let mut cfg = base.clone();
        cfg.day = day;
        cfg.seed = base.seed.wrapping_mul(7).wrapping_add(dow + 1);
        days.push(ClusterSim::new(cfg).run_day());
    }
    let baseline_kwh: f64 = days.iter().map(|d| d.baseline_kwh).sum();
    let total_kwh: f64 = days.iter().map(|d| d.total_kwh).sum();
    WeekReport { days, savings: 1.0 - total_kwh / baseline_kwh, baseline_kwh, total_kwh }
}

/// One Figure 8 data point: mean ± std of energy savings over runs.
#[derive(Clone, Debug)]
pub struct SavingsPoint {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Day kind.
    pub day: DayKind,
    /// Number of consolidation hosts.
    pub consolidation_hosts: u32,
    /// Mean energy savings over the runs.
    pub mean: f64,
    /// Sample standard deviation over the runs (the error bars).
    pub std_dev: f64,
}

/// Runs one simulated day with the given overrides.
pub fn run_one(policy: PolicyKind, day: DayKind, consolidation_hosts: u32, seed: u64) -> SimReport {
    let cfg = ClusterConfig::builder()
        .policy(policy)
        .day(day)
        .consolidation_hosts(consolidation_hosts)
        .seed(seed)
        .build()
        .expect("valid §5.1 configuration");
    ClusterSim::new(cfg).run_day()
}

/// Figure 7: active VMs and powered hosts over a day (30 home + 4
/// consolidation hosts, FulltoPartial).
pub fn figure7(day: DayKind, seed: u64) -> SimReport {
    run_one(PolicyKind::FullToPartial, day, 4, seed)
}

/// Figure 8: energy savings per policy as consolidation hosts vary, with
/// `runs` repetitions per point.
pub fn figure8(day: DayKind, runs: u64) -> Vec<SavingsPoint> {
    let mut points = Vec::new();
    for policy in PolicyKind::FIGURE8 {
        for cons in [2u32, 4, 6, 8, 10, 12] {
            let savings: Vec<f64> =
                (0..runs).map(|r| run_one(policy, day, cons, 1 + r).energy_savings).collect();
            let (mean, std_dev) = mean_and_std(&savings);
            points.push(SavingsPoint { policy, day, consolidation_hosts: cons, mean, std_dev });
        }
    }
    points
}

/// Figure 9: consolidation-ratio CDFs for Default vs FulltoPartial (and
/// NewHome, which the paper shows overlapping FulltoPartial).
pub fn figure9(day: DayKind, seed: u64) -> Vec<(PolicyKind, SimReport)> {
    [PolicyKind::Default, PolicyKind::FullToPartial, PolicyKind::NewHome]
        .into_iter()
        .map(|p| (p, run_one(p, day, 4, seed)))
        .collect()
}

/// Figure 10: weekday transfer breakdown per policy.
pub fn figure10(seed: u64) -> Vec<(PolicyKind, SimReport)> {
    PolicyKind::FIGURE8.into_iter().map(|p| (p, run_one(p, DayKind::Weekday, 4, seed))).collect()
}

/// Figure 11: idle→active delay distributions for 2–12 consolidation
/// hosts under FulltoPartial.
pub fn figure11(day: DayKind, seed: u64) -> Vec<(u32, SimReport)> {
    [2u32, 4, 6, 8, 10, 12]
        .into_iter()
        .map(|c| (c, run_one(PolicyKind::FullToPartial, day, c, seed)))
        .collect()
}

/// Table 3: energy savings under alternative memory-server power budgets.
pub fn table3(runs: u64) -> Vec<(f64, f64, f64)> {
    // Returns (memserver watts, weekday savings, weekend savings).
    MemoryServerProfile::table3_budgets()
        .into_iter()
        .map(|ms| {
            let mut day_savings = [0.0f64; 2];
            for (slot, day) in [DayKind::Weekday, DayKind::Weekend].into_iter().enumerate() {
                let vals: Vec<f64> = (0..runs)
                    .map(|r| {
                        let cfg = ClusterConfig::builder()
                            .policy(PolicyKind::FullToPartial)
                            .day(day)
                            .consolidation_hosts(4)
                            .memserver(ms)
                            .seed(1 + r)
                            .build()
                            .expect("valid configuration");
                        ClusterSim::new(cfg).run_day().energy_savings
                    })
                    .collect();
                day_savings[slot] = mean_and_std(&vals).0;
            }
            (ms.active_watts, day_savings[0], day_savings[1])
        })
        .collect()
}

/// Figure 12: cluster-size sensitivity, keeping 900 VMs total.
///
/// Home-host counts follow the paper's x-axis (`homes+cons` combos with
/// 30/45/50/60/90 VMs per host); hosts are given enough DRAM for the
/// denser packings.
pub fn figure12(day: DayKind, runs: u64) -> Vec<(u32, u32, u32, f64, f64)> {
    // (home hosts, consolidation hosts, vms/host, mean savings, std).
    let combos: Vec<(u32, u32)> = vec![(30, 30), (20, 45), (18, 50), (15, 60), (10, 90)];
    let mut out = Vec::new();
    for (homes, vms_per_host) in combos {
        for cons in [2u32, 3, 4] {
            let vals: Vec<f64> = (0..runs)
                .map(|r| {
                    let cfg = ClusterConfig::builder()
                        .policy(PolicyKind::FullToPartial)
                        .day(day)
                        .home_hosts(homes)
                        .vms_per_host(vms_per_host)
                        .consolidation_hosts(cons)
                        // Dense packings need bigger hosts (4 GiB × 90 VMs).
                        .host_memory(oasis_mem::ByteSize::gib(
                            (u64::from(vms_per_host) * 4).next_multiple_of(64).max(128),
                        ))
                        .seed(1 + r)
                        .build()
                        .expect("valid configuration");
                    ClusterSim::new(cfg).run_day().energy_savings
                })
                .collect();
            let (mean, std_dev) = mean_and_std(&vals);
            out.push((homes, cons, vms_per_host, mean, std_dev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast cluster for smoke tests.
    fn small(policy: PolicyKind, day: DayKind, seed: u64) -> SimReport {
        let cfg = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(policy)
            .day(day)
            .seed(seed)
            .build()
            .unwrap();
        ClusterSim::new(cfg).run_day()
    }

    #[test]
    fn fulltopartial_saves_energy_on_a_small_cluster() {
        let r = small(PolicyKind::FullToPartial, DayKind::Weekday, 3);
        assert!(r.energy_savings > 0.05, "savings {}", r.energy_savings);
        assert!(r.energy_savings < 0.7, "savings {}", r.energy_savings);
        assert!(r.migrations.partial > 0);
    }

    #[test]
    fn always_on_saves_nothing() {
        let r = small(PolicyKind::AlwaysOn, DayKind::Weekday, 3);
        // The managed cluster equals the baseline except the sleeping
        // consolidation hosts' S3 draw (2 hosts × 12.9 W ≈ −4 % at this
        // small scale, well under 2 % at the paper's 30-host scale).
        assert!(r.energy_savings.abs() < 0.06, "savings {}", r.energy_savings);
        assert_eq!(r.migrations.partial, 0);
        assert_eq!(r.migrations.full, 0);
    }

    #[test]
    fn weekend_beats_weekday() {
        let wd = small(PolicyKind::FullToPartial, DayKind::Weekday, 3);
        let we = small(PolicyKind::FullToPartial, DayKind::Weekend, 3);
        assert!(
            we.energy_savings > wd.energy_savings,
            "weekend {} vs weekday {}",
            we.energy_savings,
            wd.energy_savings
        );
    }

    #[test]
    fn policy_ordering_matches_figure8() {
        let only = small(PolicyKind::OnlyPartial, DayKind::Weekday, 5);
        let ftp = small(PolicyKind::FullToPartial, DayKind::Weekday, 5);
        assert!(
            ftp.energy_savings > only.energy_savings,
            "FulltoPartial {} vs OnlyPartial {}",
            ftp.energy_savings,
            only.energy_savings
        );
    }

    #[test]
    fn report_shape() {
        let r = small(PolicyKind::FullToPartial, DayKind::Weekday, 1);
        assert_eq!(r.active_vms_series.len(), 288);
        assert_eq!(r.powered_hosts_series.len(), 288);
        assert!(r.baseline_kwh > 0.0);
        assert!(r.total_kwh > 0.0);
        assert!(!r.transition_delays.is_empty());
    }

    #[test]
    fn week_blends_weekday_and_weekend_savings() {
        let cfg = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(PolicyKind::FullToPartial)
            .seed(3)
            .build()
            .unwrap();
        let week = run_week(&cfg);
        assert_eq!(week.days.len(), 7);
        assert_eq!(week.days.iter().filter(|d| d.day == DayKind::Weekend).count(), 2);
        let wd_mean: f64 = week.days[..5].iter().map(|d| d.energy_savings).sum::<f64>() / 5.0;
        let we_mean: f64 = week.days[5..].iter().map(|d| d.energy_savings).sum::<f64>() / 2.0;
        assert!(week.savings > wd_mean.min(we_mean));
        assert!(week.savings < wd_mean.max(we_mean));
        assert!(
            (week.baseline_kwh - week.days.iter().map(|d| d.baseline_kwh).sum::<f64>()).abs()
                < 1e-9
        );
    }

    #[test]
    fn server_mix_moves_less_data_for_similar_savings() {
        use oasis_vm::workload::WorkloadClass;
        let base = ClusterConfig::builder()
            .home_hosts(6)
            .consolidation_hosts(2)
            .vms_per_host(10)
            .policy(PolicyKind::FullToPartial)
            .seed(4);
        let vdi = ClusterSim::new(base.clone().build().unwrap()).run_day();
        let farm = ClusterSim::new(
            base.workload_mix(vec![
                (WorkloadClass::WebServer, 0.5),
                (WorkloadClass::Database, 0.5),
            ])
            .build()
            .unwrap(),
        )
        .run_day();
        // §5.6: similar savings, far smaller memory images.
        assert!((farm.energy_savings - vdi.energy_savings).abs() < 0.08);
        let vdi_sas = vdi.traffic.total(oasis_net::TrafficClass::MemServerUpload);
        let farm_sas = farm.traffic.total(oasis_net::TrafficClass::MemServerUpload);
        assert!(farm_sas < vdi_sas.mul_f64(0.5), "{farm_sas} !< half of {vdi_sas}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = small(PolicyKind::FullToPartial, DayKind::Weekday, 9);
        let b = small(PolicyKind::FullToPartial, DayKind::Weekday, 9);
        assert_eq!(a.energy_savings, b.energy_savings);
        assert_eq!(a.migrations, b.migrations);
        let c = small(PolicyKind::FullToPartial, DayKind::Weekday, 10);
        assert_ne!(a.energy_savings, c.energy_savings);
    }
}
