//! Cluster configuration (§5.1 defaults).

use oasis_core::{PlacementStrategy, PolicyKind};
use oasis_faults::{FaultSchedule, RebootSchedule};
use oasis_mem::ByteSize;
use oasis_power::{HostEnergyProfile, MemoryServerProfile};
use oasis_sim::SimDuration;
use oasis_trace::{DayKind, TraceSet};
use oasis_vm::workload::WorkloadClass;

/// Validation errors from the builder.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A host count of zero.
    NoHosts,
    /// No VMs configured.
    NoVms,
    /// Home hosts cannot physically hold their VMs.
    HomeOvercommitted {
        /// Bytes demanded by a home host's VMs.
        demand: ByteSize,
        /// Effective capacity of a home host.
        capacity: ByteSize,
    },
    /// Planning interval of zero.
    ZeroInterval,
    /// A scheduled reboot names a host outside the cluster.
    RebootOutOfRange {
        /// The offending host index.
        host: u32,
        /// Number of hosts in the cluster.
        hosts: u32,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NoHosts => write!(f, "at least one home and one consolidation host"),
            ConfigError::NoVms => write!(f, "vms_per_host must be positive"),
            ConfigError::HomeOvercommitted { demand, capacity } => {
                write!(f, "home hosts hold {demand} of VMs but only {capacity} capacity")
            }
            ConfigError::ZeroInterval => write!(f, "planning interval must be positive"),
            ConfigError::RebootOutOfRange { host, hosts } => {
                write!(f, "reboot schedule names host {host} but the cluster has {hosts}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One host generation in a heterogeneous fleet: a named Table 1-style
/// power profile. Hosts are assigned generations round-robin by host
/// index (homes first, then consolidation hosts), so any prefix of the
/// fleet mixes every generation and the mapping is a pure function of
/// the index — no RNG stream is consumed.
#[derive(Clone, Debug, PartialEq)]
pub struct HostGeneration {
    /// Display name ("gen1-2011", "lowpower", …).
    pub name: String,
    /// The generation's energy parameters.
    pub profile: HostEnergyProfile,
}

impl HostGeneration {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, profile: HostEnergyProfile) -> Self {
        HostGeneration { name: name.into(), profile }
    }
}

/// A synchronized activity spike (flash crowd): every `participation`-th
/// user's sampled day is forced active over the window, via
/// [`oasis_trace::UserDay::spike`]. Applied after trace sampling and
/// rotation, before the day starts, so both engines observe identical
/// session edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivitySpike {
    /// First interval of the spike window (wraps at midnight).
    pub start_interval: u32,
    /// Length of the window in intervals.
    pub duration_intervals: u32,
    /// Fraction of users caught in the crowd, in `[0, 1]`. Membership
    /// is decided by a deterministic hash of `(seed, vm index)`.
    pub participation: f64,
}

/// Full configuration of a simulated cluster day.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Number of home (compute) hosts (§5.1: 30).
    pub home_hosts: u32,
    /// Number of consolidation hosts (§5.1: varied 2–12, default 4).
    pub consolidation_hosts: u32,
    /// VMs assigned to each home host (§5.1: 30).
    pub vms_per_host: u32,
    /// Memory allocation per VM (§5.1: 4 GiB).
    pub vm_allocation: ByteSize,
    /// Physical DRAM per host.
    pub host_memory: ByteSize,
    /// Memory over-commit factor (assumption 1: 1.5 with ballooning and
    /// deduplication).
    pub overcommit: f64,
    /// Consolidation policy.
    pub policy: PolicyKind,
    /// Day kind simulated.
    pub day: DayKind,
    /// Manager planning interval.
    pub interval: SimDuration,
    /// Host energy profile (Table 1).
    pub host_profile: HostEnergyProfile,
    /// Memory-server profile (Table 1 prototype or a Table 3 budget).
    pub memserver: MemoryServerProfile,
    /// Full migration latency for a 4 GiB VM over the rack 10 GigE
    /// (§5.1, after Deshpande et al.: 10 s).
    pub full_migration_time: SimDuration,
    /// Partial migration latency including memory upload (§4.4.2: 7.2 s).
    pub partial_migration_time: SimDuration,
    /// Reintegration / partial-resume latency (§4.4.2: 3.7 s).
    pub reintegration_time: SimDuration,
    /// Cooldown after a host is woken to take VMs back before the planner
    /// may vacate it again. Zero (the default, and the paper's behaviour)
    /// re-vacates eagerly; the `ablation_cooldown` bench shows the
    /// trade-off between migration churn and savings.
    pub vacate_cooldown: SimDuration,
    /// Fault injection: probability that a Wake-on-LAN packet is lost and
    /// must be retransmitted after a timeout (§4.1 wakes hosts by WoL).
    pub wol_loss_rate: f64,
    /// Deterministic fault-injection schedule. The default
    /// ([`FaultSchedule::none`]) injects nothing and leaves the run
    /// byte-identical to one without the fault subsystem.
    pub faults: FaultSchedule,
    /// User-activity trace library to sample user-days from. `None` (the
    /// default) synthesizes a library equivalent to the §5.1 corpus; pass
    /// a [`TraceSet`] to drive the simulation from recorded traces.
    pub trace: Option<TraceSet>,
    /// Rotates every sampled user-day this many intervals later in the
    /// day (wrapping at midnight). The datacenter tier staggers racks by
    /// timezone with this knob so quiescence windows actually differ
    /// across racks. Zero (the default) leaves traces untouched.
    pub trace_rotation: u32,
    /// Seed for the synthetic trace library, when it differs from the
    /// run seed. Rack shards set this to the base seed so every rack
    /// samples from one shared (memoized) corpus while keeping distinct
    /// per-rack run seeds. `None` (the default) derives the library from
    /// [`ClusterConfig::seed`] as before.
    pub trace_seed: Option<u64>,
    /// Destination-selection strategy (§3.1 uses random placement).
    pub placement: PlacementStrategy,
    /// Workload-class mix of the VM population, as `(class, weight)`
    /// pairs. The §5 evaluation is all-desktop; §5.6 argues server
    /// workloads behave at least as well — the `server_farm` bench tests
    /// that claim with a web/database/cluster-node mix.
    pub workload_mix: Vec<(WorkloadClass, f64)>,
    /// Page-level model fidelity: per-page hot loops or their batched
    /// equivalents. The statistical cluster day does not depend on the
    /// choice — the two fidelities are bit-identical, which the
    /// `fidelity_equivalence` suite locks across seeds and fault
    /// schedules. Defaults to the `OASIS_FIDELITY` environment variable
    /// (per-page when unset).
    pub fidelity: oasis_sim::ModelFidelity,
    /// Day-loop engine: the interval walker or the event-driven
    /// skip-ahead core. The two are bit-identical — the engine leg of
    /// the `fidelity_equivalence` suite locks reports and telemetry
    /// streams across seeds and fault schedules. Defaults to the
    /// `OASIS_ENGINE` environment variable (interval walker when unset).
    pub engine: oasis_sim::EngineMode,
    /// Host generations of a heterogeneous fleet, assigned round-robin
    /// by host index. Empty (the default) means a homogeneous fleet
    /// drawn entirely from [`ClusterConfig::host_profile`]; a
    /// single-entry vector with the same profile is byte-identical to
    /// that (the homogeneous-collapse differential test pins it).
    /// When non-empty, `host_profile` holds the *reference* generation
    /// (by convention the first) that planner cost weights are taken
    /// from.
    pub generations: Vec<HostGeneration>,
    /// Optional flash-crowd activity spike applied to the sampled
    /// user-days. `None` (the default) leaves traces untouched.
    pub spike: Option<ActivitySpike>,
    /// Scheduled cold restarts (patch windows). The default
    /// ([`RebootSchedule::none`]) schedules nothing and leaves the run
    /// byte-identical to one without the reboot plumbing.
    pub reboots: RebootSchedule,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// Starts a builder pre-loaded with the §5.1 defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Total VMs in the cluster.
    pub fn total_vms(&self) -> u32 {
        self.home_hosts * self.vms_per_host
    }

    /// Effective per-host memory capacity after over-commit.
    pub fn effective_capacity(&self) -> ByteSize {
        self.host_memory.mul_f64(self.overcommit)
    }

    /// Number of distinct host generations (1 for a homogeneous fleet).
    pub fn generation_count(&self) -> usize {
        self.generations.len().max(1)
    }

    /// Generation index of `host` (round-robin by host index; 0 for a
    /// homogeneous fleet).
    pub fn generation_of(&self, host: u32) -> usize {
        if self.generations.is_empty() {
            0
        } else {
            host as usize % self.generations.len()
        }
    }

    /// Display name of generation `g`.
    pub fn generation_name(&self, g: usize) -> &str {
        if self.generations.is_empty() {
            "uniform"
        } else {
            &self.generations[g].name
        }
    }

    /// Energy profile of `host`: its generation's profile, or the
    /// uniform [`ClusterConfig::host_profile`] for a homogeneous fleet.
    pub fn host_profile_of(&self, host: u32) -> &HostEnergyProfile {
        if self.generations.is_empty() {
            &self.host_profile
        } else {
            &self.generations[host as usize % self.generations.len()].profile
        }
    }
}

/// Builder for [`ClusterConfig`].
#[derive(Clone, Debug)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder {
            config: ClusterConfig {
                home_hosts: 30,
                consolidation_hosts: 4,
                vms_per_host: 30,
                vm_allocation: ByteSize::gib(4),
                host_memory: ByteSize::gib(128),
                overcommit: 1.5,
                policy: PolicyKind::FullToPartial,
                day: DayKind::Weekday,
                interval: SimDuration::from_mins(5),
                host_profile: HostEnergyProfile::table1(),
                memserver: MemoryServerProfile::prototype(),
                full_migration_time: SimDuration::from_secs(10),
                partial_migration_time: SimDuration::from_millis(7_200),
                reintegration_time: SimDuration::from_millis(3_700),
                vacate_cooldown: SimDuration::ZERO,
                wol_loss_rate: 0.0,
                faults: FaultSchedule::none(),
                trace: None,
                trace_rotation: 0,
                trace_seed: None,
                placement: PlacementStrategy::Random,
                workload_mix: vec![(WorkloadClass::Desktop, 1.0)],
                fidelity: oasis_sim::ModelFidelity::from_env(),
                engine: oasis_sim::EngineMode::from_env(),
                generations: Vec::new(),
                spike: None,
                reboots: RebootSchedule::none(),
                seed: 1,
            },
        }
    }
}

impl ClusterConfigBuilder {
    /// Sets the number of home hosts.
    pub fn home_hosts(mut self, n: u32) -> Self {
        self.config.home_hosts = n;
        self
    }

    /// Sets the number of consolidation hosts.
    pub fn consolidation_hosts(mut self, n: u32) -> Self {
        self.config.consolidation_hosts = n;
        self
    }

    /// Sets the VMs per home host.
    pub fn vms_per_host(mut self, n: u32) -> Self {
        self.config.vms_per_host = n;
        self
    }

    /// Sets the consolidation policy.
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.config.policy = p;
        self
    }

    /// Sets the simulated day kind.
    pub fn day(mut self, d: DayKind) -> Self {
        self.config.day = d;
        self
    }

    /// Sets the planning interval.
    pub fn interval(mut self, i: SimDuration) -> Self {
        self.config.interval = i;
        self
    }

    /// Sets the memory-server profile (Table 3 sweeps power budgets).
    pub fn memserver(mut self, m: MemoryServerProfile) -> Self {
        self.config.memserver = m;
        self
    }

    /// Sets per-host physical memory.
    pub fn host_memory(mut self, m: ByteSize) -> Self {
        self.config.host_memory = m;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Sets the post-return vacate cooldown (zero disables damping).
    pub fn vacate_cooldown(mut self, d: SimDuration) -> Self {
        self.config.vacate_cooldown = d;
        self
    }

    /// Sets the Wake-on-LAN loss probability (fault injection).
    pub fn wol_loss_rate(mut self, p: f64) -> Self {
        self.config.wol_loss_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the fault-injection schedule.
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.config.faults = schedule;
        self
    }

    /// Supplies a recorded trace library instead of the synthetic model.
    pub fn trace(mut self, set: TraceSet) -> Self {
        self.config.trace = Some(set);
        self
    }

    /// Rotates sampled user-days `k` intervals later (timezone stagger).
    pub fn trace_rotation(mut self, k: u32) -> Self {
        self.config.trace_rotation = k;
        self
    }

    /// Pins the synthetic trace-library seed independently of the run
    /// seed (rack shards share one corpus this way).
    pub fn trace_seed(mut self, s: u64) -> Self {
        self.config.trace_seed = Some(s);
        self
    }

    /// Sets the destination-selection strategy.
    pub fn placement(mut self, s: PlacementStrategy) -> Self {
        self.config.placement = s;
        self
    }

    /// Sets the VM workload mix (weights need not sum to one).
    pub fn workload_mix(mut self, mix: Vec<(WorkloadClass, f64)>) -> Self {
        self.config.workload_mix = mix;
        self
    }

    /// Sets the page-level model fidelity.
    pub fn fidelity(mut self, f: oasis_sim::ModelFidelity) -> Self {
        self.config.fidelity = f;
        self
    }

    /// Sets the day-loop engine.
    pub fn engine(mut self, e: oasis_sim::EngineMode) -> Self {
        self.config.engine = e;
        self
    }

    /// Sets the heterogeneous host generations (round-robin by host
    /// index). When non-empty, the first generation's profile also
    /// becomes [`ClusterConfig::host_profile`] — the reference the
    /// planner's cost weights are taken from.
    pub fn generations(mut self, gens: Vec<HostGeneration>) -> Self {
        if let Some(first) = gens.first() {
            self.config.host_profile = first.profile.clone();
        }
        self.config.generations = gens;
        self
    }

    /// Sets the flash-crowd activity spike.
    pub fn spike(mut self, s: ActivitySpike) -> Self {
        self.config.spike =
            Some(ActivitySpike { participation: s.participation.clamp(0.0, 1.0), ..s });
        self
    }

    /// Sets the scheduled-reboot (patch-window) schedule.
    pub fn reboots(mut self, schedule: RebootSchedule) -> Self {
        self.config.reboots = schedule;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let c = self.config;
        if c.home_hosts == 0 || c.consolidation_hosts == 0 {
            return Err(ConfigError::NoHosts);
        }
        if c.vms_per_host == 0 {
            return Err(ConfigError::NoVms);
        }
        if c.interval.is_zero() {
            return Err(ConfigError::ZeroInterval);
        }
        if c.workload_mix.is_empty() || c.workload_mix.iter().all(|&(_, w)| w <= 0.0) {
            return Err(ConfigError::NoVms);
        }
        let demand = c.vm_allocation * u64::from(c.vms_per_host);
        let capacity = c.effective_capacity();
        if demand > capacity {
            return Err(ConfigError::HomeOvercommitted { demand, capacity });
        }
        let hosts = c.home_hosts + c.consolidation_hosts;
        if let Some(r) = c.reboots.reboots().iter().find(|r| r.host >= hosts) {
            return Err(ConfigError::RebootOutOfRange { host: r.host, hosts });
        }
        Ok(c)
    }
}

/// A named, declarative scenario preset: everything about a stress
/// scenario except the seed. The registry in [`crate::scenarios`] owns
/// the named instances; [`ScenarioSpec::cluster_config`] instantiates
/// a runnable [`ClusterConfig`] for one seed. Multi-rack specs
/// (`racks > 1`) are lifted to the shard driver by the scenario
/// runner.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Registry name (`oasis sim --scenario <name>`).
    pub name: &'static str,
    /// One line stating what regression this scenario guards.
    pub guards: &'static str,
    /// Home hosts per rack.
    pub home_hosts: u32,
    /// Consolidation hosts per rack.
    pub consolidation_hosts: u32,
    /// VMs per home host.
    pub vms_per_host: u32,
    /// Racks simulated (1 = single-rack; more go through the shard
    /// driver with timezone-staggered traces).
    pub racks: u32,
    /// Consolidation policy.
    pub policy: PolicyKind,
    /// Day kind.
    pub day: DayKind,
    /// Physical DRAM per host.
    pub host_memory: ByteSize,
    /// Host generations (empty = homogeneous Table 1 fleet).
    pub generations: Vec<HostGeneration>,
    /// VM workload mix.
    pub workload_mix: Vec<(WorkloadClass, f64)>,
    /// Optional flash-crowd spike.
    pub spike: Option<ActivitySpike>,
    /// Scheduled cold restarts.
    pub reboots: RebootSchedule,
    /// Fault-injection schedule.
    pub faults: FaultSchedule,
}

impl ScenarioSpec {
    /// A smoke-scale baseline (6 home + 2 consolidation hosts, 10 VMs
    /// per host, FulltoPartial, weekday, no stressors) for scenario
    /// constructors to specialize.
    pub fn smoke(name: &'static str, guards: &'static str) -> Self {
        ScenarioSpec {
            name,
            guards,
            home_hosts: 6,
            consolidation_hosts: 2,
            vms_per_host: 10,
            racks: 1,
            policy: PolicyKind::FullToPartial,
            day: DayKind::Weekday,
            host_memory: ByteSize::gib(128),
            generations: Vec::new(),
            workload_mix: vec![(WorkloadClass::Desktop, 1.0)],
            spike: None,
            reboots: RebootSchedule::none(),
            faults: FaultSchedule::none(),
        }
    }

    /// True when the fleet mixes host generations.
    pub fn is_heterogeneous(&self) -> bool {
        self.generations.len() > 1
    }

    /// Instantiates the per-rack [`ClusterConfig`] for one seed.
    pub fn cluster_config(&self, seed: u64) -> Result<ClusterConfig, ConfigError> {
        let mut b = ClusterConfig::builder()
            .home_hosts(self.home_hosts)
            .consolidation_hosts(self.consolidation_hosts)
            .vms_per_host(self.vms_per_host)
            .policy(self.policy)
            .day(self.day)
            .host_memory(self.host_memory)
            .workload_mix(self.workload_mix.clone())
            .generations(self.generations.clone())
            .reboots(self.reboots.clone())
            .faults(self.faults.clone())
            .seed(seed);
        if let Some(s) = self.spike {
            b = b.spike(s);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_5_1() {
        let c = ClusterConfig::builder().build().unwrap();
        assert_eq!(c.home_hosts, 30);
        assert_eq!(c.consolidation_hosts, 4);
        assert_eq!(c.total_vms(), 900);
        assert_eq!(c.vm_allocation, ByteSize::gib(4));
        assert_eq!(c.full_migration_time, SimDuration::from_secs(10));
        assert_eq!(c.partial_migration_time.as_micros(), 7_200_000);
        assert_eq!(c.reintegration_time.as_micros(), 3_700_000);
        assert_eq!(c.effective_capacity(), ByteSize::gib(192));
    }

    #[test]
    fn builder_setters() {
        let c = ClusterConfig::builder()
            .home_hosts(10)
            .consolidation_hosts(3)
            .vms_per_host(45)
            .policy(PolicyKind::Default)
            .day(DayKind::Weekend)
            .seed(99)
            .host_memory(ByteSize::gib(256))
            .build()
            .unwrap();
        assert_eq!(c.total_vms(), 450);
        assert_eq!(c.policy, PolicyKind::Default);
        assert_eq!(c.day, DayKind::Weekend);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn fidelity_defaults_and_overrides() {
        use oasis_sim::ModelFidelity;
        // The test environment does not set OASIS_FIDELITY, so the
        // default is the per-page reference model.
        if std::env::var(oasis_sim::fidelity::FIDELITY_ENV).is_err() {
            let c = ClusterConfig::builder().build().unwrap();
            assert_eq!(c.fidelity, ModelFidelity::PerPage);
        }
        let c = ClusterConfig::builder().fidelity(ModelFidelity::Batched).build().unwrap();
        assert_eq!(c.fidelity, ModelFidelity::Batched);
    }

    #[test]
    fn engine_defaults_and_overrides() {
        use oasis_sim::EngineMode;
        // The test environment does not set OASIS_ENGINE, so the default
        // is the reference interval walker.
        if std::env::var(oasis_sim::mode::ENGINE_ENV).is_err() {
            let c = ClusterConfig::builder().build().unwrap();
            assert_eq!(c.engine, EngineMode::Interval);
        }
        let c = ClusterConfig::builder().engine(EngineMode::EventDriven).build().unwrap();
        assert_eq!(c.engine, EngineMode::EventDriven);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(ClusterConfig::builder().home_hosts(0).build(), Err(ConfigError::NoHosts));
        assert_eq!(ClusterConfig::builder().vms_per_host(0).build(), Err(ConfigError::NoVms));
        assert_eq!(
            ClusterConfig::builder().interval(SimDuration::ZERO).build(),
            Err(ConfigError::ZeroInterval)
        );
        // 90 VMs × 4 GiB = 360 GiB > 192 GiB effective.
        assert!(matches!(
            ClusterConfig::builder().vms_per_host(90).build(),
            Err(ConfigError::HomeOvercommitted { .. })
        ));
        // But with 256 GiB hosts (384 effective) it fits — the Figure 12
        // sensitivity sweep uses denser hosts.
        assert!(ClusterConfig::builder()
            .vms_per_host(90)
            .host_memory(ByteSize::gib(256))
            .build()
            .is_ok());
    }
}
