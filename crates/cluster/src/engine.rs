//! The event-driven skip-ahead day loop.
//!
//! [`ClusterSim::run_day_event_timed`] replays exactly the interval
//! engine's observable behaviour — byte-identical reports and telemetry
//! streams, locked by the three-way battery in
//! `tests/fidelity_equivalence.rs` — while doing work only where a
//! precomputed next-wake heap says something can happen:
//!
//! * **fault service** runs only on intervals where the schedule is
//!   observable (`DaySchedule::fault_tick`);
//! * **activation** iterates the precomputed per-interval session-edge
//!   lists instead of scanning every VM;
//! * **planning** replays provably-empty rounds: when a full round
//!   returned no actions, drew no RNG and the view has not changed
//!   since (version + fingerprint check), the round's telemetry is
//!   re-emitted at `O(scans)` cost without re-planning;
//! * **fetch** runs hot only while working sets still grow, a host
//!   rides over-committed, or the view changed this interval;
//! * **accounting** replays a per-host cache of the last computed
//!   interval span (joules, millijoule components and attribution
//!   shares) for every host whose energy inputs are untouched — this is
//!   the analytic charge for skipped spans: identical bits, no math.
//!
//! Per-interval bookkeeping that feeds the report every interval
//! (series points, `IntervalStarted`, baseline charge, quiescence
//! counts, profile scopes) still runs all `INTERVALS_PER_DAY` times —
//! equivalence pins the emission cadence — but each of those steps is
//! `O(hosts)` or `O(1)`, not `O(VMs × hosts)`.

use oasis_sim::engine::EventQueue;
use oasis_sim::SimTime;
use oasis_telemetry::Event;
use oasis_trace::INTERVALS_PER_DAY;

use crate::events::{interval_start, DaySchedule, WakeEvent};
use crate::results::SimReport;
use crate::sim::{ClusterSim, DayPhases, HostSpanEnergy, INTERVAL_SECS};

/// Skip-ahead accounting for one event-engine day.
///
/// Deliberately *outside* [`SimReport`]: the report must stay
/// byte-identical across engines, so engine-specific counters travel on
/// the side (via [`ClusterSim::run_day_instrumented`]). Under the
/// interval engine the stats stay zeroed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Intervals stepped (always `INTERVALS_PER_DAY` for a full day).
    pub intervals: u64,
    /// Wake events popped from the heap.
    pub events_popped: u64,
    /// Intervals whose activation phase ran (session edges present).
    pub session_edge_intervals: u64,
    /// Intervals whose fault phase ran.
    pub fault_ticks: u64,
    /// Planner epochs reached (full rounds + replays).
    pub planner_epochs: u64,
    /// Epochs that ran a full planning round.
    pub planner_full_rounds: u64,
    /// Epochs replayed from a provably-empty previous round.
    pub planner_replays: u64,
    /// Intervals whose fetch phase ran hot.
    pub fetch_full: u64,
    /// Intervals whose fetch phase was skipped.
    pub fetch_skipped: u64,
    /// Host-intervals recomputed from the power timeline.
    pub recomputed_host_intervals: u64,
    /// Host-intervals charged from the span cache.
    pub cached_host_intervals: u64,
    /// Joules charged analytically from cached spans instead of being
    /// re-integrated.
    pub skipped_joules: f64,
    /// Joules charged by recomputing the host power timeline.
    pub computed_joules: f64,
}

impl EngineStats {
    /// Host-intervals accounted in total, however they were charged.
    pub fn host_intervals(&self) -> u64 {
        self.recomputed_host_intervals + self.cached_host_intervals
    }
}

/// Cached energy decomposition of a host's last recomputed interval.
///
/// Valid for replay while the host's energy inputs stay untouched
/// (`energy_touched` clear) *and* the cached interval itself contained
/// no power transitions — a transition interval's span is not the
/// steady state the following quiet intervals repeat.
#[derive(Clone, Debug, Default)]
struct HostCache {
    valid: bool,
    span: HostSpanEnergy,
    shares: Vec<(usize, u64)>,
}

/// Replay gate for empty planning rounds: the manager RNG fingerprint
/// and view version captured around a full round that returned no
/// actions. While both still match (and no vacate cooldown has expired
/// since — see `CooldownExpiry`), a fresh plan would reproduce that
/// round bit-for-bit, so it is replayed instead.
type ReplayGate = Option<([u64; 4], u64)>;

/// The resumable state of one event-engine day.
///
/// Everything `run_day_event_timed`'s old interval loop kept in locals
/// now lives here so a driver can interleave *other work between
/// intervals*: the datacenter shard engine steps each rack's day one
/// epoch (a run of intervals) at a time, pausing at cross-rack barriers
/// with this state parked, then resuming. Running all 288 intervals
/// back-to-back through [`ClusterSim::step_event_interval`] is
/// byte-identical to the old monolithic loop — the loop body moved, the
/// statements did not.
pub(crate) struct EventDayState {
    schedule: DaySchedule,
    heap: EventQueue<WakeEvent>,
    caches: Vec<HostCache>,
    gate: ReplayGate,
    /// Whether the replay gate can validate at all on this schedule
    /// (some interval after the first is free of session edges). When
    /// `false` the fingerprint capture around full rounds is pure
    /// overhead and is skipped; see [`DaySchedule::gate_live`].
    gate_live: bool,
    /// Earliest still-pending cooldown a `CooldownExpiry` event has
    /// been scheduled for; `None` when nothing is scheduled.
    armed_cooldown: Option<SimTime>,
    /// Sticky fetch state, recomputed after every hot fetch pass:
    /// whether any partial VM still has non-zero growth to fetch and
    /// whether any consolidation host rides over capacity.
    growth_pending: bool,
    overcommit: bool,
}

impl EventDayState {
    /// Arms a growth wake at the start of `interval`. The datacenter
    /// epoch planner calls this after applying a capacity grant: a
    /// narrowed consolidation capacity can leave hosts newly
    /// over-committed, which only the fetch pass notices — so the pass
    /// must run hot on the first post-barrier interval.
    pub(crate) fn arm_growth_wake(&mut self, interval: usize) {
        if interval < INTERVALS_PER_DAY {
            self.heap.schedule_at(interval_start(interval), WakeEvent::GrowthWake);
        }
    }

    /// Retires the day state, returning the schedule's buffers to the
    /// thread-local pool for the next day built on this thread.
    pub(crate) fn finish(self) {
        self.schedule.recycle();
    }
}

impl ClusterSim {
    /// Precomputes the wake schedule and seeds the heap for one
    /// event-engine day, charging the build to the construct phase.
    pub(crate) fn begin_event_day(
        &mut self,
        clock: &dyn Fn() -> f64,
        phases: &mut DayPhases,
    ) -> EventDayState {
        let tb = clock();
        let schedule = DaySchedule::build(&self.cfg, &self.users);
        let mut heap = EventQueue::new();
        schedule.seed_heap(&mut heap);
        let gate_live = schedule.gate_live();
        phases.construct_secs += clock() - tb;
        EventDayState {
            caches: vec![HostCache::default(); self.hosts.len()],
            schedule,
            heap,
            gate: None,
            gate_live,
            armed_cooldown: None,
            growth_pending: false,
            overcommit: false,
        }
    }

    /// [`ClusterSim::run_day_timed`] on the event-driven engine,
    /// accumulating skip-ahead accounting into `stats`.
    pub(crate) fn run_day_event_timed(
        mut self,
        clock: &dyn Fn() -> f64,
        phases: &mut DayPhases,
        stats: &mut EngineStats,
    ) -> SimReport {
        let day_scope = self.telemetry.profile("run_day");
        let mut day = self.begin_event_day(clock, phases);
        for interval in 0..INTERVALS_PER_DAY {
            self.step_event_interval(&mut day, interval, clock, phases, stats);
        }
        day.finish();
        day_scope.end();
        self.finish_report()
    }

    /// One interval of the event-engine day loop — the body of the old
    /// monolithic loop, verbatim, over state parked in `day`.
    pub(crate) fn step_event_interval(
        &mut self,
        day: &mut EventDayState,
        interval: usize,
        clock: &dyn Fn() -> f64,
        phases: &mut DayPhases,
        stats: &mut EngineStats,
    ) {
        {
            let now = interval_start(interval);

            // Drain every wake due by this boundary; the flags gate the
            // phases below. Ties pop in scheduling order (the heap keys
            // on `(time, sequence)`), and flags are idempotent, so
            // duplicate wakes are harmless.
            let mut session_edge = false;
            let mut fault_due = false;
            let mut planner_due = false;
            let mut growth_due = false;
            while day.heap.peek_time().is_some_and(|t| t <= now) {
                let (_, ev) = day.heap.pop().expect("peeked event vanished");
                stats.events_popped += 1;
                match ev {
                    WakeEvent::SessionEdge => session_edge = true,
                    WakeEvent::FaultTick => fault_due = true,
                    WakeEvent::PlannerEpoch => planner_due = true,
                    WakeEvent::GrowthWake => growth_due = true,
                    WakeEvent::CooldownExpiry => {
                        // A vacate cooldown expired: `vacatable` flags
                        // can flip with the clock alone from here on, so
                        // an empty round gated before the flip is no
                        // longer provably reproducible.
                        day.gate = None;
                        day.armed_cooldown = None;
                    }
                }
            }
            debug_assert_eq!(
                session_edge,
                !day.schedule.transitions[interval].is_empty(),
                "session-edge wake out of step with the precomputed schedule"
            );
            debug_assert_eq!(
                fault_due, day.schedule.fault_tick[interval],
                "fault wake out of step with the precomputed schedule"
            );

            self.telemetry.advance_to(now);
            self.telemetry.emit(Event::IntervalStarted {
                interval: interval as u32,
                active: day.schedule.active[interval],
            });
            for h in &mut self.hosts {
                h.begin_interval();
            }
            self.dirty_hosts.iter_mut().for_each(|d| *d = false);
            self.dirty_vms.iter_mut().for_each(|d| *d = false);
            self.dirty_vm_count = 0;
            // `energy_touched` is per-interval state exactly like the
            // dirty flags: a host is "touched" when *this* interval
            // changed one of its energy inputs. Left set, every host
            // would recompute forever after its first mutation and the
            // span caches would never replay.
            self.energy_touched.iter_mut().for_each(|d| *d = false);
            let pv_start = self.placement_version;
            stats.intervals += 1;

            let t0 = clock();
            let scope = self.telemetry.profile("fault_service");
            if fault_due {
                stats.fault_ticks += 1;
                self.apply_faults(now);
                // Reboot onsets are folded into the precomputed fault
                // tick, so this call runs exactly on the intervals the
                // interval engine's unconditional call would act in.
                self.apply_reboots(now);
            }
            scope.end();
            let t1 = clock();
            phases.fault_service_secs += t1 - t0;

            let scope = self.telemetry.profile("activation");
            if session_edge {
                stats.session_edge_intervals += 1;
                // Mirrors `apply_trace`: fresh per-interval queues, then
                // the per-VM edges — but only the VMs the schedule
                // proved have one, in the same ascending order the full
                // scan would visit them.
                self.reintegration_queue.clear();
                self.promote_queue.clear();
                for &vi in &day.schedule.transitions[interval] {
                    self.apply_transition(vi as usize, interval, now);
                }
            }
            scope.end();
            let t2 = clock();
            phases.activation_secs += t2 - t1;

            let scope = self.telemetry.profile("planner");
            if planner_due {
                stats.planner_epochs += 1;
                let replayable = matches!(
                    day.gate,
                    Some((fp, v)) if v == self.view_version && fp == self.manager.rng_fingerprint()
                );
                if replayable {
                    stats.planner_replays += 1;
                    // With no expired cooldowns since the gated round
                    // (CooldownExpiry would have cleared the gate) this
                    // refresh is a no-op; calling it keeps the sequence
                    // of view touches identical to a full round.
                    self.refresh_vacatable(now);
                    self.manager.replay_empty_round();
                    let iv = (now.as_micros() / (INTERVAL_SECS as u64 * 1_000_000)) as u32;
                    self.telemetry.emit(Event::PolicyDecision { interval: iv, actions: 0 });
                    // The gated round's trailing sleep-sweep found no
                    // powered empty host, and emptying one later would
                    // have bumped the view version and killed the gate.
                    debug_assert!(
                        !(0..self.hosts.len())
                            .any(|h| self.hosts[h].powered && self.residency[h].vms.is_empty()),
                        "replayed a round past a powered empty host"
                    );
                } else if day.gate_live {
                    stats.planner_full_rounds += 1;
                    let fp = self.manager.rng_fingerprint();
                    let v = self.view_version;
                    self.plan_and_execute(now);
                    // Gate iff the round was provably a fixed point:
                    // no actions planned, no RNG drawn, no view change
                    // (including the trailing sleep sweep).
                    let empty = self.manager.last_plan_decision_ids().is_empty();
                    day.gate =
                        (empty && self.view_version == v && self.manager.rng_fingerprint() == fp)
                            .then_some((fp, v));
                } else {
                    // The schedule proved the gate can never validate
                    // (every interval carries a session edge, so the
                    // view version always moves between epochs): skip
                    // the fingerprint bookkeeping. The fingerprint is a
                    // pure read, so dropping it cannot change the run.
                    stats.planner_full_rounds += 1;
                    self.plan_and_execute(now);
                }
                day.heap.schedule_at(now + self.cfg.interval, WakeEvent::PlannerEpoch);
            }
            scope.end();
            let t3 = clock();
            phases.planner_secs += t3 - t2;

            let scope = self.telemetry.profile("fetch");
            // Gate on the *placement* version, not the view version: a
            // state-only session edge bumps the view but cannot change
            // anything the growth pass reads (demands, the partial set,
            // residency sums), so such intervals skip the pass whenever
            // no growth wake is armed.
            if growth_due || self.placement_version != pv_start {
                stats.fetch_full += 1;
                // The pass reports its own post-state: whether any
                // partial can still grow (accumulated pre-shed, which
                // can only over-arm a wake whose pass then no-ops) and
                // whether any consolidation host is over capacity.
                let outcome = self.grow_working_sets(now);
                day.growth_pending = outcome.growth_pending;
                day.overcommit = outcome.overcommit;
                if (day.growth_pending || day.overcommit) && interval + 1 < INTERVALS_PER_DAY {
                    day.heap.schedule_at(interval_start(interval + 1), WakeEvent::GrowthWake);
                }
            } else {
                stats.fetch_skipped += 1;
                debug_assert!(
                    !day.growth_pending && !day.overcommit,
                    "skipped a fetch pass with fetch work pending"
                );
            }
            scope.end();
            let t4 = clock();
            phases.fetch_secs += t4 - t3;

            let scope = self.telemetry.profile("accounting");
            self.sleep_empty_hosts();
            self.record(now);
            self.account_energy_event(interval, &day.schedule, &mut day.caches, stats);
            self.energy_series.record(now, self.total_joules / oasis_power::meter::JOULES_PER_KWH);
            scope.end();

            // Keep a CooldownExpiry wake armed for the earliest pending
            // cooldown. Entries only appear alongside view mutations
            // (returns home move VMs), so arming at interval end never
            // misses a flip a gated round could observe.
            let pending = self.cooldown_until.values().copied().filter(|&until| until > now).min();
            if pending != day.armed_cooldown {
                if let Some(until) = pending {
                    day.heap.schedule_at(until, WakeEvent::CooldownExpiry);
                }
                day.armed_cooldown = pending;
            }
            phases.accounting_secs += clock() - t4;
        }
    }

    /// The event engine's energy integration: identical totals to
    /// `account_energy`, but hosts whose energy inputs are untouched
    /// replay their cached span — joules, millijoule components and
    /// attribution shares — instead of re-walking the power timeline.
    // oasis-lint: boundary(float-energy, "cached spans replay the exact f64 the interval fold added, in the same ascending host order")
    fn account_energy_event(
        &mut self,
        interval: usize,
        schedule: &DaySchedule,
        caches: &mut [HostCache],
        stats: &mut EngineStats,
    ) {
        for (h, cache) in caches.iter_mut().enumerate() {
            let untouched = !self.energy_touched[h]
                && self.hosts[h].suspends == 0
                && self.hosts[h].resumes == 0;
            if untouched && cache.valid {
                let e = cache.span;
                self.apply_host_energy(h, &e);
                for &(vi, share) in &cache.shares {
                    self.vm_energy_mj[vi] += share;
                }
                // `energy_touched` is a superset of `dirty_hosts`, so an
                // untouched host always counts quiescent — the same
                // verdict the interval engine reaches by scanning.
                debug_assert!(!self.dirty_hosts[h], "dirty host passed the untouched check");
                self.quiescence.host_quiescent += 1;
                stats.cached_host_intervals += 1;
                stats.skipped_joules += e.joules;
            } else {
                let e = self.host_interval_energy(h);
                self.apply_host_energy(h, &e);
                cache.shares.clear();
                self.attribute_active_mj(h, e.active_mj, Some(&mut cache.shares));
                if !self.dirty_hosts[h] && self.hosts[h].suspends == 0 && self.hosts[h].resumes == 0
                {
                    self.quiescence.host_quiescent += 1;
                }
                cache.span = e;
                // A span containing transitions is not a steady state
                // the next quiet interval repeats.
                cache.valid = self.hosts[h].suspends == 0 && self.hosts[h].resumes == 0;
                stats.recomputed_host_intervals += 1;
                stats.computed_joules += e.joules;
            }
        }
        self.quiescence.intervals += 1;
        self.quiescence.host_intervals += self.hosts.len() as u64;
        self.quiescence.vm_intervals += self.vms.len() as u64;
        self.quiescence.vm_quiescent += (self.vms.len() - self.dirty_vm_count) as u64;
        self.account_baseline_counts(&schedule.baseline[interval]);
    }

    /// Debug sanity for the baseline fast path: the precomputed counts
    /// match a fresh scan of the user traces.
    #[cfg(test)]
    pub(crate) fn debug_baseline_counts(&self, interval: usize) -> Vec<u32> {
        (0..self.cfg.home_hosts)
            .map(|home| {
                let lo = (home * self.cfg.vms_per_host) as usize;
                let hi = lo + self.cfg.vms_per_host as usize;
                self.users[lo..hi].iter().filter(|u| u.is_active(interval)).count() as u32
            })
            .collect()
    }
}
